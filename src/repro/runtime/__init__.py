"""Evaluation harness tying models, protocols, cost model and data together."""

from .evaluation import (
    AccuracyReport,
    SchemeLatency,
    calibrated_latency_model,
    evaluate_accuracy,
    scheme_latencies,
)

__all__ = [
    "AccuracyReport",
    "SchemeLatency",
    "calibrated_latency_model",
    "evaluate_accuracy",
    "scheme_latencies",
]
