"""Parameter sets for the BFV-style additive HE layer.

The paper uses SEAL with parameters providing a 128-bit security level, only
additive operations, ciphertext-plaintext multiplications and rotations.  The
exact Python backend in :mod:`repro.he.bfv` cannot realistically run with a
4096-slot / 109-bit modulus on test workloads, so we provide two classes of
parameter sets:

* ``toy``/``test`` parameters (N = 64 ... 1024) used by the unit tests and the
  small worked examples -- these exercise every code path of the scheme
  bit-exactly;
* ``paper`` parameters (N = 4096, matching Gazelle/Delphi-era PAHE settings
  at 128-bit security), used by the functional simulated backend and by the
  cost model to compute slot counts, ciphertext sizes and rotation counts
  exactly as the real SEAL deployment would.

Security estimation uses the standard homomorphic-encryption-standard table
of (ring dimension → maximum log q) for 128-bit classical security; it is a
table lookup, not an LWE estimator, and is only intended to sanity-check the
``paper`` parameter choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from .ntt import find_ntt_prime, find_rns_primes, is_prime

__all__ = [
    "BFVParameters",
    "toy_parameters",
    "test_parameters",
    "serving_parameters",
    "rns_serving_parameters",
    "paper_parameters",
]


# Homomorphic Encryption Standard (2018), classical 128-bit security:
# maximum size of log2(q) for a given ring dimension.
_HE_STANDARD_128 = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}


@dataclass(frozen=True)
class BFVParameters:
    """Parameters of the BFV additive-HE scheme.

    Attributes
    ----------
    ring_degree:
        Polynomial ring dimension ``N`` (also the number of SIMD slots
        available to the packing layer when the plaintext modulus supports
        batching; this reproduction packs coefficient-wise, so the slot count
        equals ``N``).
    ciphertext_modulus:
        Coefficient modulus ``Q``.  For a single-limb configuration this is
        one NTT-friendly prime; for a double-CRT (RNS) configuration it is
        the product of the ``ciphertext_moduli`` limbs (a Python int that may
        exceed 64 bits -- ciphertexts never hold it, only the CRT composition
        at the decrypt boundary does).
    ciphertext_moduli:
        The RNS limb primes ``(q_0, ..., q_{L-1})``.  ``None`` (the default)
        means single-limb: the basis is ``(ciphertext_modulus,)``.  Every
        limb must independently be NTT-friendly (prime, ``q_i ≡ 1 mod 2N``)
        and under the 30-bit lazy-reduction bound ``4 q_i ≤ 2**32`` -- this is
        validated *here*, at construction, so an illegal modulus raises a
        clear :class:`ParameterError` instead of surfacing deep inside
        ``NTTContext`` (or never, on simulated wire-sizing paths).
    plaintext_modulus:
        Plaintext modulus ``t``; fixed-point residues must fit below ``t``.
    error_stddev:
        Standard deviation of the discrete Gaussian error distribution.
    security_bits:
        Claimed classical security (informational; checked against the HE
        standard table when the ring degree is listed there).
    """

    ring_degree: int
    ciphertext_modulus: int
    plaintext_modulus: int
    error_stddev: float = 3.2
    security_bits: int = 128
    #: Coefficient-modulus size of the *deployed* scheme (e.g. 60 bits for a
    #: Gazelle-style SEAL instantiation).  The exact Python backend runs with
    #: the NTT-friendly ``ciphertext_modulus`` above, but wire sizes, the
    #: security check and the simulated noise budget use this value when set.
    deployed_modulus_bits: int | None = None
    #: RNS limb primes; ``None`` normalises to ``(ciphertext_modulus,)``.
    ciphertext_moduli: tuple[int, ...] | None = None
    #: Kernel tier for the HE hot loops (see :mod:`repro.he.kernels`):
    #: ``None`` defers to the process-level selection (``REPRO_KERNEL_TIER``
    #: env var, then self-calibrated ``auto``); an explicit name pins the
    #: tier for every ring built from these parameters.  Every tier is
    #: bit-identical, so this only affects wall clock.
    kernel_tier: str | None = None

    def __post_init__(self) -> None:
        n = self.ring_degree
        if n < 4 or n & (n - 1) != 0:
            raise ParameterError(f"ring_degree must be a power of two >= 4, got {n}")
        if self.plaintext_modulus < 2:
            raise ParameterError("plaintext modulus must be at least 2")
        moduli = self.ciphertext_moduli
        if moduli is None:
            moduli = (self.ciphertext_modulus,)
            object.__setattr__(self, "ciphertext_moduli", moduli)
        else:
            moduli = tuple(int(q) for q in moduli)
            object.__setattr__(self, "ciphertext_moduli", moduli)
            if math.prod(moduli) != self.ciphertext_modulus:
                raise ParameterError(
                    "ciphertext_modulus must equal the product of the RNS limbs: "
                    f"prod{moduli} != {self.ciphertext_modulus}"
                )
        if len(set(moduli)) != len(moduli):
            raise ParameterError(f"RNS limbs must be pairwise distinct, got {moduli}")
        for q in moduli:
            # Validate every limb against the exact-backend NTT requirements
            # here, at construction time, where the failure is attributable --
            # not deep inside NTTContext, and not silently skipped on
            # simulated wire-sizing paths that never build a transform.
            if 4 * q > 1 << 32:
                raise ParameterError(
                    f"ciphertext modulus limb {q} ({q.bit_length()} bits) exceeds "
                    "the 30-bit lazy-reduction NTT bound (4q <= 2**32); use a "
                    "multi-limb RNS basis (ciphertext_moduli) to grow log q"
                )
            if (q - 1) % (2 * n) != 0:
                raise ParameterError(
                    f"ciphertext modulus limb {q} is not NTT-friendly for ring "
                    f"degree {n}: need q ≡ 1 (mod {2 * n})"
                )
            if not is_prime(q):
                raise ParameterError(f"ciphertext modulus limb {q} is not prime")
        # t must fit under the composite modulus Q (the product), not under
        # every individual limb -- protocol-scale plaintext rings (t = 2**31)
        # are legal over a basis of 30-bit limbs.
        if self.plaintext_modulus >= self.ciphertext_modulus:
            raise ParameterError(
                "plaintext modulus must be smaller than the ciphertext modulus"
            )

    @property
    def slot_count(self) -> int:
        """Number of packing slots per ciphertext."""
        return self.ring_degree

    @property
    def limb_count(self) -> int:
        """Number of RNS limbs ``L`` in the double-CRT ciphertext basis."""
        moduli = self.ciphertext_moduli
        return 1 if moduli is None else len(moduli)

    @property
    def delta(self) -> int:
        """The BFV scaling factor ``floor(q / t)``."""
        return self.ciphertext_modulus // self.plaintext_modulus

    @property
    def log_q(self) -> float:
        """Bit-size of the ciphertext modulus."""
        return float(self.ciphertext_modulus.bit_length())

    @property
    def deployed_log_q(self) -> int:
        """Coefficient-modulus bit size used for wire-size and noise modelling."""
        if self.deployed_modulus_bits is not None:
            return self.deployed_modulus_bits
        return self.ciphertext_modulus.bit_length()

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of a (c0, c1) ciphertext pair in bytes."""
        bytes_per_coeff = (self.deployed_log_q + 7) // 8
        return 2 * self.ring_degree * bytes_per_coeff

    @property
    def plaintext_bytes(self) -> int:
        """Serialized size of a packed plaintext in bytes."""
        bytes_per_coeff = (self.plaintext_modulus.bit_length() + 7) // 8
        return self.ring_degree * bytes_per_coeff

    def meets_security_target(self) -> bool:
        """Check the parameters against the HE-standard 128-bit table.

        Ring degrees not present in the table (the toy test sizes) are
        reported as *not* meeting the target, which is accurate: they are for
        correctness testing only.
        """
        max_log_q = _HE_STANDARD_128.get(self.ring_degree)
        if max_log_q is None:
            return False
        return self.deployed_log_q <= max_log_q


def toy_parameters(
    ring_degree: int = 64, *, kernel_tier: str | None = None
) -> BFVParameters:
    """Very small parameters for fast property-based tests."""
    modulus = find_ntt_prime(28, ring_degree)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 15,
        error_stddev=1.0,
        security_bits=0,
        deployed_modulus_bits=60,
        kernel_tier=kernel_tier,
    )


def test_parameters(
    ring_degree: int = 256, *, kernel_tier: str | None = None
) -> BFVParameters:
    """Medium parameters used by integration tests and the worked examples."""
    modulus = find_ntt_prime(29, ring_degree)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 15,
        error_stddev=2.0,
        security_bits=0,
        deployed_modulus_bits=60,
        kernel_tier=kernel_tier,
    )


def serving_parameters(
    ring_degree: int = 256, *, kernel_tier: str | None = None
) -> BFVParameters:
    """Exact-backend parameters for the batched linear serving path.

    Slot-sharing batches accumulate one scalar product per input feature in a
    single ciphertext, so they need more noise headroom than the toy sets: an
    8-bit plaintext modulus under the largest NTT-friendly 30-bit prime gives
    ``q / 2t ~ 2**21`` of budget, enough for several hundred accumulated
    ciphertext-scalar products at test scale.
    """
    modulus = find_ntt_prime(30, ring_degree)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 8,
        error_stddev=1.0,
        security_bits=0,
        deployed_modulus_bits=60,
        kernel_tier=kernel_tier,
    )


def rns_serving_parameters(
    ring_degree: int = 256, limbs: int = 2, *, kernel_tier: str | None = None
) -> BFVParameters:
    """Double-CRT serving parameters with a >=60-bit composite modulus.

    ``limbs`` NTT-friendly 30-bit primes give an effective
    ``log Q ~ 30 * limbs`` -- two limbs already reach the 60-bit
    Gazelle-era coefficient modulus the deployed parameter sets model,
    while every limb stays under the proven lazy-reduction NTT bound.
    The exact backend runs this end to end: limb-wise EVAL arithmetic,
    CRT composition only at the decrypt boundary.
    """
    primes = find_rns_primes(30, ring_degree, limbs)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=math.prod(primes),
        ciphertext_moduli=primes,
        plaintext_modulus=1 << 8,
        error_stddev=1.0,
        security_bits=0,
        deployed_modulus_bits=30 * limbs,
        kernel_tier=kernel_tier,
    )


def paper_parameters(*, kernel_tier: str | None = None) -> BFVParameters:
    """Gazelle/Delphi-era PAHE parameters at 128-bit security.

    N = 4096 with a ~60-bit coefficient modulus (the HE standard allows up to
    109 bits at this dimension) and a 15-bit-compatible plaintext modulus.
    These parameters are used by the simulated backend and by the cost model;
    the exact backend accepts them but would be slow for full BERT layers.
    """
    # A 2N-friendly ~29-bit prime keeps the exact backend usable if someone
    # instantiates it with paper parameters; the *cost model* uses the
    # serialized sizes below which correspond to a 60-bit modulus as deployed
    # in Gazelle-style PAHE.
    modulus = find_ntt_prime(29, 4096)
    return BFVParameters(
        ring_degree=4096,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 15,
        error_stddev=3.2,
        security_bits=128,
        deployed_modulus_bits=60,
        kernel_tier=kernel_tier,
    )
