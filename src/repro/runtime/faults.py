"""Deterministic fault injection + the fault-tolerance building blocks.

The runtime's robustness story is *provable*, not anecdotal: every recovery
behaviour -- retries, quarantine, cold-build fallback, shard re-execution,
kernel-tier fallback -- is exercised by **deterministic induced failure**,
never by mocks.  The pieces:

* :class:`FaultRule` / :class:`FaultPlan` -- a seeded, reproducible schedule
  of faults.  A rule targets one named *site* and fires on explicit
  occurrence indices (``fires=(1, 3)``) and/or with a seeded Bernoulli
  ``rate``; it can **raise** a typed fault, **delay**, or **corrupt** bytes
  once.  The same ``(plan, seed)`` always produces the same fault sequence,
  so recovery behaviour is exact and replayable -- the robustness analog of
  the repo's "closed form == measured" discipline.
* :class:`FaultInjector` -- evaluates a plan at runtime.  Instrumented code
  calls :func:`maybe_inject` (raise/delay rules) and :func:`maybe_corrupt`
  (corruption rules) at registered sites; with no injector active both are
  near-free no-ops, so production paths pay one global read.
* :func:`fault_scope` -- a process-global ``with`` context mirroring
  :func:`repro.he.kernels.tier_scope`.  Process-global (not thread-local)
  on purpose: faults must be visible to the drain loop, shard workers and
  prepare pools, which run on other threads than the test body.
* :class:`CircuitBreaker` -- closed → open after ``failure_threshold``
  consecutive failures → half-open probe after ``cooldown_seconds`` →
  closed on probe success.  Used per ``(model, variant)`` key by the engine
  cache's build quarantine.
* :class:`RetryPolicy` -- bounded attempts, exponential backoff with
  *deterministic seeded jitter* (a hash of ``(seed, request_id, attempt)``,
  no global RNG), and a per-request ``timeout_seconds`` deadline budget
  shared across attempts.  Enforced by the async front door.

Registered sites
----------------
========================  ====================================================
site                      instrumented in
========================  ====================================================
``engine_build``          :meth:`EngineCache._build` (offline prepare+install)
``planstore_load``        :meth:`PlanStore.load` (reads; also corrupt rules)
``planstore_store``       :meth:`PlanStore.store` (writes)
``offline_prepare``       remote-plan adoption in :meth:`EngineCache.entry`
``online_execute``        :meth:`BatchExecutor.execute` entry
``kernel_dispatch``       :func:`repro.he.kernels.stacked_ntt` dispatch
``worker_shard``          :class:`PipelinedExecutor` shard workers
``conn_send``             :func:`repro.runtime.net.send_frame` (wire writes;
                          also corrupt rules -- the CRC must catch them)
``conn_recv``             :func:`repro.runtime.net.recv_frame` (wire reads)
``replica_heartbeat``     :meth:`FleetRouter._heartbeat` probe sends
``replica_crash``         :meth:`FleetRouter.submit` placement (a firing
                          hard-kills the chosen replica before the send)
========================  ====================================================
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ProtocolError, TransientFault

__all__ = [
    "SITE_ENGINE_BUILD",
    "SITE_PLANSTORE_LOAD",
    "SITE_PLANSTORE_STORE",
    "SITE_OFFLINE_PREPARE",
    "SITE_ONLINE_EXECUTE",
    "SITE_KERNEL_DISPATCH",
    "SITE_WORKER_SHARD",
    "SITE_CONN_SEND",
    "SITE_CONN_RECV",
    "SITE_REPLICA_HEARTBEAT",
    "SITE_REPLICA_CRASH",
    "ALL_SITES",
    "DEFAULT_MAX_EVENTS",
    "FaultRule",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "fault_scope",
    "set_fault_injector",
    "active_injector",
    "maybe_inject",
    "maybe_corrupt",
    "fault_seed_from_env",
    "CircuitBreaker",
    "RetryPolicy",
]

SITE_ENGINE_BUILD = "engine_build"
SITE_PLANSTORE_LOAD = "planstore_load"
SITE_PLANSTORE_STORE = "planstore_store"
SITE_OFFLINE_PREPARE = "offline_prepare"
SITE_ONLINE_EXECUTE = "online_execute"
SITE_KERNEL_DISPATCH = "kernel_dispatch"
SITE_WORKER_SHARD = "worker_shard"
SITE_CONN_SEND = "conn_send"
SITE_CONN_RECV = "conn_recv"
SITE_REPLICA_HEARTBEAT = "replica_heartbeat"
SITE_REPLICA_CRASH = "replica_crash"

#: every registered injection point, in runtime-flow order
ALL_SITES = (
    SITE_ENGINE_BUILD,
    SITE_PLANSTORE_LOAD,
    SITE_PLANSTORE_STORE,
    SITE_OFFLINE_PREPARE,
    SITE_ONLINE_EXECUTE,
    SITE_KERNEL_DISPATCH,
    SITE_WORKER_SHARD,
    SITE_CONN_SEND,
    SITE_CONN_RECV,
    SITE_REPLICA_HEARTBEAT,
    SITE_REPLICA_CRASH,
)

#: env var tests/CI use to seed their fault plans (matrixed in CI).
FAULT_SEED_ENV_VAR = "REPRO_FAULT_SEED"


def fault_seed_from_env(default: int = 0) -> int:
    """The CI fault seed (``REPRO_FAULT_SEED``), or ``default``."""
    try:
        return int(os.environ.get(FAULT_SEED_ENV_VAR, default))
    except ValueError:
        return default


def _unit_hash(*parts) -> float:
    """Deterministic uniform in [0, 1) from a hash of ``parts`` (no RNG state)."""
    blob = ":".join(str(part) for part in parts).encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: where, what kind, and when it fires.

    A rule fires at an occurrence when the occurrence index (1-based, per
    site and kind) is in ``fires``, **or** when ``rate > 0`` and the
    occurrence's seeded coin lands under it -- capped by ``max_fires``.
    The coin is a pure hash of ``(plan seed, site, kind, occurrence)``, so
    the same plan replays the same schedule in any process.

    ``kind``:

    ``"raise"``
        Raise ``error(message, site=...)`` (the ``site`` keyword only for
        :class:`~repro.errors.FaultError` subclasses -- plain exception
        types like ``OSError`` get just the message).
    ``"delay"``
        Sleep ``delay_seconds`` (timeout/backoff testing).
    ``"corrupt"``
        Flip the payload's bytes once at a :func:`maybe_corrupt` site
        (integrity-path testing: the plan store's digest must catch it).
    """

    site: str
    kind: str = "raise"
    fires: tuple[int, ...] = ()
    rate: float = 0.0
    max_fires: int | None = None
    error: type[BaseException] = TransientFault
    message: str = ""
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ProtocolError(
                f"unknown fault site {self.site!r}; expected one of {ALL_SITES}"
            )
        if self.kind not in ("raise", "delay", "corrupt"):
            raise ProtocolError(f"unknown fault kind {self.kind!r}")
        if not (0.0 <= self.rate <= 1.0):
            raise ProtocolError("fault rate must be in [0, 1]")
        if not self.fires and self.rate == 0.0:
            raise ProtocolError(
                "a fault rule needs explicit occurrence indices (fires=...) "
                "or a positive rate"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules -- the replayable failure schedule."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def for_site(self, site: str, kind_group: str) -> tuple[FaultRule, ...]:
        """Rules of ``site`` in the given evaluation group.

        ``"inject"`` covers raise/delay rules (evaluated by
        :func:`maybe_inject`); ``"corrupt"`` covers corruption rules
        (evaluated by :func:`maybe_corrupt`).  The two groups keep separate
        occurrence counters.
        """
        kinds = ("corrupt",) if kind_group == "corrupt" else ("raise", "delay")
        return tuple(r for r in self.rules if r.site == site and r.kind in kinds)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the injector's replay log)."""

    site: str
    kind: str
    occurrence: int
    detail: str = ""


#: default bound on the retained :class:`FaultEvent` replay window; the
#: fleet's drain/heartbeat threads visit sites indefinitely, so an unbounded
#: event list would grow for the lifetime of a long-running process.
DEFAULT_MAX_EVENTS = 4096


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the registered runtime sites.

    Thread-safe: occurrence counters and the event log sit behind one lock
    (sites are hit from drain loops, shard workers, prepare pools and the
    fleet router's heartbeat/receiver threads).  The event log is a *bounded*
    replay window (``max_events``, default :data:`DEFAULT_MAX_EVENTS`):
    older events are discarded once the cap is reached, while the fired
    *counters* stay exact forever -- see :meth:`fired_count`.
    """

    def __init__(self, plan: FaultPlan, *, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 1:
            raise ProtocolError("max_events must be at least 1")
        self.plan = plan
        self.max_events = max_events
        self._lock = threading.Lock()
        self._occurrences: dict[tuple[str, str], int] = {}
        self._fired: dict[tuple[str, str], int] = {}
        self._fired_by_site: dict[str, int] = {}  # guarded_by: _lock
        self._total_fired = 0  # guarded_by: _lock
        self._events: deque[FaultEvent] = deque(maxlen=max_events)

    # -- evaluation ----------------------------------------------------------
    def _next_occurrence(self, site: str, group: str) -> int:
        key = (site, group)
        self._occurrences[key] = self._occurrences.get(key, 0) + 1
        return self._occurrences[key]

    def _log_fired_locked(self, rule: FaultRule, event: FaultEvent) -> None:
        """Record one firing.  Caller holds ``_lock``.

        The counters are exact for the injector's lifetime; only the event
        *log* is bounded (the deque discards its oldest entry past
        ``max_events``).
        """
        self._fired[(rule.site, rule.kind)] = (
            self._fired.get((rule.site, rule.kind), 0) + 1
        )
        self._fired_by_site[event.site] = self._fired_by_site.get(event.site, 0) + 1
        self._total_fired += 1
        self._events.append(event)

    def _rule_fires(self, rule: FaultRule, occurrence: int) -> bool:
        if rule.max_fires is not None:
            fired = self._fired.get((rule.site, rule.kind), 0)
            if fired >= rule.max_fires:
                return False
        if occurrence in rule.fires:
            return True
        if rule.rate > 0.0:
            coin = _unit_hash(self.plan.seed, rule.site, rule.kind, occurrence)
            return coin < rule.rate
        return False

    def visit(self, site: str, detail: str = "") -> None:
        """Evaluate the raise/delay rules of ``site`` for one occurrence."""
        to_raise: BaseException | None = None
        delay = 0.0
        with self._lock:
            occurrence = self._next_occurrence(site, "inject")
            for rule in self.plan.for_site(site, "inject"):
                if not self._rule_fires(rule, occurrence):
                    continue
                self._log_fired_locked(
                    rule, FaultEvent(site, rule.kind, occurrence, detail)
                )
                if rule.kind == "delay":
                    delay = rule.delay_seconds
                else:
                    message = rule.message or (
                        f"injected {rule.error.__name__} at {site} "
                        f"(occurrence {occurrence})"
                    )
                    try:
                        to_raise = rule.error(message, site=site)
                    except TypeError:
                        # Plain exception types (OSError, ...) take no site.
                        to_raise = rule.error(message)
                break  # first firing rule wins this occurrence
        if delay > 0.0:
            time.sleep(delay)
        if to_raise is not None:
            raise to_raise

    def corrupt(self, site: str, blob: bytes) -> bytes:
        """Apply ``site``'s corruption rules to ``blob`` for one occurrence."""
        with self._lock:
            occurrence = self._next_occurrence(site, "corrupt")
            for rule in self.plan.for_site(site, "corrupt"):
                if not self._rule_fires(rule, occurrence):
                    continue
                self._log_fired_locked(
                    rule, FaultEvent(site, "corrupt", occurrence, f"{len(blob)} bytes")
                )
                # Invert every byte: unambiguous, content-independent damage
                # that any integrity digest must catch.
                return bytes(b ^ 0xFF for b in blob)
        return blob

    # -- observability -------------------------------------------------------
    def occurrences(self, site: str, group: str = "inject") -> int:
        with self._lock:
            return self._occurrences.get((site, group), 0)

    def fired_count(self, site: str | None = None) -> int:
        """Faults that actually fired (at ``site``, or anywhere).

        Counted from dedicated counters, not the event log, so the figure
        stays exact even after the bounded log (``max_events``) has
        discarded its oldest entries.
        """
        with self._lock:
            if site is None:
                return self._total_fired
            return self._fired_by_site.get(site, 0)

    def events(self) -> list[FaultEvent]:
        """The retained replay window: the most recent ``max_events`` firings.

        Older events are discarded once the cap is hit; use
        :meth:`fired_count` for exact lifetime totals.
        """
        with self._lock:
            return list(self._events)


# -- process-global activation ----------------------------------------------

_active_lock = threading.Lock()
_active: FaultInjector | None = None


def set_fault_injector(injector: FaultInjector | None) -> None:
    """Install (or clear) the process-global injector."""
    global _active
    with _active_lock:
        _active = injector


def active_injector() -> FaultInjector | None:
    return _active


@contextmanager
def fault_scope(plan_or_injector: FaultPlan | FaultInjector | None):
    """Activate an injector for a ``with`` block (process-global).

    Mirrors :func:`repro.he.kernels.tier_scope`, but deliberately
    process-global rather than thread-local: the instrumented sites run on
    background threads (drain loop, shard workers) that must see the same
    schedule as the thread entering the scope.  Yields the injector so the
    caller can assert on its event log.  ``None`` is a no-op scope.
    """
    if plan_or_injector is None:
        yield None
        return
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    with _active_lock:
        global _active
        previous = _active
        _active = injector
    try:
        yield injector
    finally:
        with _active_lock:
            _active = previous


def maybe_inject(site: str, detail: str = "") -> None:
    """Evaluate ``site``'s raise/delay fault rules (no-op without a scope)."""
    injector = _active
    if injector is not None:
        injector.visit(site, detail)


def maybe_corrupt(site: str, blob: bytes) -> bytes:
    """Apply ``site``'s corruption rules to ``blob`` (no-op without a scope)."""
    injector = _active
    if injector is not None:
        return injector.corrupt(site, blob)
    return blob


# -- circuit breaker ---------------------------------------------------------

class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe → closed.

    The engine cache holds one per ``(model, variant)`` key: a build fault
    retries once (policy of the caller), a second consecutive failure opens
    the breaker and quarantines the key for ``cooldown_seconds``; the first
    call after the cooldown is admitted as a half-open probe whose outcome
    closes or re-opens the breaker.  ``clock`` is injectable so tests drive
    the cooldown without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        failure_threshold: int = 2,
        cooldown_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ProtocolError("failure_threshold must be at least 1")
        if cooldown_seconds < 0:
            raise ProtocolError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed (transitions open → half-open probe)."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown_seconds:
                    self._state = self.HALF_OPEN
                    return True
                return False
            # HALF_OPEN: one probe is already in flight; deny until its
            # outcome is recorded.
            return False

    def retry_after_seconds(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()


# -- retry policy ------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic backoff and a deadline budget.

    ``max_attempts`` bounds executions per request (1 = fail on first
    error).  Backoff before attempt ``k+1`` is
    ``backoff_seconds * multiplier**(k-1)`` scaled by a seeded jitter in
    ``[1 - jitter, 1 + jitter]`` -- the jitter is a pure hash of
    ``(seed, request_id, attempt)``, so a replayed run backs off
    identically.  ``timeout_seconds`` is a *per-request* budget measured
    from first submission and shared across attempts: once exhausted, the
    request fails fast instead of retrying.

    ``retryable`` classifies errors: transient faults (anything with a
    truthy ``retryable`` attribute, i.e. :class:`~repro.errors.TransientFault`
    and subclasses) retry; typed validation errors (``ShapeError``,
    ``ParameterError``) and every other exception fail fast.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.02
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    timeout_seconds: float | None = None
    seed: int = field(default_factory=fault_seed_from_env)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ProtocolError("max_attempts must be at least 1")
        if self.backoff_seconds < 0 or self.backoff_multiplier < 1:
            raise ProtocolError("backoff must be non-negative and non-decaying")
        if not (0.0 <= self.jitter <= 1.0):
            raise ProtocolError("jitter must be in [0, 1]")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ProtocolError("timeout_seconds must be positive")

    def retryable(self, error: BaseException) -> bool:
        return bool(getattr(error, "retryable", False))

    def backoff_for(self, request_id: str, attempt: int) -> float:
        """Deterministic backoff before retrying ``request_id``'s ``attempt``."""
        base = self.backoff_seconds * self.backoff_multiplier ** max(0, attempt - 1)
        if self.jitter == 0.0:
            return base
        unit = _unit_hash(self.seed, request_id, attempt)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def budget_remaining(self, submitted_at: float, now: float) -> float:
        """Deadline budget left for a request submitted at ``submitted_at``."""
        if self.timeout_seconds is None:
            return float("inf")
        return self.timeout_seconds - (now - submitted_at)


# -- hook installation --------------------------------------------------------
# The HE kernel layer and the plan store sit *below* the runtime in the
# import graph, so they cannot import this module; instead they each hold a
# module-level hook slot that stays None (near-free dispatch) until this
# module is imported.  Installing on import keeps exactly one injection
# implementation and no import cycle.

def _install_hooks() -> None:
    from ..he import kernels as _he_kernels
    from ..protocols import planstore as _planstore

    _he_kernels._fault_hook = maybe_inject
    _planstore._fault_hook = maybe_inject
    _planstore._corrupt_hook = maybe_corrupt


_install_hooks()
