"""Pipelined execution engine behind the batch-serving runtime.

This module is the execution half of what used to be the ``serving.py``
monolith, split along the paper's own offline/online axis:

* :class:`EngineCache` -- one prepared
  :class:`~repro.protocols.primer.PrivateTransformerInference` engine per
  ``(model, variant)`` key.  Engines are built through the explicit
  ``prepare()`` → :class:`~repro.protocols.plan.OfflinePlan` → ``install()``
  split, so the whole offline phase is a schedulable artifact that can be
  produced on a background worker.
* :class:`EngineShardMap` -- a stable key → worker assignment (least-loaded,
  first-seen), so distinct ``(model, variant)`` keys run on distinct
  workers and one hot model cannot block another's traffic.
* :class:`BatchExecutor` -- runs one batch (full-inference or shared-slot
  linear) with per-request channel/tracker attribution.  This is the serial
  engine; ``ServingRuntime.run_pending()`` drains through it batch by batch,
  behaviour-identical to the pre-split runtime.
* :class:`PipelinedExecutor` -- the overlapped drain: offline preparation of
  the engines that *later* batches need runs on a prepare pool while
  *earlier* batches execute their online phases on sharded workers.  Every
  engine is confined to its shard worker (its backend, tracker, channel and
  sharing state are never touched by two threads), linear batches serialise
  on the shared linear backend's lock, and per-key FIFO order is preserved
  because each shard executes its batches in formation order -- which is why
  the pipelined drain is bit-identical to the serial one (asserted for all
  four Primer variants in the test-suite).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..errors import EngineQuarantined, ProtocolError, ShapeError, TransientFault
from ..he.backend import HEBackend
from ..he.bsgs import BSGSMatmulPlan, bsgs_geometry, prepare_bsgs_plan
from ..he.matmul import bsgs_kernel_fits, encrypted_batch_matmul
from ..he.ntt import cached_ntt_parameters, warm_ntt_cache
from ..he.simulated import SimulatedHEBackend
from ..nn.transformer import TransformerEncoder
from ..protocols.channel import Channel, NetworkModel, Phase
from ..protocols.formats import protocol_he_parameters
from ..protocols.planstore import PlanStore
from ..protocols.primer import PrimerVariant, PrivateTransformerInference
from .faults import (
    SITE_ENGINE_BUILD,
    SITE_OFFLINE_PREPARE,
    SITE_ONLINE_EXECUTE,
    SITE_WORKER_SHARD,
    CircuitBreaker,
    maybe_inject,
)
from .scheduler import Batch, BatchKey, InferenceRequest

__all__ = [
    "RequestReport",
    "EngineEntry",
    "EngineCache",
    "EngineCacheStats",
    "EngineShardMap",
    "LinearServingPath",
    "BatchExecutor",
    "PipelinedExecutor",
    "STEP_LINEAR",
]

#: step label used for the linear serving path's wire accounting
STEP_LINEAR = "linear_serving"

#: bound on cached NTT-form BSGS plans in :class:`LinearServingPath` -- one
#: per (bank, chunk geometry); enough for every steady-state workload mix
#: while keeping a long-lived server's pre-transformed masks finite.
_BSGS_PLAN_CACHE_SIZE = 32


def _prepare_plan_remote(model, variant, seed, network, slot_sharing):
    """Worker-process entry point: produce one engine's offline artifact.

    Runs in a separate process so the offline phase -- GIL-bound simulated-HE
    exchanges plus, under a realized :class:`NetworkModel`, the wire time of
    its many rounds -- genuinely overlaps with the parent's online execution.
    Returns the :class:`~repro.protocols.plan.OfflinePlan` plus the offline
    accounting (channel messages, tracker) recorded while producing it, so
    the parent can merge the cost of the remote preparation into the engine
    it installs the plan on -- no HE operation or byte goes unaccounted.
    """
    engine = PrivateTransformerInference(
        model, variant, seed=seed, network=network, slot_sharing=slot_sharing
    )
    plan = engine.prepare()
    return plan, engine.channel.messages, engine.tracker


def _warm_worker_ntt_tables(parameter_pairs):
    """Worker-pool initializer: build NTT twiddle tables once per process.

    Under the ``fork`` start method the parent's warm tables are inherited
    and this is a no-op cache hit; under ``spawn`` it moves the table build
    to process start-up so no batch ever pays it inline.
    """
    warm_ntt_cache(parameter_pairs)


@dataclass
class RequestReport:
    """Per-request outcome with latency and communication breakdowns."""

    request_id: str
    kind: str
    model: str
    variant: str
    batch_id: int
    batch_size: int
    result: np.ndarray
    prediction: int | None
    queue_seconds: float
    latency_seconds: float
    online_bytes: int
    online_rounds: int
    offline_bytes: int
    he_operations: dict[str, int]
    #: slot-sharing groups (linear chunks, FHGS-shared inference batches)
    #: execute as one unit, so ``he_operations`` / ``latency_seconds`` are
    #: joint figures for the whole group, not per-request sums -- every
    #: request in the group genuinely completes at the same instant, which
    #: is why latency percentiles over one such batch coincide.
    shared_slot_batch: bool = False
    #: worker that executed the batch ("worker-0", ...; None on serial drains)
    worker: str | None = None
    #: absolute completion target and whether it was met (None = no deadline)
    deadline: float | None = None
    deadline_met: bool | None = None
    #: executions this request took (>1 only after transient-fault retries)
    attempts: int = 1
    #: whether the request succeeded only after at least one retry
    retried: bool = False
    #: whether the request was served along a degradation rung (e.g. its
    #: shard batch re-executed serially after a worker-shard fault)
    degraded: bool = False

    def summary(self) -> dict[str, float | int | str]:
        return {
            "request": self.request_id,
            "model": self.model,
            "variant": self.variant,
            "batch": self.batch_id,
            "batch_size": self.batch_size,
            "latency_ms": self.latency_seconds * 1e3,
            "queue_ms": self.queue_seconds * 1e3,
            "online_kilobytes": self.online_bytes / 1e3,
            "he_operations": sum(self.he_operations.values()),
        }


@dataclass
class EngineEntry:
    """A cached engine plus how long its offline plan took to produce."""

    engine: PrivateTransformerInference
    build_seconds: float
    prepare_seconds: float
    #: approximate footprint of the engine's offline plan (the eviction
    #: budget's weight for this entry)
    plan_bytes: int = 0
    #: True when the offline phase was skipped entirely because the plan
    #: came out of the persistent :class:`~repro.protocols.planstore.PlanStore`
    warm_start: bool = False


@dataclass(frozen=True)
class EngineCacheStats:
    """Point-in-time counters of the engine cache's lifecycle activity.

    ``warm_starts + cold_builds + remote_builds`` equals the total number
    of engine builds: warm starts installed a plan from the persistent
    store, cold builds ran the offline phase locally, remote builds adopted
    a plan prepared in a worker process (the pipelined drain's default).

    The fault-tolerance counters track the degradation ladder:
    ``build_failures`` counts failed build attempts (each feeds the key's
    circuit breaker), ``quarantine_rejections`` counts requests refused
    while a key's breaker was open, ``probe_builds`` counts half-open
    probe builds after the cooldown, and ``prepare_fallbacks`` counts
    remote preparations that failed and degraded to a local build.
    """

    entries: int
    plan_bytes: int
    evictions: int
    invalidations: int
    warm_starts: int
    cold_builds: int
    remote_builds: int
    build_failures: int = 0
    quarantine_rejections: int = 0
    probe_builds: int = 0
    prepare_fallbacks: int = 0


class EngineShardMap:
    """Stable assignment of compatibility keys to shard workers.

    Keys are assigned least-loaded on first sight and keep their worker for
    the lifetime of the map, so distinct ``(model, variant)`` keys spread
    across distinct workers (until there are more keys than workers) and an
    engine is only ever driven by one worker thread.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ProtocolError("num_workers must be at least 1")
        self.num_workers = num_workers
        self._assignments: dict[BatchKey, int] = {}  # guarded_by: _lock
        self._loads = [0] * num_workers  # guarded_by: _lock
        self._lock = threading.Lock()

    def worker_for(self, key: BatchKey) -> int:
        with self._lock:
            worker = self._assignments.get(key)
            if worker is None:
                worker = min(range(self.num_workers), key=lambda w: self._loads[w])
                self._assignments[key] = worker
                self._loads[worker] += 1
            return worker

    def assignments(self) -> dict[BatchKey, int]:
        with self._lock:
            return dict(self._assignments)


class EngineCache:
    """Bounded prepared-engine cache keyed by ``(model, variant)``.

    Construction goes through the explicit plan split -- ``prepare()``
    produces the :class:`~repro.protocols.plan.OfflinePlan`, ``install()``
    adopts it -- and is guarded per key, so a prefetch on the prepare pool
    and a cache-miss on a shard worker cannot build the same engine twice.

    Three lifecycle mechanisms compose on top of that:

    * **Plan persistence** -- with a :class:`PlanStore`, a cold build first
      tries to *warm-start* from a stored plan (the whole offline HE
      exchange is skipped; the tracker records zero offline operations) and
      persists freshly prepared plans for the next process.
    * **LRU eviction** -- ``max_entries`` / ``max_bytes`` bound the cache;
      inserting over budget evicts least-recently-used entries.  Eviction
      only drops the cache's reference: a batch already executing on an
      evicted engine finishes unharmed, and the next request rebuilds (or
      warm-starts) the engine.
    * **Generation fencing** -- every build snapshots a per-key generation
      counter and re-checks it at insert time, so a build that was in
      flight when :meth:`invalidate_model` ran discards its stale engine
      and rebuilds against the current model instead of silently
      re-inserting weights that were replaced under it.
    """

    def __init__(
        self,
        models: dict[str, TransformerEncoder],
        variants: dict[str, PrimerVariant],
        backend_factory: Callable[[], HEBackend] | None,
        seed: int,
        network: NetworkModel | None = None,
        slot_sharing: int = 1,
        plan_store: PlanStore | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        breaker_threshold: int = 2,
        breaker_cooldown_seconds: float = 30.0,
        breaker_clock: Callable[[], float] | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ProtocolError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ProtocolError("max_bytes must be positive")
        self._models = models
        self._variants = variants
        self._backend_factory = backend_factory
        self._seed = seed
        self._network = network
        self._slot_sharing = max(1, slot_sharing)
        self._plan_store = plan_store
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        #: insertion/recency-ordered: the first entry is the eviction victim
        self._entries: OrderedDict[BatchKey, EngineEntry] = OrderedDict()  # guarded_by: _mutex
        self._pending_plans: dict[BatchKey, Future] = {}  # guarded_by: _mutex
        self._locks: dict[BatchKey, threading.Lock] = {}  # guarded_by: _mutex
        self._generations: dict[BatchKey, int] = {}  # guarded_by: _mutex
        self._plan_bytes = 0  # guarded_by: _mutex
        self._evictions = 0  # guarded_by: _mutex
        self._invalidations = 0  # guarded_by: _mutex
        self._warm_starts = 0  # guarded_by: _mutex
        self._cold_builds = 0  # guarded_by: _mutex
        self._remote_builds = 0  # guarded_by: _mutex
        self._build_failures = 0  # guarded_by: _mutex
        self._quarantine_rejections = 0  # guarded_by: _mutex
        self._probe_builds = 0  # guarded_by: _mutex
        self._prepare_fallbacks = 0  # guarded_by: _mutex
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown_seconds
        self._breaker_clock = breaker_clock if breaker_clock is not None else time.monotonic
        self._breakers: dict[BatchKey, CircuitBreaker] = {}  # guarded_by: _mutex
        self._mutex = threading.Lock()

    @property
    def supports_remote_prepare(self) -> bool:
        """Remote (process) preparation needs the default picklable backend."""
        return self._backend_factory is None

    @property
    def plan_store(self) -> PlanStore | None:
        return self._plan_store

    def _key_lock(self, key: BatchKey) -> threading.Lock:
        with self._mutex:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def breaker_for(self, key: BatchKey) -> CircuitBreaker:
        """The circuit breaker guarding ``key``'s engine builds."""
        with self._mutex:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    cooldown_seconds=self._breaker_cooldown,
                    clock=self._breaker_clock,
                )
            return breaker

    def entry(self, key: BatchKey) -> EngineEntry:
        """The cached entry for ``key``, building (prepare+install) if needed.

        If a remote plan preparation is pending for ``key`` (see
        :meth:`adopt_plan_future`), the build waits for that plan and
        installs it instead of re-running the offline phase locally.  A
        build whose model was invalidated mid-flight is discarded and
        re-run against the current model (see the class docstring).

        Builds are circuit-broken per key: a transient build fault is
        retried once in place; repeated failures open the breaker and
        :class:`~repro.errors.EngineQuarantined` (with a retry hint) is
        raised until the cooldown admits a half-open probe build.
        """
        with self._key_lock(key):
            while True:
                with self._mutex:
                    entry = self._entries.get(key)
                    if entry is not None:
                        self._entries.move_to_end(key)
                        return entry
                    generation = self._generations.setdefault(key, 0)
                    pending = self._pending_plans.pop(key, None)
                entry = self._guarded_build(key, generation, pending)
                if self._insert(key, generation, entry):
                    return entry
                # invalidate_model ran while this build was in flight: the
                # engine embeds the replaced model's weights.  Loop and
                # rebuild against the model registered *now*.

    def _guarded_build(self, key: BatchKey, generation: int, pending) -> EngineEntry:
        """One breaker-guarded build attempt chain for ``key``.

        Degradation rungs, in order: an open breaker rejects with
        :class:`~repro.errors.EngineQuarantined`; a failed *remote* plan
        adoption degrades to a local build; a retryable build fault gets
        exactly one in-place rebuild; any further failure records into the
        breaker (opening it at the threshold) and propagates.
        """
        breaker = self.breaker_for(key)
        if not breaker.allow():
            with self._mutex:
                self._quarantine_rejections += 1
            raise EngineQuarantined(
                f"engine builds for ({key.model!r}, {key.variant!r}) are "
                f"quarantined after repeated build failures",
                retry_after_seconds=breaker.retry_after_seconds(),
            )
        if breaker.state == CircuitBreaker.HALF_OPEN:
            with self._mutex:
                self._probe_builds += 1
        try:
            entry = self._build_once(key, generation, pending)
        except Exception as first:  # noqa: BLE001 - classified below
            breaker.record_failure()
            with self._mutex:
                self._build_failures += 1
            if not getattr(first, "retryable", False) or not breaker.allow():
                raise
            try:
                entry = self._build(key, generation)
            except Exception:
                breaker.record_failure()
                with self._mutex:
                    self._build_failures += 1
                raise
        breaker.record_success()
        return entry

    def _build_once(self, key: BatchKey, generation: int, pending) -> EngineEntry:
        """Build via the pending remote plan when one exists, else locally.

        A remote preparation that failed (or whose adoption is hit by the
        ``offline_prepare`` fault site) is not fatal: the build degrades to
        a local ``prepare()`` and the fallback is counted.
        """
        if pending is not None:
            try:
                maybe_inject(SITE_OFFLINE_PREPARE, f"{key.model}/{key.variant}")
                payload = pending.result()
            except Exception:  # noqa: BLE001 - remote prepare degrades to local
                with self._mutex:
                    self._prepare_fallbacks += 1
            else:
                return self._build_from_plan(key, generation, *payload)
        return self._build(key, generation)

    def _insert(self, key: BatchKey, generation: int, entry: EngineEntry) -> bool:
        """Insert a finished build unless its generation was fenced off."""
        with self._mutex:
            if self._generations.get(key, 0) != generation:
                return False
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._plan_bytes += entry.plan_bytes
            self._evict_over_budget_locked(protect=key)
            return True

    def _evict_over_budget_locked(self, protect: BatchKey) -> None:
        """Evict LRU entries until the budgets hold (``protect`` stays).

        The just-inserted entry is never the victim -- even if it alone
        exceeds ``max_bytes`` -- because evicting it would make the cache
        thrash on every request for that key.
        """
        def over_budget() -> bool:
            if self._max_entries is not None and len(self._entries) > self._max_entries:
                return True
            if self._max_bytes is not None and self._plan_bytes > self._max_bytes:
                return True
            return False

        while over_budget():
            victim = next(iter(self._entries))
            if victim == protect:
                break
            self._remove_locked(victim)
            self._evictions += 1

    def _remove_locked(self, key: BatchKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._plan_bytes -= entry.plan_bytes

    def adopt_plan_future(self, key: BatchKey, future: Future) -> None:
        """Register an in-flight remote preparation of ``key``'s offline plan."""
        with self._mutex:
            if key not in self._entries:
                self._pending_plans[key] = future

    def _engine_skeleton(self, key: BatchKey) -> PrivateTransformerInference:
        if key.model not in self._models:
            raise ProtocolError(f"unknown model {key.model!r}")
        model = self._models[key.model]
        variant = self._variants[key.variant]
        backend = self._backend_factory() if self._backend_factory else None
        return PrivateTransformerInference(
            model, variant, backend=backend, seed=self._seed,
            network=self._network, slot_sharing=self._slot_sharing,
        )

    def _store_key(self, key: BatchKey, engine: PrivateTransformerInference):
        """The plan-store key of ``key``'s build, or None when persistence is off.

        Persistence rides on the same gate as remote preparation: the
        default (picklable, backend-independent) simulated backend.  A
        custom ``backend_factory`` may produce handles a revived plan
        cannot serve, so those builds stay cold.  The key fingerprints the
        *engine's own* model -- not whatever ``self._models`` currently maps
        the name to, which a concurrent ``register_model`` may have
        replaced mid-build -- and uses the *effective* slot sharing the
        engine clamped to (plans prepared at different sharing levels pack
        different tilings).
        """
        if self._plan_store is None or not self.supports_remote_prepare:
            return None
        return self._plan_store.key_for(
            engine.model, key.variant, self._seed, engine.slot_sharing
        )

    def _persist_plan(self, key: BatchKey, generation: int, store_key, plan) -> None:
        """Write ``plan`` to the store unless the build was fenced off.

        A remotely prepared plan embeds the model captured at *prefetch*
        time; if ``invalidate_model`` ran since this build snapshotted its
        generation, the engine skeleton (and thus the fingerprint) may
        belong to the replacement model while the plan belongs to the old
        one -- persisting it would poison the store and let the forced
        rebuild warm-start from exactly the stale plan the fence rejected.
        """
        if store_key is None:
            return
        with self._mutex:
            if self._generations.get(key, 0) != generation:
                return
        self._plan_store.store(store_key, plan)

    def _build_from_plan(
        self, key, generation, plan, offline_messages, offline_tracker
    ) -> EngineEntry:
        """Adopt a remotely prepared plan, merging its offline accounting."""
        start = time.perf_counter()
        engine = self._engine_skeleton(key)
        engine.install(plan)
        # The offline exchanges happened in the worker process; fold their
        # traffic and operation counts into this engine's books so the
        # accounting invariants (per-phase, totals) hold as if prepared here.
        engine.channel.messages.extend(offline_messages)
        engine.tracker.merge(offline_tracker)
        # Remotely prepared plans warm future processes too.
        self._persist_plan(key, generation, self._store_key(key, engine), plan)
        end = time.perf_counter()
        with self._mutex:
            self._remote_builds += 1
        return EngineEntry(
            engine=engine, build_seconds=end - start, prepare_seconds=0.0,
            plan_bytes=plan.approx_nbytes(),
        )

    def _build(self, key: BatchKey, generation: int) -> EngineEntry:
        maybe_inject(SITE_ENGINE_BUILD, f"{key.model}/{key.variant}")
        start = time.perf_counter()
        engine = self._engine_skeleton(key)
        store_key = self._store_key(key, engine)
        plan = None
        if store_key is not None:
            plan = self._plan_store.load(store_key)
            if plan is not None:
                try:
                    engine.install(plan)
                except (ProtocolError, ShapeError):
                    # A stored plan that no longer fits this engine (e.g.
                    # produced by an older layout of the same fingerprint)
                    # is just a miss; fall through to the cold build.
                    plan = None
        warm = plan is not None
        prepare_seconds = 0.0
        if not warm:
            prepare_start = time.perf_counter()
            plan = engine.prepare()
            engine.install(plan)
            prepare_seconds = time.perf_counter() - prepare_start
            self._persist_plan(key, generation, store_key, plan)
        end = time.perf_counter()
        with self._mutex:
            if warm:
                self._warm_starts += 1
            else:
                self._cold_builds += 1
        return EngineEntry(
            engine=engine,
            build_seconds=end - start,
            prepare_seconds=prepare_seconds,
            plan_bytes=plan.approx_nbytes(),
            warm_start=warm,
        )

    def remote_prepare_args(self, key: BatchKey):
        """The picklable engine-construction arguments for a worker process."""
        if key.model not in self._models:
            raise ProtocolError(f"unknown model {key.model!r}")
        return (
            self._models[key.model],
            self._variants[key.variant],
            self._seed,
            self._network,
            self._slot_sharing,
        )

    def prefetch(self, key: BatchKey, pool: ThreadPoolExecutor) -> Future[EngineEntry]:
        """Schedule the offline preparation of ``key``'s engine on ``pool``."""
        return pool.submit(self.entry, key)

    def invalidate_model(self, name: str) -> None:
        """Drop cached engines built for an older model under ``name``.

        In-flight remote plan preparations for the old model are discarded
        too -- installing a plan whose offline shares embed the replaced
        model's weights onto an engine built from the new model would
        produce silently wrong results (mask shapes alone would match).
        Builds *currently in flight* are fenced by bumping the per-key
        generation: their insert is rejected and they rebuild against the
        current model (see :meth:`entry`).
        """
        with self._mutex:
            for key in [k for k in self._entries if k.model == name]:
                self._remove_locked(key)
                self._invalidations += 1
            for key in [k for k in self._pending_plans if k.model == name]:
                del self._pending_plans[key]
            for key in self._generations:
                if key.model == name:
                    self._generations[key] += 1

    def evict(self, key: BatchKey) -> bool:
        """Explicitly drop one cached entry; returns whether it existed."""
        with self._mutex:
            existed = key in self._entries
            if existed:
                self._remove_locked(key)
                self._evictions += 1
            return existed

    def cached_keys(self) -> list[BatchKey]:
        """Cached keys, least-recently-used first."""
        with self._mutex:
            return list(self._entries)

    def stats(self) -> EngineCacheStats:
        """Lifecycle counters (entries, bytes, evictions, warm starts...)."""
        with self._mutex:
            return EngineCacheStats(
                entries=len(self._entries),
                plan_bytes=self._plan_bytes,
                evictions=self._evictions,
                invalidations=self._invalidations,
                warm_starts=self._warm_starts,
                cold_builds=self._cold_builds,
                remote_builds=self._remote_builds,
                build_failures=self._build_failures,
                quarantine_rejections=self._quarantine_rejections,
                probe_builds=self._probe_builds,
                prepare_fallbacks=self._prepare_fallbacks,
            )


class LinearServingPath:
    """Shared state of the slot-sharing linear path.

    One backend and one accounting channel serve every weight bank, so in a
    multi-worker drain linear batches serialise on :attr:`lock` -- the HE
    win of the linear path is slot sharing, not thread parallelism.

    The path additionally caches one :class:`~repro.he.bsgs.BSGSMatmulPlan`
    per ``(bank, geometry)``: the weight bank's generalized diagonals,
    pre-transformed into NTT form once (the plan-time forward transforms
    stay unattributed, like any shared pre-processing) and reused by every
    batch whose chunk geometry matches -- the online diagonal
    multiply-accumulate is then transform-free on the evaluation-resident
    backend.  Replacing a bank invalidates its plans
    (:meth:`invalidate_bank`), mirroring the engine cache's model
    invalidation.
    """

    def __init__(
        self,
        weight_banks: dict[str, np.ndarray],
        backend_factory: Callable[[], HEBackend] | None,
        network: NetworkModel | None = None,
    ) -> None:
        self.weight_banks = weight_banks
        self._backend_factory = backend_factory
        self._backend: HEBackend | None = None
        self.channel = Channel()
        if network is not None:
            self.channel.network = network
            self.channel.realize_network = True
        self.lock = threading.Lock()
        #: (bank name, BSGSGeometry) -> plan; guarded by :attr:`lock`.
        #: LRU-bounded: chunk geometry varies with the batch's total row
        #: count, so a long-lived server with diverse workloads would
        #: otherwise accumulate plans without limit.
        self._bsgs_plans: OrderedDict[tuple, BSGSMatmulPlan] = OrderedDict()  # guarded_by: lock

    def backend(self) -> HEBackend:
        if self._backend is None:
            if self._backend_factory is not None:
                self._backend = self._backend_factory()
            else:
                self._backend = SimulatedHEBackend(protocol_he_parameters())
        return self._backend

    def bsgs_plan_locked(self, name: str, weights: np.ndarray, geometry) -> BSGSMatmulPlan:
        """The cached NTT-form diagonal plan for ``(name, geometry)``.

        Must be called with :attr:`lock` held (batch execution already
        holds it).  A miss builds the plan -- charging its one-off forward
        transforms outside any request attribution -- and caches it for
        every later batch of the same chunk geometry.
        """
        key = (name, geometry)
        plan = self._bsgs_plans.get(key)
        if plan is None:
            plan = self._bsgs_plans[key] = prepare_bsgs_plan(
                self.backend(), weights, geometry
            )
        self._bsgs_plans.move_to_end(key)
        while len(self._bsgs_plans) > _BSGS_PLAN_CACHE_SIZE:
            self._bsgs_plans.popitem(last=False)
        return plan

    def replace_bank(self, name: str, weights: np.ndarray) -> None:
        """Install a new weight bank and drop its stale plans atomically.

        Batch execution reads the bank *and* resolves its plan under
        :attr:`lock`, so swapping the bank and invalidating the plans in
        one critical section guarantees no batch ever pairs the new bank
        with diagonals pre-transformed from the old one (or vice versa) --
        the same-shape replacement case where the geometry key alone could
        not tell the two apart.
        """
        with self.lock:
            self.weight_banks[name] = weights
            self._invalidate_bank_locked(name)

    def invalidate_bank(self, name: str) -> None:
        """Drop cached plans built from an older weight bank under ``name``."""
        with self.lock:
            self._invalidate_bank_locked(name)

    def _invalidate_bank_locked(self, name: str) -> None:
        for key in [k for k in self._bsgs_plans if k[0] == name]:
            del self._bsgs_plans[key]


class BatchExecutor:
    """Runs one batch at a time with full per-request attribution."""

    def __init__(self, engines: EngineCache, linear: LinearServingPath) -> None:
        self.engines = engines
        self.linear = linear

    def execute(self, batch: Batch, *, worker: str | None = None) -> list[RequestReport]:
        """Run one batch; ``worker`` tags the attribution in sharded drains."""
        maybe_inject(SITE_ONLINE_EXECUTE, f"batch-{batch.batch_id}")
        if batch.key.kind == "inference":
            return self._run_inference_batch(batch, worker)
        return self._run_linear_batch(batch, worker)

    # -- full-inference batches ---------------------------------------------
    def _run_inference_batch(self, batch: Batch, worker: str | None) -> list[RequestReport]:
        entry = self.engines.entry(batch.key)
        engine = entry.engine
        if len(batch.requests) > 1 and getattr(engine, "slot_sharing", 1) > 1:
            # The engine's FHGS modules can pack this batch's cross terms
            # block-diagonally into shared ciphertext slots: run the batch
            # through the engine as one unit.
            return self._run_shared_inference_batch(batch, engine, worker)
        reports: list[RequestReport] = []
        engine.tracker.set_worker(worker)
        engine.channel.set_worker(worker)
        try:
            for request in batch.requests:
                start = time.perf_counter()
                engine.tracker.set_request(request.request_id)
                engine.channel.set_request(request.request_id)
                try:
                    result = engine.run(request.payload)
                finally:
                    engine.tracker.set_request(None)
                    engine.channel.set_request(None)
                end = time.perf_counter()
                reports.append(
                    RequestReport(
                        request_id=request.request_id,
                        kind="inference",
                        model=batch.key.model,
                        variant=batch.key.variant,
                        batch_id=batch.batch_id,
                        batch_size=len(batch),
                        result=result.logits,
                        prediction=result.prediction,
                        queue_seconds=start - request.submitted_at,
                        latency_seconds=end - start,
                        online_bytes=engine.channel.total_bytes(
                            Phase.ONLINE, request=request.request_id
                        ),
                        online_rounds=engine.channel.round_count(
                            Phase.ONLINE, request=request.request_id
                        ),
                        offline_bytes=engine.channel.total_bytes(
                            Phase.OFFLINE, request=request.request_id
                        ),
                        he_operations=engine.tracker.request_snapshot(request.request_id),
                        worker=worker,
                        deadline=request.deadline,
                        deadline_met=(
                            None if request.deadline is None else end <= request.deadline
                        ),
                    )
                )
        finally:
            engine.tracker.set_worker(None)
            engine.channel.set_worker(None)
        return reports

    def _run_shared_inference_batch(
        self, batch: Batch, engine, worker: str | None
    ) -> list[RequestReport]:
        """Run one inference batch through the FHGS slot-sharing path.

        The batch's requests execute as one unit (``engine.run_batch``), so
        cross-term ciphertexts, HE operations and latency are *joint*
        figures for the whole group -- reported per request with
        ``shared_slot_batch=True``, exactly like the linear path's chunks.
        """
        tag = f"batch-{batch.batch_id}-shared"
        engine.tracker.set_worker(worker)
        engine.channel.set_worker(worker)
        start = time.perf_counter()
        try:
            with engine.tracker.attribute(tag):
                engine.channel.set_request(tag)
                try:
                    results = engine.run_batch(
                        [request.payload for request in batch.requests]
                    )
                finally:
                    engine.channel.set_request(None)
        finally:
            engine.tracker.set_worker(None)
            engine.channel.set_worker(None)
        end = time.perf_counter()
        ops = engine.tracker.request_snapshot(tag)
        online_bytes = engine.channel.total_bytes(Phase.ONLINE, request=tag)
        online_rounds = engine.channel.round_count(Phase.ONLINE, request=tag)
        offline_bytes = engine.channel.total_bytes(Phase.OFFLINE, request=tag)
        return [
            RequestReport(
                request_id=request.request_id,
                kind="inference",
                model=batch.key.model,
                variant=batch.key.variant,
                batch_id=batch.batch_id,
                batch_size=len(batch),
                result=result.logits,
                prediction=result.prediction,
                queue_seconds=start - request.submitted_at,
                latency_seconds=end - start,
                online_bytes=online_bytes,
                online_rounds=online_rounds,
                offline_bytes=offline_bytes,
                he_operations=dict(ops),
                shared_slot_batch=True,
                worker=worker,
                deadline=request.deadline,
                deadline_met=(
                    None if request.deadline is None else end <= request.deadline
                ),
            )
            for request, result in zip(batch.requests, results, strict=True)
        ]

    # -- shared-slot linear batches -----------------------------------------
    def _run_linear_batch(self, batch: Batch, worker: str | None) -> list[RequestReport]:
        """Run a slot-sharing linear batch, chunked to the ciphertext capacity."""
        with self.linear.lock:
            backend = self.linear.backend()
            weights = self.linear.weight_banks.get(batch.key.model)
            if weights is None:
                raise ProtocolError(f"unknown weight bank {batch.key.model!r}")
            for request in batch.requests:
                # Banks can be replaced between submit and execution; the
                # shape contract is re-checked at batch time (see
                # ServingRuntime.register_weights).
                if request.payload.shape[1] != weights.shape[0]:
                    raise ProtocolError(
                        f"request {request.request_id!r} of shape "
                        f"{request.payload.shape} no longer matches weight bank "
                        f"{batch.key.model!r} of shape {weights.shape}"
                    )
            reports: list[RequestReport] = []
            slot_count = backend.slot_count
            chunk: list[InferenceRequest] = []
            chunk_index = 0
            rows = 0
            for request in [*batch.requests, None]:  # None flushes the last chunk
                if request is not None and rows + request.payload.shape[0] <= slot_count:
                    chunk.append(request)
                    rows += request.payload.shape[0]
                    continue
                if chunk:
                    reports.extend(
                        self._run_linear_chunk(
                            batch, chunk_index, chunk, backend, weights, worker
                        )
                    )
                    chunk_index += 1
                if request is not None:
                    # Per-request capacity was validated at submit time.
                    chunk = [request]
                    rows = request.payload.shape[0]
            return reports

    def _run_linear_chunk(
        self,
        batch: Batch,
        chunk_index: int,
        chunk: list[InferenceRequest],
        backend: HEBackend,
        weights: np.ndarray,
        worker: str | None,
    ) -> list[RequestReport]:
        # One tag per slot-sharing chunk: a batch may split into several
        # chunks, and reusing one tag would double-count earlier chunks'
        # operations in later chunks' reports.
        tag = f"batch-{batch.batch_id}-chunk-{chunk_index}"
        channel = self.linear.channel
        backend.tracker.set_worker(worker)
        channel.set_worker(worker)
        total_rows = sum(request.payload.shape[0] for request in chunk)
        # Rotation-minimal BSGS diagonals when the backend supports slot-wise
        # products (the simulator; chunking already caps rows at the slot
        # count); the column kernel otherwise (exact BFV).
        use_bsgs = bsgs_kernel_fits(
            backend, total_rows, weights.shape[0], weights.shape[1]
        )
        bsgs_plan = None
        if use_bsgs:
            # NTT-form diagonal masks are prepared once per (bank, geometry)
            # and shared by every request of every matching batch; building
            # them before the request attribution starts keeps the plan-time
            # transforms unattributed, like other shared pre-processing.
            geometry = bsgs_geometry(
                total_rows, weights.shape[0], weights.shape[1], backend.slot_count
            )
            bsgs_plan = self.linear.bsgs_plan_locked(batch.key.model, weights, geometry)
        start = time.perf_counter()
        try:
            with backend.tracker.attribute(tag):
                results = encrypted_batch_matmul(
                    backend, [request.payload for request in chunk], weights,
                    kernel="bsgs" if use_bsgs else "columns",
                    bsgs_plan=bsgs_plan,
                )
            end = time.perf_counter()
            ops = backend.tracker.request_snapshot(tag)
            # Wire accounting: the column kernel ships one ciphertext per
            # input feature and one per output column; BSGS packs the input
            # into its block geometry and the whole result into a single
            # ciphertext.
            if use_bsgs:
                input_cts, result_cts = geometry.num_ciphertexts, geometry.out_groups
            else:
                input_cts, result_cts = weights.shape[0], weights.shape[1]
            channel.set_request(tag)
            channel.send(
                "client", "server", input_cts * backend.ciphertext_bytes,
                description="Enc(stacked inputs)", step=STEP_LINEAR, phase=Phase.ONLINE,
            )
            channel.send(
                "server", "client", result_cts * backend.ciphertext_bytes,
                description="Enc(stacked results)", step=STEP_LINEAR, phase=Phase.ONLINE,
            )
            channel.set_request(None)
        finally:
            backend.tracker.set_worker(None)
            channel.set_worker(None)
        online_bytes = channel.total_bytes(Phase.ONLINE, request=tag)
        return [
            RequestReport(
                request_id=request.request_id,
                kind="linear",
                model=batch.key.model,
                variant="",
                batch_id=batch.batch_id,
                batch_size=len(chunk),
                result=result,
                prediction=None,
                queue_seconds=start - request.submitted_at,
                latency_seconds=end - start,
                online_bytes=online_bytes,
                online_rounds=2,
                offline_bytes=0,
                he_operations=dict(ops),
                shared_slot_batch=True,
                worker=worker,
                deadline=request.deadline,
                deadline_met=(
                    None if request.deadline is None else end <= request.deadline
                ),
            )
            for request, result in zip(chunk, results, strict=True)
        ]


class PipelinedExecutor:
    """Sharded drain that overlaps offline preparation with online execution.

    Given the batches of one drain, the executor

    1. prefetches the offline plan of every distinct inference key onto a
       *prepare pool* (in first-batch order, so the engine a shard needs
       first is prepared first), then
    2. partitions the batches by :class:`EngineShardMap` worker and lets
       each shard worker execute its batches in formation order.

    While worker 0 runs batch N's online phase, the prepare pool is already
    producing the offline plans later batches need -- the pipelining the
    paper's offline/online split makes possible at serving scale.
    """

    def __init__(self, base: BatchExecutor, *, num_workers: int = 2) -> None:
        if num_workers < 1:
            raise ProtocolError("num_workers must be at least 1")
        self.base = base
        self.num_workers = num_workers
        self.shard_map = EngineShardMap(num_workers)
        #: shard batches that hit a transient fault and were re-executed
        #: serially on the base executor (the worker-shard degradation rung)
        self.serial_fallbacks = 0

    def drain(
        self,
        batches: list[Batch],
        on_batch_complete: Callable[[list[RequestReport]], None] | None = None,
    ) -> list[RequestReport]:
        """Execute all batches; reports come back in batch-formation order.

        ``on_batch_complete`` fires (serialised under a lock) as each batch
        finishes, so a caller can register completions batch by batch -- an
        error in one shard then cannot lose the results of batches that
        already ran, matching the serial drain's durability guarantee.
        """
        if not batches:
            return []

        # Offline pipeline: every engine the drain will need but is not yet
        # cached gets its offline plan prepared ahead of time, in
        # first-appearance order (so the engine a shard needs first is
        # prepared first).  With the default backend the preparation runs in
        # *worker processes* -- the simulated-HE exchanges are GIL-bound, so
        # only separate processes truly overlap them with the parent's
        # online phases; custom backends fall back to a thread pool.
        engines = self.base.engines
        cached = set(engines.cached_keys())
        prepare_keys: list[BatchKey] = []
        for batch in batches:
            if (
                batch.key.kind == "inference"
                and batch.key not in cached
                and batch.key not in prepare_keys
            ):
                prepare_keys.append(batch.key)

        shards: dict[int, list[Batch]] = {}
        for batch in batches:
            worker = self.shard_map.worker_for(batch.key)
            shards.setdefault(worker, []).append(batch)

        completed: dict[int, list[RequestReport]] = {}
        completed_lock = threading.Lock()

        def run_shard(worker: int, shard_batches: list[Batch]) -> None:
            label = f"worker-{worker}"
            for batch in shard_batches:
                try:
                    maybe_inject(SITE_WORKER_SHARD, label)
                    reports = self.base.execute(batch, worker=label)
                except TransientFault:
                    # Worker-shard degradation rung: the failed batch
                    # re-executes serially on the base executor (no worker
                    # attribution), marked degraded in its reports.  The
                    # shard itself lives on for its remaining batches.
                    reports = self.base.execute(batch, worker=None)
                    for report in reports:
                        report.degraded = True
                    with completed_lock:
                        self.serial_fallbacks += 1
                with completed_lock:
                    completed[batch.batch_id] = reports
                    if on_batch_complete is not None:
                        on_batch_complete(reports)

        prepare_pool, prefetches = self._start_offline_pipeline(prepare_keys)
        errors: list[Exception] = []
        try:
            with ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="shard"
            ) as worker_pool:
                futures = [
                    worker_pool.submit(run_shard, worker, shard_batches)
                    for worker, shard_batches in shards.items()
                ]
                for future in futures:
                    try:
                        future.result()
                    except Exception as exc:  # noqa: BLE001 - re-raised below
                        errors.append(exc)
            for prefetch in prefetches:
                # Surface engine-build failures even if no shard consumed
                # them -- except *transient* faults: the shard that needed
                # the engine either retried the build itself (absorbing the
                # fault) or failed on its own and is already in ``errors``;
                # raising here would fail a drain whose every batch
                # completed.
                exc = prefetch.exception()
                if (
                    exc is not None
                    and not getattr(exc, "retryable", False)
                    and not errors
                ):
                    errors.append(exc)
        finally:
            if prepare_pool is not None:
                prepare_pool.shutdown(wait=True)
        if errors:
            raise errors[0]

        ordered: list[RequestReport] = []
        for batch in batches:
            ordered.extend(completed.get(batch.batch_id, []))
        return ordered

    def _start_offline_pipeline(
        self, prepare_keys: list[BatchKey]
    ) -> tuple[ProcessPoolExecutor | ThreadPoolExecutor | None, list[Future]]:
        """Kick off ahead-of-time offline preparation for ``prepare_keys``."""
        engines = self.base.engines
        if not prepare_keys:
            return None, []
        if engines.supports_remote_prepare:
            workers = min(len(prepare_keys), max(1, (os.cpu_count() or 2) - 1))
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            pool: ProcessPoolExecutor | ThreadPoolExecutor = ProcessPoolExecutor(
                max_workers=workers, mp_context=context,
                # Twiddle tables are built once per worker process (a cache
                # hit under fork), never per batch.
                initializer=_warm_worker_ntt_tables,
                initargs=(cached_ntt_parameters(),),
            )
            prefetches = []
            for key in prepare_keys:
                future = pool.submit(_prepare_plan_remote, *engines.remote_prepare_args(key))
                engines.adopt_plan_future(key, future)
                prefetches.append(future)
            return pool, prefetches
        pool = ThreadPoolExecutor(
            max_workers=len(prepare_keys), thread_name_prefix="offline-prepare"
        )
        return pool, [engines.prefetch(key, pool) for key in prepare_keys]
