"""Synthetic NLP task generators standing in for GLUE and SQuAD.

The paper fine-tunes BERT checkpoints on MNLI-m, MRPC, SST-2, SQuAD1 and
SQuAD2.  Pre-trained checkpoints and the original corpora are not available
offline, so each task is replaced by a deterministic synthetic generator that
produces sentences from label-dependent vocabulary mixtures (see DESIGN.md's
substitution table).  The accuracy experiments then measure the two effects
the paper's accuracy columns capture -- 15-bit fixed-point execution and
polynomial-activation approximation -- as agreement with the plaintext
floating-point model (teacher labels), which is exactly the part of the
accuracy story the cryptographic protocol influences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from ..nn.tokenizer import WordPieceTokenizer

__all__ = ["SyntheticExample", "SyntheticTask", "TASK_SPECS", "make_task"]


@dataclass(frozen=True)
class SyntheticExample:
    """One labelled example: raw text, token ids, and a class label."""

    text: str
    token_ids: np.ndarray
    label: int


@dataclass
class SyntheticTask:
    """A labelled synthetic dataset mimicking one of the paper's tasks."""

    name: str
    num_labels: int
    examples: list[SyntheticExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def token_matrix(self) -> np.ndarray:
        """All token-id sequences stacked into a (num_examples, seq_len) array."""
        return np.stack([example.token_ids for example in self.examples])

    def labels(self) -> np.ndarray:
        return np.array([example.label for example in self.examples], dtype=np.int64)


# Task specifications: (number of labels, topic word banks per label).
TASK_SPECS: dict[str, dict] = {
    "mnli-m": {
        "num_labels": 3,
        "styles": [
            "the claim follows from the statement and is therefore",
            "the claim contradicts the statement so it must be",
            "the claim is unrelated to the statement and remains",
        ],
    },
    "mrpc": {
        "num_labels": 2,
        "styles": [
            "these two sentences describe the same event in the market",
            "these two sentences describe different events in the market",
        ],
    },
    "sst-2": {
        "num_labels": 2,
        "styles": [
            "the movie was great and the review is good",
            "the movie was terrible and the review is bad",
        ],
    },
    "squad1": {
        "num_labels": 2,
        "styles": [
            "the question is answered by the passage about the patient",
            "the question is not answered by the passage about the patient",
        ],
    },
    "squad2": {
        "num_labels": 2,
        "styles": [
            "the answer to this question appears in the health data",
            "this question has no answer in the health data",
        ],
    },
}


def make_task(
    name: str,
    tokenizer: WordPieceTokenizer,
    *,
    num_examples: int = 64,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> SyntheticTask:
    """Generate a deterministic synthetic dataset for one of the paper's tasks.

    Sentences are built from the task's label-dependent style templates with
    random filler words drawn from the tokenizer vocabulary, then tokenised
    and padded to the model's sequence length.

    All randomness flows through one explicit ``numpy.random.Generator`` --
    either the caller's ``rng`` or a fresh generator seeded with ``seed`` --
    never the global numpy state, so generation is reproducible regardless
    of test ordering or parallel execution.
    """
    if name not in TASK_SPECS:
        raise ParameterError(
            f"unknown task {name!r}; available: {sorted(TASK_SPECS)}"
        )
    spec = TASK_SPECS[name]
    if rng is None:
        rng = np.random.default_rng(seed)
    filler_words = [
        token for token in tokenizer.vocab
        if token.isalpha() and len(token) > 2 and not token.startswith("##")
    ]
    task = SyntheticTask(name=name, num_labels=spec["num_labels"])
    for index in range(num_examples):
        label = int(rng.integers(0, spec["num_labels"]))
        style = spec["styles"][label]
        extras = " ".join(rng.choice(filler_words, size=4))
        text = f"{style} {extras}"
        token_ids = np.array(tokenizer.encode(text), dtype=np.int64)
        task.examples.append(SyntheticExample(text=text, token_ids=token_ids, label=label))
    return task
