"""Figure 6 / Section III-D -- tokens-first vs feature-based ciphertext packing.

Regenerates the rotation-count comparison for the embedding-layer matrix
multiplication (n = 30 tokens, d_oh = 30522, M = 4096 slots): the paper's
claim is a saving of roughly ``c * (M - M/n)`` rotations.  The closed-form
counts are cross-checked against *measured* rotation counts from an actual
encrypted matrix product on the simulated backend at a reduced size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import format_table
from repro.he import (
    PackingLayout,
    SimulatedHEBackend,
    bsgs_rotation_count,
    encrypted_packed_matmul,
    rotation_savings,
    toy_parameters,
)


def test_paper_scale_rotation_savings():
    savings = rotation_savings(
        n_tokens=30, n_features=30522, slot_count=4096, n_outputs=768
    )
    print("\nFigure 6 -- packing rotation counts (BERT embedding, n=30, M=4096)\n")
    print(format_table(
        ["Layout", "Rotations"],
        [
            ["feature-based", f"{savings['feature_based_rotations']:,}"],
            ["tokens-first", f"{savings['tokens_first_rotations']:,}"],
            ["BSGS diagonals", f"{savings['bsgs_rotations']:,}"],
            ["saved (tokens-first)", f"{savings['saved_rotations']:,}"],
            ["reduction (tokens-first)", f"{savings['reduction_factor']:.1f}x"],
            ["reduction (BSGS vs tokens-first)", f"{savings['bsgs_reduction_factor']:.1f}x"],
        ],
    ))
    # The paper claims ~c*(M - M/n) savings, i.e. a reduction of roughly n.
    assert 15 < savings["reduction_factor"] < 45
    # The BSGS kernel drops the per-ciphertext cost to O(sqrt(d)) on top.
    assert savings["bsgs_rotations"] < savings["tokens_first_rotations"]


def test_measured_rotations_match_closed_form():
    backend = SimulatedHEBackend(toy_parameters(256))
    rng = np.random.default_rng(0)
    x = rng.integers(0, 30, size=(8, 64))
    w = rng.integers(1, 30, size=(64, 4))
    measured = {}
    for layout in PackingLayout:
        backend.tracker.reset()
        result = encrypted_packed_matmul(backend, x, w, layout)
        assert np.array_equal(result, (x @ w) % backend.plaintext_modulus)
        measured[layout] = backend.tracker.count("he_rotate")
    closed = rotation_savings(8, 64, 256, n_outputs=4)
    # Measured counts follow the closed-form ordering and rough magnitude.
    assert measured[PackingLayout.TOKENS_FIRST] < measured[PackingLayout.FEATURE_BASED]
    assert measured[PackingLayout.FEATURE_BASED] <= closed["feature_based_rotations"]
    assert measured[PackingLayout.TOKENS_FIRST] <= closed["tokens_first_rotations"] + 8
    # The BSGS kernel's measured count *equals* its closed form exactly.
    assert measured[PackingLayout.BSGS_DIAGONAL] == bsgs_rotation_count(8, 64, 4, 256)
    assert measured[PackingLayout.BSGS_DIAGONAL] < measured[PackingLayout.TOKENS_FIRST]


@pytest.mark.benchmark(group="packing")
@pytest.mark.parametrize("layout", list(PackingLayout))
def test_bench_encrypted_matmul(benchmark, layout):
    backend = SimulatedHEBackend(toy_parameters(256))
    rng = np.random.default_rng(1)
    x = rng.integers(0, 30, size=(8, 32))
    w = rng.integers(0, 30, size=(32, 4))
    benchmark(lambda: encrypted_packed_matmul(backend, x, w, layout))
