"""Evaluation harness and batch-serving runtime.

Ties models, protocols, cost model and data together for the paper-table
experiments (:mod:`repro.runtime.evaluation`) and serves many concurrent
inference requests over shared cryptographic state -- batch formation under
pluggable policies (:mod:`repro.runtime.scheduler`), serial and pipelined
execution (:mod:`repro.runtime.executor`), the
:class:`~repro.runtime.serving.ServingRuntime` façade over both, and the
continuous-drain :class:`~repro.runtime.frontdoor.AsyncServingRuntime`
front door (submit while a drain is in flight; futures per request).
Networked serving puts a versioned wire protocol on the front door
(:mod:`repro.runtime.net`) and routes traffic across crash-tolerant
replica processes (:mod:`repro.runtime.fleet`).
"""

from .evaluation import (
    AccuracyReport,
    SchemeLatency,
    calibrated_latency_model,
    evaluate_accuracy,
    scheme_latencies,
)
from .executor import (
    BatchExecutor,
    EngineCache,
    EngineCacheStats,
    EngineShardMap,
    PipelinedExecutor,
    RequestReport,
)
from .faults import (
    ALL_SITES,
    CircuitBreaker,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_injector,
    fault_scope,
    maybe_corrupt,
    maybe_inject,
    set_fault_injector,
)
from .fleet import (
    BATCH_ID_STRIDE,
    FleetHandle,
    FleetRouter,
    read_execution_logs,
)
from .frontdoor import AdmissionController, AsyncServingRuntime, RequestHandle
from .net import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    ReplicaProcessHandle,
    ReplicaServer,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
    recv_exactly,
    recv_frame,
    send_frame,
    spawn_replica_process,
)
from .scheduler import (
    Batch,
    BatchKey,
    BatchScheduler,
    DeadlinePolicy,
    FifoPolicy,
    InferenceRequest,
    SchedulingPolicy,
    SizeAwarePolicy,
)
from .serving import (
    ServingRuntime,
    ServingStats,
    run_sequential_baseline,
    summarize,
)

__all__ = [
    "ALL_SITES",
    "BATCH_ID_STRIDE",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "AccuracyReport",
    "AdmissionController",
    "AsyncServingRuntime",
    "Batch",
    "BatchExecutor",
    "BatchKey",
    "BatchScheduler",
    "CircuitBreaker",
    "DeadlinePolicy",
    "EngineCache",
    "EngineCacheStats",
    "EngineShardMap",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FifoPolicy",
    "FleetHandle",
    "FleetRouter",
    "InferenceRequest",
    "PipelinedExecutor",
    "ReplicaProcessHandle",
    "ReplicaServer",
    "RequestHandle",
    "RequestReport",
    "RetryPolicy",
    "SchedulingPolicy",
    "SchemeLatency",
    "ServingRuntime",
    "ServingStats",
    "SizeAwarePolicy",
    "active_injector",
    "calibrated_latency_model",
    "decode_error",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "evaluate_accuracy",
    "fault_scope",
    "maybe_corrupt",
    "maybe_inject",
    "read_execution_logs",
    "recv_exactly",
    "recv_frame",
    "run_sequential_baseline",
    "scheme_latencies",
    "send_frame",
    "set_fault_injector",
    "spawn_replica_process",
    "summarize",
]
