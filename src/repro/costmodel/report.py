"""Table/report formatting helpers used by the benchmark harness."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_seconds"]


def format_seconds(value: float) -> str:
    """Human-friendly seconds: '3094.4', '0.04K' style is avoided -- plain units."""
    if value >= 1000:
        return f"{value / 1000:.2f}K"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table (used by benchmark stdout reports)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)
