"""Tests for FHGS block-diagonal slot sharing across batched requests.

The ROADMAP item this closes: a ``k``-request serving batch's attention is
block-diagonal over requests, so the FHGS online cross terms pack into
*shared* ciphertext slots -- request ``r`` occupies slot block ``r`` -- and
the batch ships ``~1/k`` the cross-term ciphertexts.  Pinned here:

* bit-identical reconstruction against per-request ``online()`` in all
  three product modes (plain, middle-weighted, right-weighted);
* the 1/k cross-term ciphertext count on the wire;
* graceful chunking past the plan's capacity and fallback on untiled plans;
* plan transfer/pickling with the tiled packings;
* the engine-level ``run_batch`` and the serving runtime's shared batches
  producing the same logits as solo runs.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.he import SimulatedHEBackend
from repro.mpc import AdditiveSharing
from repro.protocols import (
    PRIMER_FPC,
    PROTOCOL_FORMAT,
    Phase,
    PrivateTransformerInference,
    protocol_he_parameters,
)
from repro.protocols.channel import Channel
from repro.protocols.fhgs import FHGSMatmul
from repro.protocols.hgs import HGSLinearLayer
from repro.runtime import ServingRuntime, run_sequential_baseline

CROSS_TERMS = "Enc(cross terms - Rs)"


def _module(mode: str, rng, share_slots: int):
    backend = SimulatedHEBackend(protocol_he_parameters())
    sharing = AdditiveSharing(PROTOCOL_FORMAT, seed=7)
    channel = Channel()
    if mode == "plain":
        module = FHGSMatmul(
            left_shape=(4, 6), right_shape=(5, 6), backend=backend,
            sharing=sharing, channel=channel, step="qk",
            transpose_right=True, seed=3,
        )
        draw = lambda: (rng.integers(0, 300, size=(4, 6)),
                        rng.integers(0, 300, size=(5, 6)))
        expect = lambda left, right: (left @ right.T) % sharing.modulus
    elif mode == "middle":
        middle = rng.integers(0, 100, size=(6, 5))
        module = FHGSMatmul(
            left_shape=(4, 6), right_shape=(3, 5), backend=backend,
            sharing=sharing, channel=channel, step="chgs",
            transpose_right=True, middle_weights=middle, seed=5,
        )
        draw = lambda: (rng.integers(0, 200, size=(4, 6)),
                        rng.integers(0, 200, size=(3, 5)))
        expect = lambda left, right: (left @ middle @ right.T) % sharing.modulus
    else:
        weights = rng.integers(0, 100, size=(6, 3))
        module = FHGSMatmul(
            left_shape=(4, 4), right_shape=(4, 6), backend=backend,
            sharing=sharing, channel=channel, step="avw",
            transpose_right=False, right_weights=weights, seed=6,
        )
        draw = lambda: (rng.integers(0, 200, size=(4, 4)),
                        rng.integers(0, 200, size=(4, 6)))
        expect = lambda left, right: (left @ right @ weights) % sharing.modulus
    module.offline(share_slots=share_slots)
    return module, sharing, channel, draw, expect


class TestModuleLevel:
    @pytest.mark.parametrize("mode", ["plain", "middle", "right"])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_online_batch_reconstructs_every_request(self, mode, k, rng):
        module, sharing, _, draw, expect = _module(mode, rng, share_slots=4)
        pairs = [draw() for _ in range(k)]
        outs = module.online_batch(
            [sharing.share(left) for left, _ in pairs],
            [sharing.share(right) for _, right in pairs],
        )
        assert len(outs) == k
        for (left, right), out in zip(pairs, outs, strict=True):
            assert np.array_equal(out.reconstruct(), expect(left, right))

    @pytest.mark.parametrize("mode", ["plain", "middle", "right"])
    def test_cross_term_ciphertexts_drop_by_k(self, mode, rng):
        k = 4
        shared_mod, sharing, shared_ch, draw, _ = _module(mode, rng, share_slots=k)
        pairs = [draw() for _ in range(k)]
        shared_mod.online_batch(
            [sharing.share(left) for left, _ in pairs],
            [sharing.share(right) for _, right in pairs],
        )
        shared_bytes = sum(
            m.num_bytes for m in shared_ch.messages if m.description == CROSS_TERMS
        )
        solo_mod, solo_sharing, solo_ch, _, _ = _module(mode, rng, share_slots=1)
        for left, right in pairs:
            solo_mod.online(solo_sharing.share(left), solo_sharing.share(right))
        solo_bytes = sum(
            m.num_bytes for m in solo_ch.messages if m.description == CROSS_TERMS
        )
        assert solo_bytes == k * shared_bytes

    def test_batches_chunk_past_plan_capacity(self, rng):
        module, sharing, _, draw, expect = _module("plain", rng, share_slots=3)
        pairs = [draw() for _ in range(7)]  # 3 + 3 + 1
        outs = module.online_batch(
            [sharing.share(left) for left, _ in pairs],
            [sharing.share(right) for _, right in pairs],
        )
        for (left, right), out in zip(pairs, outs, strict=True):
            assert np.array_equal(out.reconstruct(), expect(left, right))

    def test_untiled_plan_falls_back_to_per_request(self, rng):
        module, sharing, channel, draw, expect = _module("plain", rng, share_slots=1)
        assert module.plan.slot_sharing == 1
        assert module.plan.enc_left_cols_tiled is None
        pairs = [draw() for _ in range(3)]
        outs = module.online_batch(
            [sharing.share(left) for left, _ in pairs],
            [sharing.share(right) for _, right in pairs],
        )
        for (left, right), out in zip(pairs, outs, strict=True):
            assert np.array_equal(out.reconstruct(), expect(left, right))
        # Per-request fallback ships one cross-term set per request.
        assert sum(
            1 for m in channel.messages if m.description == CROSS_TERMS
        ) == 3

    def test_slot_shared_plan_survives_pickling(self, rng):
        module, sharing, _, draw, expect = _module("plain", rng, share_slots=4)
        revived = pickle.loads(pickle.dumps(module.plan))
        assert revived.slot_sharing == 4
        module.install(revived)
        left, right = draw()
        out = module.online_batch([sharing.share(left)], [sharing.share(right)])[0]
        assert np.array_equal(out.reconstruct(), expect(left, right))

    def test_rejects_mismatched_operand_lists(self, rng):
        module, sharing, _, draw, _ = _module("plain", rng, share_slots=2)
        left, right = draw()
        with pytest.raises(ProtocolError):
            module.online_batch([sharing.share(left)], [])

    def test_share_slots_must_be_positive(self, rng):
        module, _, _, _, _ = _module("plain", rng, share_slots=2)
        with pytest.raises(ProtocolError):
            module.prepare(share_slots=0)


class TestHGSBatch:
    def test_online_batch_matches_per_request(self, rng):
        backend = SimulatedHEBackend(protocol_he_parameters())
        sharing = AdditiveSharing(PROTOCOL_FORMAT, seed=9)
        layer = HGSLinearLayer(
            weights=rng.integers(0, 100, size=(6, 5)),
            bias=rng.integers(0, 50, size=5),
            backend=backend, sharing=sharing, channel=Channel(),
            step="proj", input_rows=4, seed=11,
        )
        layer.offline()
        inputs = [rng.integers(0, 300, size=(4, 6)) for _ in range(3)]
        batched = layer.online_batch([sharing.share(x) for x in inputs])
        for x, out in zip(inputs, batched, strict=True):
            expected = layer.online(sharing.share(x)).reconstruct()
            assert np.array_equal(out.reconstruct(), expected)


class TestEngineAndRuntime:
    def test_run_batch_matches_run_bit_identically(self, tiny_model):
        rng = np.random.default_rng(5)
        tokens = [rng.integers(0, 40, size=6) for _ in range(3)]
        shared = PrivateTransformerInference(
            tiny_model, PRIMER_FPC, seed=13, slot_sharing=4
        )
        assert shared.slot_sharing == 4
        shared.offline()
        solo = PrivateTransformerInference(tiny_model, PRIMER_FPC, seed=13)
        solo.offline()
        batch_results = shared.run_batch(tokens)
        for token_ids, result in zip(tokens, batch_results, strict=True):
            expected = solo.run(token_ids)
            assert np.array_equal(result.logits, expected.logits)
            assert result.prediction == expected.prediction

    def test_slot_sharing_clamps_on_unsupported_backend(self, tiny_model):
        from repro.he import ExactBFVBackend, serving_parameters

        engine = PrivateTransformerInference(
            tiny_model, PRIMER_FPC, seed=1,
            backend=ExactBFVBackend(serving_parameters(256), seed=1),
            slot_sharing=8,
        )
        assert engine.slot_sharing == 1

    def test_runtime_shared_batches_cut_cross_term_traffic(self, tiny_model):
        rng = np.random.default_rng(7)
        tokens = [rng.integers(0, 40, size=6) for _ in range(4)]

        def serve(slot_sharing):
            runtime = ServingRuntime(
                {"tiny": tiny_model}, max_batch_size=4, seed=21,
                fhgs_slot_sharing=slot_sharing,
            )
            for token_ids in tokens:
                runtime.submit("tiny", token_ids)
            reports = runtime.run_pending()
            engine = runtime.engine_for("tiny")
            cross_bytes = sum(
                m.num_bytes for m in engine.channel.messages
                if m.description == CROSS_TERMS and m.phase is Phase.ONLINE
            )
            return reports, cross_bytes

        shared_reports, shared_bytes = serve(None)     # defaults to batch size
        solo_reports, solo_bytes = serve(1)
        assert all(r.shared_slot_batch for r in shared_reports)
        assert not any(r.shared_slot_batch for r in solo_reports)
        assert solo_bytes == 4 * shared_bytes
        expected, _ = run_sequential_baseline(tiny_model, tokens, seed=99)
        for report, logits in zip(shared_reports, expected, strict=True):
            assert np.array_equal(report.result, logits)

    def test_shared_batch_reports_stay_reconciled(self, tiny_model):
        """Joint accounting still satisfies the tracker/channel invariants."""
        rng = np.random.default_rng(3)
        runtime = ServingRuntime({"tiny": tiny_model}, max_batch_size=4, seed=2)
        for _ in range(4):
            runtime.submit("tiny", rng.integers(0, 40, size=6))
        reports = runtime.run_pending()
        engine = runtime.engine_for("tiny")
        tracker = engine.tracker
        recombined = dict(tracker.unattributed())
        for request_id in tracker.requests():
            for op, count in tracker.request_snapshot(request_id).items():
                recombined[op] = recombined.get(op, 0) + count
        assert recombined == tracker.snapshot()
        channel = engine.channel
        tagged = sum(
            channel.total_bytes(Phase.ONLINE, request=request_id)
            for request_id in channel.requests()
        )
        assert tagged == channel.total_bytes(Phase.ONLINE)
        for report in reports:
            assert report.shared_slot_batch
            assert report.online_bytes > 0
            assert report.online_rounds > 0
