"""RL002 -- domain discipline in ``he/``.

Two sub-checks of the PR 5/PR 6 evaluation-domain invariants:

1. **No eager reduction inside NTT stage loops.**  The lazy-reduction
   Harvey/Shoup butterflies keep values in ``[0, 4q)`` across stages and
   reduce exactly once at the end; a ``% q`` (or ``np.mod``) *inside* a
   stage loop silently reintroduces the per-stage reduction the tier was
   built to avoid.  A stage loop is a ``for`` whose iterable mentions the
   precomputed per-stage twiddle tables (``stages`` / ``twiddle``) or a
   ``while`` stepping the butterfly ``length``/``gap`` -- the final
   ``for i in range(n)`` normalisation loops that follow them are the
   single legal reduction and are not stage loops.

2. **Ciphertext combining flows through domain-aligning entry points.**
   A function combining components of two different ciphertext operands
   (two distinct names with ``.c0``/``.c1``/``.values`` access) must call
   an alignment helper (``_aligned``/``_aligned_binary``/
   ``_binary_domain``/``convert_batch``/``to_eval``/``to_coeff``) or
   inspect ``.domain`` itself -- adding mixed-residency component
   arithmetic without it is exactly the bug class the exact-count
   residency tests exist to catch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..core import Finding, ParsedModule, Rule, register

_STAGE_HINTS = ("stage", "twiddle")
_WHILE_HINTS = ("length", "gap", "half")
_ALIGN_ENTRYPOINTS = {
    "_aligned",
    "_aligned_binary",
    "_binary_domain",
    "convert_batch",
    "to_eval",
    "to_coeff",
    "align_domains",
}
_COMPONENT_ATTRS = {"c0", "c1", "values"}


def _identifiers(node: ast.AST) -> set[str]:
    names = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _is_stage_loop(node: ast.AST) -> bool:
    if isinstance(node, ast.For):
        header = _identifiers(node.iter) | _identifiers(node.target)
        return any(hint in name.lower() for name in header for hint in _STAGE_HINTS)
    if isinstance(node, ast.While):
        header = _identifiers(node.test)
        return any(name.lower() in _WHILE_HINTS for name in header)
    return False


def _is_mod_node(node: ast.AST) -> bool:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return True
    if isinstance(node, (ast.AugAssign,)) and isinstance(node.op, ast.Mod):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("mod", "remainder") and isinstance(node.func.value, ast.Name):
            return node.func.value.id == "np"
    return False


@register
class DomainDisciplineRule(Rule):
    rule_id = "RL002"
    summary = "lazy-reduction stage loops stay %-free; mixed-domain combining aligns first"
    fix_hint = (
        "hoist the reduction out of the stage loop (lazy [0, 4q) bound) or "
        "route the operands through a domain-aligning entry point"
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return module.in_package("he")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        yield from self._check_stage_loops(module)
        yield from self._check_combining(module)

    # -- sub-check 1: % inside stage loops --------------------------------
    def _check_stage_loops(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, in_stage_loop: bool) -> None:
            if in_stage_loop and _is_mod_node(node):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        "eager modular reduction inside an NTT stage loop "
                        "(lazy-reduction invariant: reduce once, after the loop)",
                    )
                )
            here = in_stage_loop or _is_stage_loop(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(node, (ast.For, ast.While)) and child in getattr(
                    node, "orelse", []
                ):
                    visit(child, in_stage_loop)
                else:
                    visit(child, here)

        visit(module.tree, False)
        return findings

    # -- sub-check 2: ciphertext combining --------------------------------
    def _check_combining(self, module: ParsedModule) -> Iterable[Finding]:
        for func in module.functions():
            operands: set[str] = set()
            aligned = False
            touches_domain = False
            for node in ast.walk(func):
                if isinstance(node, ast.Attribute):
                    if node.attr in _COMPONENT_ATTRS and isinstance(node.value, ast.Name):
                        if node.value.id not in ("self",):
                            operands.add(node.value.id)
                    if node.attr == "domain":
                        touches_domain = True
                    if node.attr in _ALIGN_ENTRYPOINTS:
                        aligned = True
                elif isinstance(node, ast.Name) and node.id in _ALIGN_ENTRYPOINTS:
                    aligned = True
            if len(operands) >= 2 and not aligned and not touches_domain:
                yield self.finding(
                    module,
                    func.lineno,
                    f"'{func.name}' combines ciphertext components of "
                    f"{sorted(operands)} without a domain-aligning entry point "
                    "or a .domain check",
                )
