"""Batch serving demo: many private inference requests, one runtime.

Shows the layers of the serving runtime:

1. Six full private-inference requests (two protocol variants) flow through
   the request queue, are grouped into compatible batches, and run on cached
   engines -- keys and the whole HGS/FHGS offline phase are paid once per
   (model, variant) instead of once per request.  Queue observability
   (pending counts, per-key depth, max wait) and per-request reports show
   what the runtime is doing.
2. Eight private ``X @ W`` requests are packed tokens-first into *shared*
   ciphertext slots on the exact BFV backend: the batch needs one ciphertext
   per input feature, the same as a single request would.
3. A mixed multi-model workload over a realized network drains through the
   *pipelined executor*: offline plans are prepared on background workers
   while earlier batches run their online phases, beating the serial drain
   with bit-identical logits.
4. The *async front door*: requests are submitted while earlier batches are
   still executing -- each ``submit()`` returns a handle whose ``result()``
   blocks until that request's report is ready -- and a second process-style
   runtime *warm-starts* its engine from the on-disk plan store, skipping
   the offline HE exchange entirely.

Run with:  PYTHONPATH=src python examples/serve_batch.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.costmodel import format_table
from repro.he import ExactBFVBackend, serving_parameters
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PRIMER_F, PRIMER_FPC, NetworkModel, Phase
from repro.runtime import (
    AsyncServingRuntime,
    ServingRuntime,
    run_sequential_baseline,
    summarize,
)


def full_inference_demo() -> None:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=2
    )
    model = TransformerEncoder.initialise(config, seed=3)
    rng = np.random.default_rng(7)
    sequences = [rng.integers(0, config.vocab_size, size=config.seq_len) for _ in range(6)]

    runtime = ServingRuntime({"tiny-bert": model}, max_batch_size=4)
    print("Submitting 6 private inference requests (4x FPC, 1x F, 1x FPC) ...")
    for index, tokens in enumerate(sequences):
        variant = PRIMER_F if index == 4 else PRIMER_FPC
        runtime.submit("tiny-bert", tokens, variant=variant)

    scheduler = runtime.scheduler
    print(f"Queue before drain: {scheduler.pending_count()} pending, "
          f"max wait {scheduler.max_queue_wait() * 1e3:.1f} ms")
    for key, depth in scheduler.queue_depths().items():
        print(f"  depth[{key.model}/{key.variant}] = {depth}")

    start = time.perf_counter()
    reports = runtime.run_pending()
    wall = time.perf_counter() - start

    print(format_table(
        ["Request", "Variant", "Batch", "Pred", "Latency ms", "Online KB", "Rounds"],
        [
            [
                r.request_id, r.variant, str(r.batch_id), str(r.prediction),
                f"{r.latency_seconds * 1e3:.1f}", f"{r.online_bytes / 1e3:.1f}",
                str(r.online_rounds),
            ]
            for r in reports
        ],
    ))
    stats = summarize(reports, wall)
    print(f"Batches formed   : {stats.num_batches}")
    print(f"Serving wall time: {wall:.3f}s  ({stats.requests_per_second:.1f} req/s)")
    print(f"Queue wait       : mean {stats.mean_queue_seconds * 1e3:.1f} ms, "
          f"max {stats.max_queue_seconds * 1e3:.1f} ms")

    solo_logits, solo_wall = run_sequential_baseline(model, sequences[:4])
    identical = all(
        np.array_equal(report.result, expected)
        for report, expected in zip(reports[:4], solo_logits, strict=True)
    )
    print(f"Sequential (fresh engine per request, 4 reqs): {solo_wall:.3f}s")
    print(f"Batched results bit-identical to solo runs    : {identical}")


def shared_slot_demo() -> None:
    backend = ExactBFVBackend(serving_parameters(256), seed=5)
    runtime = ServingRuntime(backend_factory=lambda: backend, max_batch_size=8)
    rng = np.random.default_rng(0)
    weights = rng.integers(0, 7, size=(16, 4))
    runtime.register_weights("projection", weights)

    print("\nSubmitting 8 private X @ W requests to the exact BFV backend ...")
    matrices = [rng.integers(0, 100, size=(8, 16)) for _ in range(8)]
    for matrix in matrices:
        runtime.submit_linear("projection", matrix)
    reports = runtime.run_pending()

    encrypts = reports[0].he_operations.get("encrypt", 0)
    correct = all(
        np.array_equal(report.result, (matrix @ weights) % backend.plaintext_modulus)
        for matrix, report in zip(matrices, reports, strict=True)
    )
    print(f"Requests served       : {len(reports)} (one shared-slot batch)")
    print(f"Ciphertexts encrypted : {encrypts} "
          f"(= input features; a sequential run needs {len(reports) * encrypts})")
    print(f"All results exact     : {correct}")


def pipelined_demo() -> None:
    """Mixed multi-model drain: pipelined executor vs serial run_pending."""
    network = NetworkModel(delay_seconds=2.3e-3, bandwidth_bytes_per_second=500e6)
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    models = {f"model-{i}": TransformerEncoder.initialise(config, seed=i) for i in range(3)}
    rng = np.random.default_rng(1)
    tokens = [rng.integers(0, 40, size=6) for _ in range(6)]

    print("\nMixed 3-model workload over a realized network "
          f"({network.delay_seconds * 1e3:.1f} ms/round) ...")

    def submit_all(runtime: ServingRuntime) -> None:
        for index, t in enumerate(tokens):
            runtime.submit(f"model-{index % 3}", t)

    serial = ServingRuntime(models, max_batch_size=2, seed=11, network=network)
    submit_all(serial)
    start = time.perf_counter()
    serial_reports = serial.run_pending()
    serial_wall = time.perf_counter() - start

    pipelined = ServingRuntime(models, max_batch_size=2, seed=11, num_workers=3, network=network)
    submit_all(pipelined)
    start = time.perf_counter()
    pipelined_reports = pipelined.run_pending_pipelined()
    pipelined_wall = time.perf_counter() - start

    identical = all(
        np.array_equal(a.result, b.result)
        for a, b in zip(serial_reports, pipelined_reports, strict=True)
    )
    workers = sorted({r.worker for r in pipelined_reports})
    print(format_table(
        ["Path", "Wall seconds", "Requests/s"],
        [
            ["serial drain", f"{serial_wall:.2f}", f"{len(tokens) / serial_wall:.2f}"],
            ["pipelined drain", f"{pipelined_wall:.2f}", f"{len(tokens) / pipelined_wall:.2f}"],
            ["speedup", "", f"{serial_wall / pipelined_wall:.2f}x"],
        ],
    ))
    print(f"Shard workers used    : {', '.join(workers)}")
    print(f"Logits bit-identical  : {identical}")


def front_door_demo() -> None:
    """Async submission over a plan-store-backed runtime, then a warm start."""
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    model = TransformerEncoder.initialise(config, seed=3)
    rng = np.random.default_rng(4)
    tokens = [rng.integers(0, 40, size=6) for _ in range(6)]

    with tempfile.TemporaryDirectory() as plan_dir:
        print("\nAsync front door: submitting while the drain loop is running ...")
        start = time.perf_counter()
        with AsyncServingRuntime(
            {"tiny-bert": model}, max_batch_size=3, seed=11, plan_store=plan_dir
        ) as door:
            handles = []
            for t in tokens:
                handles.append(door.submit("tiny-bert", t))
                time.sleep(0.02)  # traffic trickles in mid-drain
            reports = [handle.result(timeout=300) for handle in handles]
        wall = time.perf_counter() - start
        batches = len({report.batch_id for report in reports})
        print(f"Requests served  : {len(reports)} across {batches} batches "
              f"in {wall:.2f}s (submissions interleaved with execution)")

        print("Restarting the runtime against the same plan store ...")
        warm = ServingRuntime({"tiny-bert": model}, seed=11, plan_store=plan_dir,
                              max_batch_size=3)
        start = time.perf_counter()
        engine = warm.engine_for("tiny-bert")
        warm_build = time.perf_counter() - start
        offline_ops = sum(engine.tracker.phase_snapshot(Phase.OFFLINE.value).values())
        stats = warm.engine_cache.stats()
        print(f"Warm-start build : {warm_build * 1e3:.1f} ms, "
              f"{offline_ops} offline HE operations "
              f"(warm starts: {stats.warm_starts}, cold builds: {stats.cold_builds})")
        identical = np.array_equal(
            engine.run(tokens[0]).logits, reports[0].result
        )
        print(f"Warm logits bit-identical to the front door's: {identical}")


def main() -> None:
    full_inference_demo()
    shared_slot_demo()
    pipelined_demo()
    front_door_demo()


if __name__ == "__main__":
    main()
