"""Encoder-only Transformer (BERT-style) built from the plaintext layers.

:class:`TransformerEncoder` is the model whose private inference Primer
implements.  It exposes both the standard forward pass and a
``forward_with_trace`` variant that returns every intermediate tensor the
protocols need to verify against (embedding output, per-block Q/K/V, raw
attention scores, attention outputs, FFN outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError
from .activations import softmax, tanh_poly
from .attention import MultiHeadSelfAttention
from .config import TransformerConfig
from .layers import Embedding, FeedForward, LayerNorm, Linear

__all__ = ["EncoderBlock", "TransformerEncoder", "ClassifierHead"]


@dataclass
class EncoderBlock:
    """One Transformer encoder block: MHSA + residual/LN + FFN + residual/LN."""

    attention: MultiHeadSelfAttention
    attention_norm: LayerNorm
    feed_forward: FeedForward
    output_norm: LayerNorm

    @classmethod
    def initialise(cls, config: TransformerConfig, rng: np.random.Generator) -> EncoderBlock:
        return cls(
            attention=MultiHeadSelfAttention.initialise(
                config.embed_dim, config.num_heads, rng
            ),
            attention_norm=LayerNorm.initialise(config.embed_dim),
            feed_forward=FeedForward.initialise(
                config.embed_dim, config.hidden_ffn_dim, rng
            ),
            output_norm=LayerNorm.initialise(config.embed_dim),
        )

    def __call__(
        self, x: np.ndarray, *, return_intermediates: bool = False
    ) -> np.ndarray | tuple[np.ndarray, dict[str, np.ndarray]]:
        if return_intermediates:
            attn_out, intermediates = self.attention(x, return_intermediates=True)
        else:
            attn_out = self.attention(x)
        hidden = self.attention_norm(x + attn_out)
        ffn_out = self.feed_forward(hidden)
        output = self.output_norm(hidden + ffn_out)
        if not return_intermediates:
            return output
        intermediates = dict(intermediates)
        intermediates.update({
            "attention_output": attn_out,
            "post_attention": hidden,
            "ffn_output": ffn_out,
            "block_output": output,
        })
        return output, intermediates


@dataclass
class ClassifierHead:
    """Pooler (first token) + linear classifier, as in BERT fine-tuning."""

    pooler: Linear
    classifier: Linear

    @classmethod
    def initialise(cls, config: TransformerConfig, rng: np.random.Generator) -> ClassifierHead:
        return cls(
            pooler=Linear.initialise(config.embed_dim, config.embed_dim, rng),
            classifier=Linear.initialise(config.embed_dim, config.num_labels, rng),
        )

    def __call__(self, sequence_output: np.ndarray) -> np.ndarray:
        pooled = np.tanh(self.pooler(sequence_output[0]))
        return self.classifier(pooled)

    def polynomial(self, sequence_output: np.ndarray) -> np.ndarray:
        """FHE-friendly variant: tanh replaced by its polynomial substitute."""
        pooled = tanh_poly(self.pooler(sequence_output[0]))
        return self.classifier(pooled)


@dataclass
class TransformerEncoder:
    """A full encoder-only model: embeddings, stacked blocks, classifier head."""

    config: TransformerConfig
    embedding: Embedding
    blocks: list[EncoderBlock]
    head: ClassifierHead
    final_norm: LayerNorm | None = None
    _cached_trace: dict | None = field(default=None, repr=False)

    @classmethod
    def initialise(cls, config: TransformerConfig, *, seed: int = 0) -> TransformerEncoder:
        """Create a model with deterministic synthetic weights."""
        rng = np.random.default_rng(seed)
        embedding = Embedding.initialise(
            config.vocab_size, config.seq_len, config.embed_dim, rng
        )
        blocks = [EncoderBlock.initialise(config, rng) for _ in range(config.num_blocks)]
        head = ClassifierHead.initialise(config, rng)
        return cls(config=config, embedding=embedding, blocks=blocks, head=head)

    # -- forward passes -------------------------------------------------------
    def encode(self, token_ids: np.ndarray) -> np.ndarray:
        """Run embeddings + all encoder blocks, returning the (n, d) sequence."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ShapeError("encode expects a 1-D token-id sequence")
        hidden = self.embedding(token_ids)
        for block in self.blocks:
            hidden = block(hidden)
        return hidden

    def logits(self, token_ids: np.ndarray) -> np.ndarray:
        """Classification logits for a token-id sequence."""
        return self.head(self.encode(token_ids))

    def predict(self, token_ids: np.ndarray) -> int:
        """Predicted class label."""
        return int(np.argmax(self.logits(token_ids)))

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        """Class probabilities."""
        return softmax(self.logits(token_ids))

    def forward_with_trace(self, token_ids: np.ndarray) -> tuple[np.ndarray, dict]:
        """Forward pass that records every intermediate the protocols verify.

        Returns ``(logits, trace)`` where ``trace`` has the embedding output
        plus a per-block list of intermediate dictionaries.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hidden = self.embedding(token_ids)
        trace: dict = {"embedding_output": hidden, "blocks": []}
        for block in self.blocks:
            hidden, intermediates = block(hidden, return_intermediates=True)
            trace["blocks"].append(intermediates)
        trace["sequence_output"] = hidden
        logits = self.head(hidden)
        trace["logits"] = logits
        return logits, trace
