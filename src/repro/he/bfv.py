"""An exact BFV-style additive homomorphic encryption scheme.

This is the "real cryptography" backend of the reproduction.  It implements
exactly the subset of SEAL used by the paper (Section IV: *"only additive HE
operations and rotations are used and ciphertext–ciphertext multiplications
are not required"*):

* key generation (ternary secret, RLWE public key),
* encryption / decryption with invariant-noise tracking,
* ciphertext + ciphertext and ciphertext + plaintext addition / subtraction,
* ciphertext × plaintext polynomial and ciphertext × scalar multiplication,
* monomial rotations (multiplication by ``X**k``), which shift
  coefficient-packed slots.

Slot-wise (CRT-batched) products and Galois-key rotations are intentionally
*not* implemented; the protocols in :mod:`repro.protocols` are formulated so
that their exact-backend instantiation only needs the operations above, and
the packing/rotation experiments that need slot semantics run on the
functional backend in :mod:`repro.he.simulated`, which counts the same
operations the real SEAL deployment would execute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import NoiseBudgetExhausted, ParameterError
from .keys import PublicKey, SecretKey
from .params import BFVParameters
from .polyring import PolynomialRing
from .tracker import OperationTracker

__all__ = ["Ciphertext", "BFVContext"]


@dataclass
class Ciphertext:
    """A BFV ciphertext ``(c0, c1)`` plus an analytic noise-bound estimate.

    ``noise_bound`` is an upper estimate of the infinity norm of the
    invariant noise numerator.  It is updated by every evaluator operation
    and used to report a noise *budget* (bits of headroom left before
    decryption fails), mirroring SEAL's ``invariant_noise_budget``.
    """

    c0: np.ndarray
    c1: np.ndarray
    noise_bound: float
    slots_used: int

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.noise_bound, self.slots_used)


@dataclass
class BFVContext:
    """Owns the ring, the keys, and the evaluator operations.

    Parameters
    ----------
    params:
        The :class:`~repro.he.params.BFVParameters` to instantiate.
    seed:
        Seed for key generation and encryption randomness (tests rely on
        reproducibility; a deployment would use ``secrets``-grade entropy).
    tracker:
        Optional :class:`~repro.he.tracker.OperationTracker` shared with the
        cost model; every homomorphic operation is recorded on it.
    """

    params: BFVParameters
    seed: int = 2023
    tracker: OperationTracker | None = None
    ring: PolynomialRing = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)
    _secret: SecretKey = field(init=False, repr=False)
    _public: PublicKey = field(init=False, repr=False)
    #: NTT-domain forms of the keys, cached so every encryption/decryption
    #: saves the repeated forward transforms of p0, p1 and s.
    _p0_ntt: np.ndarray = field(init=False, repr=False)
    _p1_ntt: np.ndarray = field(init=False, repr=False)
    _s_ntt: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.ring = PolynomialRing(
            degree=self.params.ring_degree, modulus=self.params.ciphertext_modulus
        )
        self._rng = np.random.default_rng(self.seed)
        if self.tracker is None:
            self.tracker = OperationTracker()
        self._generate_keys()

    # -- key management ----------------------------------------------------
    def _generate_keys(self) -> None:
        ring = self.ring
        s = ring.sample_ternary(self._rng)
        a = ring.sample_uniform(self._rng)
        e = ring.sample_error(self._rng, self.params.error_stddev)
        p0 = ring.sub(ring.neg(ring.add(ring.mul(a, s), e)), ring.zero())
        self._secret = SecretKey(poly=s)
        self._public = PublicKey(p0=p0, p1=a)
        ntt = ring.ntt
        self._p0_ntt = ntt.forward(p0)
        self._p1_ntt = ntt.forward(a)
        self._s_ntt = ntt.forward(s)
        self.tracker.record("keygen")

    @property
    def secret_key(self) -> SecretKey:
        return self._secret

    @property
    def public_key(self) -> PublicKey:
        return self._public

    # -- encoding ----------------------------------------------------------
    def encode(self, values: np.ndarray) -> np.ndarray:
        """Pack integer residues (mod t) into a plaintext polynomial.

        One value per coefficient ("coefficient packing"); at most
        ``slot_count`` values fit.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ParameterError("encode expects a 1-D vector of residues")
        if values.size > self.params.slot_count:
            raise ParameterError(
                f"cannot pack {values.size} values into {self.params.slot_count} slots"
            )
        plain = np.zeros(self.params.ring_degree, dtype=np.int64)
        plain[: values.size] = np.mod(values, self.params.plaintext_modulus)
        return plain

    def decode(self, plain: np.ndarray, count: int | None = None) -> np.ndarray:
        """Read packed residues back out of a plaintext polynomial."""
        if count is None:
            count = self.params.slot_count
        return np.mod(plain[:count], self.params.plaintext_modulus)

    # -- encryption --------------------------------------------------------
    def _scale_plaintext(self, plain: np.ndarray) -> np.ndarray:
        """Scale a plaintext polynomial by ``q/t`` with exact rounding.

        Using ``round(q * m / t)`` instead of ``floor(q/t) * m`` removes the
        ``m * (q mod t) / q`` decryption error that the naive Delta-scaling
        introduces for large plaintext residues.
        """
        q = self.params.ciphertext_modulus
        t = self.params.plaintext_modulus
        scaled = (plain.astype(np.int64) * q + t // 2) // t
        return np.mod(scaled, q)

    def encrypt(self, values: np.ndarray) -> Ciphertext:
        """Encrypt a vector of plaintext residues (coefficient-packed)."""
        return self.encrypt_batch([values])[0]

    def encrypt_batch(self, values_list: list[np.ndarray]) -> list[Ciphertext]:
        """Encrypt many residue vectors with one batched NTT pass.

        All the randomness of the batch is sampled up front, the random
        polynomials ``u`` go through a single batched forward transform, and
        the pointwise products with the cached NTT forms of *both* public-key
        components come back through one stacked batched inverse — two
        transform calls total instead of the ``6B`` a loop over
        :meth:`encrypt` would cost, with the ``log N`` Python-level stage
        iterations of the lazy-reduction NTT amortised across ``2B`` rows.
        """
        if not values_list:
            return []
        batch = len(values_list)
        n = self.params.ring_degree
        q = self.params.ciphertext_modulus
        ring = self.ring
        plains = np.stack(
            [self.encode(np.asarray(v, dtype=np.int64)) for v in values_list]
        )
        scaled = self._scale_plaintext(plains)
        u = ring.sample_ternary(self._rng, count=batch)
        e1 = ring.sample_error(self._rng, self.params.error_stddev, count=batch)
        e2 = ring.sample_error(self._rng, self.params.error_stddev, count=batch)
        ntt = ring.ntt
        u_ntt = ntt.forward_batch(u)
        components = ntt.inverse_batch(
            np.vstack([u_ntt * self._p0_ntt % q, u_ntt * self._p1_ntt % q])
        )
        c0 = np.mod(components[:batch] + e1 + scaled, q)
        c1 = np.mod(components[batch:] + e2, q)
        # Fresh noise bound: ||e*u + e1 + e2*s|| <= stddev * (2N + 2) roughly;
        # use a conservative analytic estimate.
        fresh = self.params.error_stddev * (2 * n + 2)
        self.tracker.record(
            "encrypt", count=batch, bytes_moved=batch * self.params.ciphertext_bytes
        )
        return [
            Ciphertext(
                c0=c0[i], c1=c1[i], noise_bound=fresh,
                slots_used=int(np.asarray(values_list[i]).size),
            )
            for i in range(batch)
        ]

    def decrypt(self, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        """Decrypt a ciphertext back to its packed residues."""
        if count is None:
            count = ct.slots_used
        return self.decrypt_batch([ct], counts=[count])[0]

    def decrypt_batch(
        self, cts: list[Ciphertext], counts: list[int] | None = None
    ) -> list[np.ndarray]:
        """Decrypt many ciphertexts with one batched NTT pass."""
        if not cts:
            return []
        for ct in cts:
            if self.noise_budget(ct) <= 0:
                raise NoiseBudgetExhausted(
                    "ciphertext noise budget exhausted; decryption would be incorrect"
                )
        q = self.params.ciphertext_modulus
        t = self.params.plaintext_modulus
        ntt = self.ring.ntt
        c0 = np.stack([ct.c0 for ct in cts])
        c1 = np.stack([ct.c1 for ct in cts])
        raw = np.mod(c0 + ntt.inverse_batch(ntt.forward_batch(c1) * self._s_ntt % q), q)
        half = q // 2
        centered = np.where(raw > half, raw - q, raw).astype(np.float64)
        scaled = np.rint(centered * t / q).astype(np.int64)
        self.tracker.record("decrypt", count=len(cts))
        result = np.mod(scaled, t)
        if counts is None:
            counts = [ct.slots_used for ct in cts]
        return [result[i, : counts[i]] for i in range(len(cts))]

    def noise_budget(self, ct: Ciphertext) -> float:
        """Bits of noise headroom remaining (analytic estimate)."""
        q = self.params.ciphertext_modulus
        t = self.params.plaintext_modulus
        limit = q / (2.0 * t)
        if ct.noise_bound <= 0:
            return math.log2(limit)
        return math.log2(limit) - math.log2(ct.noise_bound)

    # -- homomorphic operations --------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext + ciphertext."""
        ring = self.ring
        self.tracker.record("he_add")
        return Ciphertext(
            c0=ring.add(a.c0, b.c0),
            c1=ring.add(a.c1, b.c1),
            noise_bound=a.noise_bound + b.noise_bound,
            slots_used=max(a.slots_used, b.slots_used),
        )

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext - ciphertext."""
        ring = self.ring
        self.tracker.record("he_add")
        return Ciphertext(
            c0=ring.sub(a.c0, b.c0),
            c1=ring.sub(a.c1, b.c1),
            noise_bound=a.noise_bound + b.noise_bound,
            slots_used=max(a.slots_used, b.slots_used),
        )

    def add_plain(self, a: Ciphertext, values: np.ndarray) -> Ciphertext:
        """Ciphertext + plaintext vector."""
        ring = self.ring
        plain = self.encode(np.asarray(values, dtype=np.int64))
        scaled = self._scale_plaintext(plain)
        self.tracker.record("he_add_plain")
        return Ciphertext(
            c0=ring.add(a.c0, scaled),
            c1=a.c1.copy(),
            noise_bound=a.noise_bound + 1.0,
            slots_used=max(a.slots_used, int(np.asarray(values).size)),
        )

    def multiply_scalar(self, a: Ciphertext, scalar: int) -> Ciphertext:
        """Ciphertext × small integer scalar (plaintext residue).

        This is the workhorse of the tokens-first packed matrix product: the
        weight entry multiplies every slot of the ciphertext.
        """
        ring = self.ring
        t = self.params.plaintext_modulus
        scalar = int(scalar) % t
        centered_scalar = scalar - t if scalar > t // 2 else scalar
        self.tracker.record("he_mul_plain")
        return Ciphertext(
            c0=ring.mul_scalar(a.c0, centered_scalar),
            c1=ring.mul_scalar(a.c1, centered_scalar),
            noise_bound=a.noise_bound * max(1, abs(centered_scalar)),
            slots_used=a.slots_used,
        )

    def multiply_plain_poly(self, a: Ciphertext, plain_values: np.ndarray) -> Ciphertext:
        """Ciphertext × plaintext polynomial (negacyclic convolution).

        Used by Gazelle-style diagonal matrix-vector products.  Note this is
        a *convolution* of the packed slots, not a slot-wise product.
        """
        ring = self.ring
        plain = self.encode(np.asarray(plain_values, dtype=np.int64))
        t = self.params.plaintext_modulus
        centered = np.where(plain > t // 2, plain - t, plain)
        norm = float(np.sum(np.abs(centered)))
        plain_mod_q = np.mod(centered, self.params.ciphertext_modulus)
        self.tracker.record("he_mul_plain")
        # One batched NTT over (c0, c1) shares the plaintext's forward transform.
        products = ring.mul_batch(np.stack([a.c0, a.c1]), plain_mod_q)
        return Ciphertext(
            c0=products[0],
            c1=products[1],
            noise_bound=a.noise_bound * max(1.0, norm),
            slots_used=self.params.slot_count,
        )

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        """Rotate packed slots by ``steps`` positions (monomial multiplication).

        Slots that wrap past the ring degree acquire a sign flip; callers are
        responsible for only reading un-wrapped slots (the packing layer
        guarantees this).
        """
        ring = self.ring
        self.tracker.record("he_rotate")
        return Ciphertext(
            c0=ring.rotate_coefficients(a.c0, steps),
            c1=ring.rotate_coefficients(a.c1, steps),
            noise_bound=a.noise_bound,
            slots_used=min(self.params.slot_count, a.slots_used + steps),
        )

    def zero_ciphertext(self, slots_used: int = 0) -> Ciphertext:
        """A fresh encryption of the all-zero vector (used as an accumulator)."""
        return self.encrypt(np.zeros(max(1, slots_used), dtype=np.int64))
