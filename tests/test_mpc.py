"""Tests for the MPC substrate: sharing, Beaver triples, OT, garbled circuits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CircuitError
from repro.he import SimulatedHEBackend, toy_parameters
from repro.mpc import (
    AdditiveSharing,
    HETripleGenerator,
    ObliviousTransfer,
    TrustedDealer,
    beaver_matmul,
)
from repro.mpc.gc import CircuitBuilder, Garbler, GarbledEvaluator


class TestAdditiveSharing:
    def test_share_reconstruct(self, rng):
        sharing = AdditiveSharing(seed=0)
        secret = rng.integers(0, sharing.modulus, size=(3, 4))
        assert np.array_equal(sharing.reconstruct(sharing.share(secret)), secret)

    def test_shares_look_uniform(self):
        sharing = AdditiveSharing(seed=0)
        shared = sharing.share(np.zeros((1000,), dtype=np.int64))
        # A share of zero should not itself be zero everywhere.
        assert np.count_nonzero(shared.server_share) > 900

    def test_linear_operations(self, rng):
        sharing = AdditiveSharing(seed=1)
        a = rng.integers(0, 100, size=(2, 3))
        b = rng.integers(0, 100, size=(2, 3))
        sa, sb = sharing.share(a), sharing.share(b)
        assert np.array_equal(sharing.add(sa, sb).reconstruct(), (a + b) % sharing.modulus)
        assert np.array_equal(sharing.sub(sa, sb).reconstruct(), (a - b) % sharing.modulus)
        assert np.array_equal(
            sharing.add_public(sa, b).reconstruct(), (a + b) % sharing.modulus
        )
        assert np.array_equal(
            sharing.mul_public(sa, 5).reconstruct(), (a * 5) % sharing.modulus
        )

    def test_matmul_public(self, rng):
        sharing = AdditiveSharing(seed=2)
        a = rng.integers(0, 100, size=(2, 3))
        w = rng.integers(0, 100, size=(3, 4))
        assert np.array_equal(
            sharing.matmul_public(sharing.share(a), w).reconstruct(),
            (a @ w) % sharing.modulus,
        )

    @given(st.integers(min_value=0, max_value=2 ** 15 - 1))
    @settings(max_examples=30, deadline=None)
    def test_share_reconstruct_property(self, value):
        sharing = AdditiveSharing(seed=3)
        shared = sharing.share(np.array([value]))
        assert shared.reconstruct()[0] == value


class TestBeaverTriples:
    def test_trusted_dealer_multiplication(self, rng):
        sharing = AdditiveSharing(seed=0)
        dealer = TrustedDealer(sharing, seed=1)
        x = rng.integers(0, sharing.modulus, size=(3, 4))
        y = rng.integers(0, sharing.modulus, size=(4, 2))
        triple = dealer.generate((3, 4), (4, 2))
        result, stats = beaver_matmul(sharing, sharing.share(x), sharing.share(y), triple)
        assert np.array_equal(result.reconstruct(), (x @ y) % sharing.modulus)
        assert stats["opened_elements"] == 12 + 8

    def test_he_generator_matches_dealer(self, rng):
        sharing = AdditiveSharing(seed=0)
        backend = SimulatedHEBackend(toy_parameters(64))
        generator = HETripleGenerator(sharing, backend, seed=2)
        x = rng.integers(0, sharing.modulus, size=(2, 3))
        y = rng.integers(0, sharing.modulus, size=(3, 2))
        triple = generator.generate((2, 3), (3, 2))
        result, _ = beaver_matmul(sharing, sharing.share(x), sharing.share(y), triple)
        assert np.array_equal(result.reconstruct(), (x @ y) % sharing.modulus)

    def test_he_generator_charges_tracker(self):
        sharing = AdditiveSharing(seed=0)
        backend = SimulatedHEBackend(toy_parameters(64))
        HETripleGenerator(sharing, backend, seed=2).generate((2, 2), (2, 2))
        assert backend.tracker.count("he_mul_plain") > 0

    def test_shape_mismatch_raises(self):
        from repro.errors import ShapeError
        sharing = AdditiveSharing(seed=0)
        with pytest.raises(ShapeError):
            TrustedDealer(sharing).generate((2, 3), (4, 2))


class TestObliviousTransfer:
    def test_transfers_correct_message(self):
        ot = ObliviousTransfer()
        assert ot.transfer(b"zero", b"one", 0) == b"zero"
        assert ot.transfer(b"zero", b"one", 1) == b"one"
        assert ot.stats.transfers == 2

    def test_batch_transfer(self):
        ot = ObliviousTransfer()
        got = ot.transfer_many([(b"a", b"b"), (b"c", b"d")], [1, 0])
        assert got == [b"b", b"c"]

    def test_invalid_choice_bit(self):
        with pytest.raises(ValueError):
            ObliviousTransfer().transfer(b"a", b"b", 2)


class TestCircuits:
    def _roundtrip(self, builder, circuit, garbler, values):
        bits = []
        for value in values:
            bits.extend(builder.encode_value(value))
        plain = builder.decode_bits(circuit.evaluate(bits))
        garbled = builder.decode_bits(
            GarbledEvaluator(garbler.garble(circuit)).evaluate(
                garbler.encode_inputs(circuit, bits)
            )
        )
        assert plain == garbled
        return plain

    def test_adder(self):
        builder = CircuitBuilder(word_bits=15)
        a, b = builder.input_word(), builder.input_word()
        builder.mark_output(builder.add_words(a, b))
        garbler = Garbler(seed=1)
        got = self._roundtrip(builder, builder.circuit, garbler, [12000, 30000])
        assert got == (12000 + 30000) % (1 << 15)

    def test_subtractor(self):
        builder = CircuitBuilder(word_bits=15)
        a, b = builder.input_word(), builder.input_word()
        builder.mark_output(builder.sub_words(a, b))
        garbler = Garbler(seed=2)
        got = self._roundtrip(builder, builder.circuit, garbler, [5, 9])
        assert got == (5 - 9) % (1 << 15)

    def test_relu_positive_and_negative(self):
        builder = CircuitBuilder(word_bits=15)
        word = builder.input_word()
        builder.mark_output(builder.relu_word(word))
        garbler = Garbler(seed=3)
        assert self._roundtrip(builder, builder.circuit, garbler, [100]) == 100
        negative = (1 << 15) - 50   # -50 in two's complement
        assert self._roundtrip(builder, builder.circuit, garbler, [negative]) == 0

    def test_max_words(self):
        builder = CircuitBuilder(word_bits=8)
        a, b = builder.input_word(), builder.input_word()
        builder.mark_output(builder.max_words(a, b))
        garbler = Garbler(seed=4)
        assert self._roundtrip(builder, builder.circuit, garbler, [17, 99]) == 99

    def test_arithmetic_shift(self):
        builder = CircuitBuilder(word_bits=8)
        word = builder.input_word()
        builder.mark_output(builder.shift_right_arithmetic(word, 2))
        garbler = Garbler(seed=5)
        assert self._roundtrip(builder, builder.circuit, garbler, [100]) == 25

    def test_free_xor_has_no_tables(self):
        builder = CircuitBuilder(word_bits=4)
        a, b = builder.input_word(), builder.input_word()
        builder.mark_output([builder.gate_xor(x, y) for x, y in zip(a, b, strict=True)])
        garbled = Garbler(seed=6).garble(builder.circuit)
        assert garbled.table_bytes == 0

    def test_bad_input_length_raises(self):
        builder = CircuitBuilder(word_bits=4)
        builder.mark_output(builder.input_word())
        with pytest.raises(CircuitError):
            builder.circuit.evaluate([0, 1])

    @given(st.integers(min_value=0, max_value=2 ** 10 - 1),
           st.integers(min_value=0, max_value=2 ** 10 - 1))
    @settings(max_examples=20, deadline=None)
    def test_garbled_adder_property(self, a, b):
        builder = CircuitBuilder(word_bits=10)
        wa, wb = builder.input_word(), builder.input_word()
        builder.mark_output(builder.add_words(wa, wb))
        garbler = Garbler(seed=7)
        garbled = garbler.garble(builder.circuit)
        bits = builder.encode_value(a) + builder.encode_value(b)
        got = builder.decode_bits(
            GarbledEvaluator(garbled).evaluate(garbler.encode_inputs(builder.circuit, bits))
        )
        assert got == (a + b) % (1 << 10)
