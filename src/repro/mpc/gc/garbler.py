"""Garbling of Boolean circuits (free-XOR + point-and-permute).

The garbler assigns every wire a pair of 128-bit labels (one for bit 0, one
for bit 1) with the free-XOR invariant ``label_1 = label_0 XOR delta``.  XOR
and NOT gates then cost nothing; AND gates produce a four-row garbled table
encrypted under a SHA-256-based key-derivation function (standing in for the
fixed-key AES of JustGarble).  Point-and-permute colour bits let the
evaluator pick the right row without trial decryption.

This is a real, functioning garbling scheme: the test-suite garbles the
arithmetic gadgets from :mod:`repro.mpc.gc.circuits` and checks that garbled
evaluation matches plaintext evaluation on random inputs.  The cost model
uses the resulting table sizes (32 bytes per row, 4 rows per AND gate) for
GC communication, and per-gate garble/evaluate timings for latency.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from ...errors import CircuitError
from .circuits import Circuit, GateType

__all__ = ["LABEL_BYTES", "GarbledGate", "GarbledCircuit", "Garbler"]

#: Wire-label length: 16 bytes = 128-bit security, matching the paper's setting.
LABEL_BYTES = 16


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b, strict=True))


def _kdf(label_a: bytes, label_b: bytes, gate_id: int) -> bytes:
    """Key derivation for one garbled row (H(A || B || gate_id))."""
    digest = hashlib.sha256(
        label_a + label_b + gate_id.to_bytes(4, "little")
    ).digest()
    return digest[:LABEL_BYTES]


@dataclass
class GarbledGate:
    """An AND gate's four encrypted rows, indexed by the colour bits."""

    gate_id: int
    rows: list[bytes]


@dataclass
class GarbledCircuit:
    """Everything the evaluator needs: tables, colour decoding, output maps."""

    circuit: Circuit
    garbled_gates: dict[int, GarbledGate]
    #: decoding info: output wire id -> colour bit of the FALSE label
    output_decoding: dict[int, int]
    #: labels for constant wires (value already fixed by the garbler)
    constant_labels: dict[int, bytes]

    @property
    def table_bytes(self) -> int:
        """Total size of the garbled tables on the wire."""
        return sum(len(g.rows) * LABEL_BYTES for g in self.garbled_gates.values())


@dataclass
class Garbler:
    """Garbles circuits and encodes inputs into wire labels.

    Parameters
    ----------
    seed:
        Optional seed; when given, labels are derived deterministically (for
        reproducible tests).  Without a seed, labels use ``secrets``.
    """

    seed: int | None = None
    _wire_labels: dict[int, tuple[bytes, bytes]] = field(default_factory=dict)
    _delta: bytes = b""
    _counter: int = 0

    def _random_bytes(self) -> bytes:
        if self.seed is None:
            return secrets.token_bytes(LABEL_BYTES)
        self._counter += 1
        return hashlib.sha256(
            self.seed.to_bytes(8, "little") + self._counter.to_bytes(8, "little")
        ).digest()[:LABEL_BYTES]

    def _label_pair(self) -> tuple[bytes, bytes]:
        false_label = self._random_bytes()
        return false_label, _xor_bytes(false_label, self._delta)

    @staticmethod
    def _colour(label: bytes) -> int:
        """Point-and-permute colour bit (LSB of the label)."""
        return label[-1] & 1

    def garble(self, circuit: Circuit) -> GarbledCircuit:
        """Garble a circuit, producing tables and remembering wire labels."""
        self._wire_labels = {}
        # Free-XOR offset with colour bit forced to 1 so the two labels of a
        # wire always have opposite colours.
        delta = bytearray(self._random_bytes())
        delta[-1] |= 1
        self._delta = bytes(delta)

        for wire in range(circuit.num_inputs):
            self._wire_labels[wire] = self._label_pair()
        for wire in circuit.constants:
            self._wire_labels[wire] = self._label_pair()

        garbled_gates: dict[int, GarbledGate] = {}
        for gate_id, gate in enumerate(circuit.gates):
            if gate.gate_type is GateType.XOR:
                a0, _ = self._get_labels(gate.input_a)
                b0, _ = self._get_labels(gate.input_b)
                out0 = _xor_bytes(a0, b0)
                self._wire_labels[gate.output] = (out0, _xor_bytes(out0, self._delta))
            elif gate.gate_type is GateType.NOT:
                a0, a1 = self._get_labels(gate.input_a)
                # NOT is free: swap the roles of the two labels.
                self._wire_labels[gate.output] = (a1, a0)
            elif gate.gate_type is GateType.AND:
                garbled_gates[gate_id] = self._garble_and(gate_id, gate.input_a, gate.input_b, gate.output)
            else:  # pragma: no cover - enum exhaustive
                raise CircuitError(f"unsupported gate type {gate.gate_type}")

        output_decoding = {
            wire: self._colour(self._wire_labels[wire][0]) for wire in circuit.outputs
        }
        constant_labels = {
            wire: self._wire_labels[wire][value]
            for wire, value in circuit.constants.items()
        }
        return GarbledCircuit(
            circuit=circuit,
            garbled_gates=garbled_gates,
            output_decoding=output_decoding,
            constant_labels=constant_labels,
        )

    def _get_labels(self, wire: int | None) -> tuple[bytes, bytes]:
        if wire is None or wire not in self._wire_labels:
            raise CircuitError(f"wire {wire} has no labels (circuit out of order?)")
        return self._wire_labels[wire]

    def _garble_and(self, gate_id: int, in_a: int, in_b: int, out: int) -> GarbledGate:
        a_labels = self._get_labels(in_a)
        b_labels = self._get_labels(in_b)
        out_labels = self._label_pair()
        self._wire_labels[out] = out_labels

        rows: list[bytes | None] = [None] * 4
        for bit_a in (0, 1):
            for bit_b in (0, 1):
                key = _kdf(a_labels[bit_a], b_labels[bit_b], gate_id)
                plain = out_labels[bit_a & bit_b]
                row_index = (self._colour(a_labels[bit_a]) << 1) | self._colour(
                    b_labels[bit_b]
                )
                rows[row_index] = _xor_bytes(key, plain)
        return GarbledGate(gate_id=gate_id, rows=[r for r in rows if r is not None])

    # -- input encoding ------------------------------------------------------
    def encode_inputs(self, circuit: Circuit, input_bits: list[int]) -> dict[int, bytes]:
        """Map plaintext input bits to their wire labels (garbler side)."""
        if len(input_bits) != circuit.num_inputs:
            raise CircuitError(
                f"circuit expects {circuit.num_inputs} input bits, got {len(input_bits)}"
            )
        return {
            wire: self._wire_labels[wire][int(bit) & 1]
            for wire, bit in enumerate(input_bits)
        }

    def input_label_pairs(self, circuit: Circuit) -> dict[int, tuple[bytes, bytes]]:
        """Both labels of every input wire (what the OT sender feeds the OT)."""
        return {wire: self._wire_labels[wire] for wire in range(circuit.num_inputs)}
