"""Benchmark-regression gate over ``BENCH_serving.json``.

The serving benchmarks record their headline numbers (see
``benchmarks/_record.py``); this script is the committed floor under them.
CI runs it twice: in the blocking tier-1 job against the *committed*
``BENCH_serving.json`` (a PR cannot merge numbers below a floor), and
again after the tier-2 benchmark job against freshly measured numbers
(advisory, since wall-clock speedups are runner-dependent).  Either way a
regression of the cached-engine, pipelined, BSGS-rotation,
FHGS-slot-sharing, plan-store-warm-start, NTT-domain-residency,
kernel-tier, fault-recovery or replica-fleet wins is caught before it
lands silently.

Run with:  python benchmarks/check_regressions.py [path-to-BENCH_serving.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: ``section.metric`` -> minimum acceptable value.  These are deliberately
#: below the typically measured numbers (≈8x, ≈4x, ≈1.4x, 4.5x, 4.0x, ≈20x+)
#: so the gate only trips on real regressions, not benchmark noise.
FLOORS: dict[str, float] = {
    "shared_slot_exact_bfv.throughput_speedup": 3.0,
    "cached_engine_serving.throughput_speedup": 3.0,
    "pipelined_executor.throughput_speedup": 1.2,
    "bsgs_matmul.rotation_reduction": 3.0,
    "fhgs_slot_sharing.cross_term_ciphertext_reduction": 3.0,
    "plan_store_warm_start.warm_start_speedup": 5.0,
    # Evaluation-domain residency: >= 3x fewer NTT transforms on the BSGS
    # linear path (typically ~80x) and a real wall-clock win on the exact
    # backend's resident plaintext products (typically far above 2x).
    "ntt_domain_residency.transform_reduction": 3.0,
    "ntt_domain_residency.exact_backend_speedup": 2.0,
    # Compiled kernel tier: the self-calibrated fastest tier must keep a
    # real wall-clock win on exact-backend serving at paper dimensions
    # (N = 4096, six limbs; typically ~2.7x on a single core, more with
    # multicore parallelism available).
    "kernel_tier.exact_backend_speedup": 2.0,
    # Fault recovery: serving throughput under the injected transient-fault
    # rate (with one guaranteed firing) must stay within 0.8x of the
    # fault-free pass -- retries amortise, they do not serialise the drain.
    "fault_recovery.throughput_ratio": 0.8,
    # Replica fleet: two forked replica processes overlapping their batch
    # linger windows must beat the single-process front door on the
    # closed-loop workload (typically ~1.6x on a one-core runner).
    "replica_fleet.throughput_speedup": 1.3,
}

#: ``section.metric`` -> exact required value (correctness, not wall clock):
#: a warm-started engine must run *zero* offline HE operations, and the
#: EVAL-resident transform count must equal its closed form exactly (any
#: gap is a redundant -- or missing -- domain crossing).
EXACT: dict[str, float] = {
    "plan_store_warm_start.warm_offline_he_operations": 0,
    "ntt_domain_residency.closed_form_gap": 0,
    # Double-CRT serving: the two-limb transform count must equal the
    # limb-scaled closed form (3*input_cts + output_cts) * L exactly -- any
    # gap is a limb-scaling bug in a charge site or a redundant transform.
    "rns_limb_arithmetic.closed_form_gap": 0,
    # Every kernel tier must serve logits bit-identical to the reference
    # numpy path with the limb-scaled transform closed form intact -- the
    # tier is a performance knob, never a semantics knob.
    "kernel_tier.bit_identical": 1,
    "kernel_tier.closed_form_gap": 0,
    # Fault tolerance: conservation must close exactly -- every submitted
    # request either completed or failed typed; a nonzero gap is a dropped
    # handle, and a typed failure under an all-transient plan with retry
    # headroom is a broken recovery path.
    "fault_recovery.conservation_gap": 0,
    "fault_recovery.typed_failures": 0,
    # Replica fleet: the router ledger must close exactly over the wire
    # (no dropped, duplicated, or hung requests), the fleet's logits must
    # be bit-identical to the single-process drain, and a fresh replica
    # over the shared plan store must warm-start every engine from disk.
    "replica_fleet.conservation_gap": 0,
    "replica_fleet.typed_failures": 0,
    "replica_fleet.bit_identical": 1,
    "replica_fleet.warm_start_hit_rate": 1.0,
}

#: Ceiling on `# repro-lint: disable=` suppressions across the checked tree
#: (stamped into the record by ``_record.py``).  Currently zero: every
#: project-invariant finding so far has been fixed rather than suppressed.
MAX_SUPPRESSIONS = 0


def check(path: Path) -> list[str]:
    """Return a list of human-readable failures (empty = all floors hold)."""
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return [f"{path} is missing; run the serving benchmarks first"]
    except json.JSONDecodeError as error:
        return [f"{path} is not valid JSON: {error}"]
    sections = data.get("sections", {})
    failures = []

    def lookup(key: str) -> float | None:
        section_name, metric = key.split(".", 1)
        section = sections.get(section_name)
        if section is None:
            failures.append(f"section {section_name!r} missing from {path.name}")
            return None
        value = section.get(metric)
        if not isinstance(value, (int, float)):
            failures.append(f"{key} missing or non-numeric in {path.name}")
            return None
        return value

    for key, floor in FLOORS.items():
        value = lookup(key)
        if value is not None and value < floor:
            failures.append(
                f"{key} = {value:.2f} fell below the committed floor {floor:.2f}"
            )
    for key, expected in EXACT.items():
        value = lookup(key)
        if value is not None and value != expected:
            failures.append(f"{key} = {value} must be exactly {expected}")

    # Static-analysis hygiene: _record.py stamps `python -m repro.analysis`
    # stats into the record (top-level, not a benchmark section).  The
    # suppression count is regression-gated at its current value -- zero --
    # so `# repro-lint: disable=...` comments cannot accumulate silently.
    analysis = data.get("analysis")
    if not isinstance(analysis, dict):
        failures.append(f"analysis stats missing from {path.name} (re-run a benchmark)")
    else:
        suppressions = analysis.get("suppression_count")
        if not isinstance(suppressions, int):
            failures.append(f"analysis.suppression_count missing from {path.name}")
        elif suppressions > MAX_SUPPRESSIONS:
            failures.append(
                f"analysis.suppression_count = {suppressions} exceeds the "
                f"committed ceiling {MAX_SUPPRESSIONS}"
            )
    return failures


def main(argv: list[str]) -> int:
    default = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    path = Path(argv[1]) if len(argv) > 1 else default
    failures = check(path)
    if failures:
        print("benchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"benchmark regression gate OK ({len(FLOORS)} floors and "
        f"{len(EXACT)} exact checks hold in {path.name})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
