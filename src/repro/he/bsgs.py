"""Rotation-minimal encrypted matmul: baby-step/giant-step diagonals.

The paper's Figure 6 packs the same feature of all ``n`` tokens contiguously
(tokens-first), which already drops the rotation count of ``Enc(X) @ W``
from one-per-slot-offset to one-per-feature-block.  This module goes the
rest of the way: instead of enumerating every feature block with its own
rotation (``O(d)`` rotations), the plaintext weight matrix is packed by
*generalized diagonals* over the feature blocks and the rotations are split
baby-step/giant-step (Halevi-Shoup):

.. code-block:: text

    y  =  sum_j  rot( sum_i  diag'_{j*bs+i} * rot(x, i*n),  j*bs*n )

with ``bs = ceil(sqrt(D))`` baby steps and ``gs = ceil(D / bs)`` giant
steps over ``D`` blocks of ``n`` token slots.  Output columns beyond one
ciphertext's block budget partition into ``g`` column groups of ``D``
blocks each.  The ``bs - 1`` baby-step rotations of the input ciphertext
are *hoisted*: computed once and reused across every generalized diagonal,
every output column group, and -- because a batch of requests shares the
token axis of one ciphertext -- every request in a batch.  Giant-step
rotations act on accumulators that are summed across input ciphertexts
first, so a ``c``-ciphertext input costs ``c*(bs-1) + g*(gs-1)`` rotations
total (closed form: :func:`repro.he.packing.bsgs_rotation_count`), instead
of the ``c * (D - 1)`` per output pass of the offset-enumeration loop.

The kernel needs cyclic slot rotations and slot-wise plaintext products, so
it runs on backends advertising ``supports_slotwise_plain`` (the functional
simulator -- the same requirement the legacy rotation loop already has).

Rotation-period contract: each ciphertext packs exactly ``D * n`` slots and
the kernel requires rotations that are cyclic over that *packed length*
(so the ``D`` feature blocks form a cyclic group), which is precisely what
:meth:`~repro.he.simulated.SimulatedHEBackend.rotate` provides.  A real
CRT-batched deployment realises such a sub-vector rotation as one
Gazelle-style general rotation (two Galois automorphisms + a mask) or
pads ``D * n`` to divide the slot structure; both keep the operation count
this kernel records -- one tracked rotation per baby/giant step -- so the
closed forms in :func:`repro.he.packing.bsgs_rotation_count` carry over to
the deployed scheme up to that constant factor.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ParameterError, ShapeError
from .backend import HEBackend

__all__ = [
    "BSGSGeometry",
    "BSGSCosts",
    "BSGSMatmulPlan",
    "bsgs_geometry",
    "bsgs_matmul",
    "bsgs_batch_matmul",
    "calibrate_bsgs_costs",
    "prepare_bsgs_plan",
]


@dataclass(frozen=True)
class BSGSCosts:
    """Measured per-operation costs driving the baby/giant split.

    ``rotation_seconds`` / ``mul_seconds`` are wall-clock costs of one
    homomorphic rotation and one slot-wise plaintext product on the target
    backend (see :func:`calibrate_bsgs_costs`).  The split search minimises
    the modelled kernel cost under these weights instead of assuming the
    closed-form ``ceil(sqrt(D))`` split is optimal; the plaintext-product
    count of this kernel is split-independent, so the search can never pick
    a split with more rotations than the closed form (a property the test
    suite asserts).
    """

    rotation_seconds: float
    mul_seconds: float

    def __post_init__(self) -> None:
        if self.rotation_seconds < 0 or self.mul_seconds < 0:
            raise ParameterError("BSGS cost-model seconds must be non-negative")


@dataclass(frozen=True)
class BSGSGeometry:
    """Block geometry of one BSGS matmul.

    ``blocks`` is the padded block count ``D`` (shared by every input
    ciphertext and every output group), ``baby``/``giant`` the BSGS split
    of the ``D`` generalized diagonals, ``features_per_ciphertext`` how
    many *real* feature blocks each input ciphertext carries, and
    ``out_groups`` how many output ciphertexts the ``n_outputs`` columns
    partition into (``out_blocks`` columns each) when they exceed one
    ciphertext's block budget -- the hoisted baby-step rotations are shared
    across all of them.
    """

    n_tokens: int
    n_features: int
    n_outputs: int
    slot_count: int
    features_per_ciphertext: int
    num_ciphertexts: int
    blocks: int
    baby: int
    giant: int
    out_blocks: int
    out_groups: int

    @property
    def packed_length(self) -> int:
        """Occupied slots per ciphertext (the cyclic rotation period)."""
        return self.blocks * self.n_tokens

    @property
    def rotation_count(self) -> int:
        """Rotations this geometry issues (hoisted babies + per-group giants)."""
        return (
            self.num_ciphertexts * (self.baby - 1)
            + self.out_groups * (self.giant - 1)
        )


def bsgs_geometry(
    n_tokens: int, n_features: int, n_outputs: int, slot_count: int,
    *, costs: BSGSCosts | None = None,
) -> BSGSGeometry:
    """Compute (and validate) the block geometry for an ``X @ W`` product.

    Without ``costs`` the split is the closed form ``bs = ceil(sqrt(D))``.
    With a measured :class:`BSGSCosts` the split is chosen by exhaustive
    search over ``bs in [1, D]`` minimising the modelled kernel cost (ties
    broken toward fewer rotations, then toward the closed-form split), so
    the chosen split's rotation count never exceeds the closed form's.
    """
    if n_tokens < 1 or n_features < 1 or n_outputs < 1:
        raise ParameterError("BSGS matmul needs positive dimensions")
    if n_tokens > slot_count:
        raise ParameterError(
            f"BSGS packing needs n_tokens <= slot_count ({n_tokens} > {slot_count})"
        )
    features_per_ct = max(1, slot_count // n_tokens)
    out_blocks = min(n_outputs, features_per_ct)
    blocks = max(min(features_per_ct, n_features), out_blocks)
    num_ciphertexts = math.ceil(n_features / features_per_ct)
    out_groups = math.ceil(n_outputs / out_blocks)
    closed_baby = math.isqrt(blocks)
    if closed_baby * closed_baby < blocks:
        closed_baby += 1
    baby = closed_baby
    if costs is not None:
        def rotations(bs: int) -> int:
            return num_ciphertexts * (bs - 1) + out_groups * (math.ceil(blocks / bs) - 1)

        # The plaintext-product count is split-independent (every generalized
        # diagonal gets exactly one product per output group), so it enters
        # the cost as a constant; the search is effectively a weighted
        # rotation minimisation, which bounds it by the closed-form count.
        muls = out_groups * num_ciphertexts * blocks
        baby = min(
            range(1, blocks + 1),
            key=lambda bs: (
                costs.rotation_seconds * rotations(bs) + costs.mul_seconds * muls,
                rotations(bs),
                abs(bs - closed_baby),
            ),
        )
    giant = math.ceil(blocks / baby)
    return BSGSGeometry(
        n_tokens=n_tokens,
        n_features=n_features,
        n_outputs=n_outputs,
        slot_count=slot_count,
        features_per_ciphertext=features_per_ct,
        num_ciphertexts=num_ciphertexts,
        blocks=blocks,
        baby=baby,
        giant=giant,
        out_blocks=out_blocks,
        out_groups=out_groups,
    )


def calibrate_bsgs_costs(
    backend: HEBackend, *, repeats: int = 3, kernel_tier: str | None = None
) -> BSGSCosts:
    """One-shot calibration of :class:`BSGSCosts` on ``backend``.

    Times one cyclic rotation and one slot-wise plaintext product on a
    scratch ciphertext (best of ``repeats``).  The scratch operations are
    recorded on the backend's tracker like any other work, so calibrate on
    a throwaway backend (or before resetting the tracker) when exact
    operation counts matter downstream.

    ``kernel_tier`` re-measures under a specific kernel tier (see
    :mod:`repro.he.kernels`); by default the measurement runs under the
    tier that will actually serve -- the process-level selection -- so the
    baby/giant split, slot-sharing ``k`` and scheduler size-awareness tune
    themselves to the kernels in use on this hardware.
    """
    if not getattr(backend, "supports_slotwise_plain", False):
        raise ParameterError(
            "BSGS cost calibration needs slot-wise plaintext products "
            "(the functional backend)"
        )
    from . import kernels

    length = backend.slot_count
    scratch = backend.zero(length)
    mask = np.ones(length, dtype=np.int64)

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    with kernels.tier_scope(kernel_tier):
        rotation_seconds = best_of(lambda: backend.rotate(scratch, 1))
        mul_seconds = best_of(lambda: backend.mul_plain(scratch, mask))
    return BSGSCosts(rotation_seconds=rotation_seconds, mul_seconds=mul_seconds)


def _diagonal_masks(
    weights: np.ndarray, geometry: BSGSGeometry, modulus: int
) -> np.ndarray:
    """All ``(group, ciphertext, giant, baby)`` diagonal slot masks at once.

    ``masks[o, c, j, i]`` is the length-``D`` *block* coefficient vector to
    multiply into the ``i``-th baby rotation of ciphertext ``c`` under
    giant step ``j`` of output group ``o``: ``mask[g] = Wpad_oc[(g + i) mod
    D, (g - j*bs) mod D]`` where ``Wpad_oc`` is the ``(D, D)`` zero-padded
    slice of the weight matrix for ciphertext ``c``'s features and group
    ``o``'s output columns.  Built with fancy indexing only -- no per-entry
    loops.  Expansion to ``D * n`` slot vectors happens per mask at the
    point of use (one small ``np.repeat`` each), keeping peak memory at
    block level instead of ``n`` times larger.
    """
    d = geometry.blocks
    f = geometry.features_per_ciphertext
    num_cts = geometry.num_ciphertexts
    groups = geometry.out_groups
    out_blocks = geometry.out_blocks
    padded = np.zeros((groups, num_cts, d, d), dtype=np.int64)
    for o in range(groups):
        cols = weights[:, o * out_blocks: (o + 1) * out_blocks]
        for c in range(num_cts):
            block = cols[c * f: c * f + f, :]
            padded[o, c, : block.shape[0], : block.shape[1]] = np.mod(block, modulus)
    g = np.arange(d)
    i = np.arange(geometry.baby)[None, :, None]           # (1, bs, 1)
    j = np.arange(geometry.giant)[:, None, None]          # (gs, 1, 1)
    row_index = np.mod(g[None, None, :] + i, d)           # (gs, bs, D)
    col_index = np.mod(g[None, None, :] - j * geometry.baby, d)
    diagonals = padded[:, :, row_index, col_index]        # (o, c, gs, bs, D)
    # Diagonal indices beyond D (the ragged last giant step) are unused.
    k = j * geometry.baby + i                             # (gs, bs, 1)
    return np.where(k < d, diagonals, 0)


def _pack_bsgs_vectors(matrix: np.ndarray, geometry: BSGSGeometry) -> list[np.ndarray]:
    """Pack ``X`` tokens-first into one ``D * n`` vector per ciphertext."""
    n, length = geometry.n_tokens, geometry.packed_length
    f = geometry.features_per_ciphertext
    vectors = []
    for c in range(geometry.num_ciphertexts):
        block = matrix[:, c * f: c * f + f]
        vec = np.zeros(length, dtype=np.int64)
        vec[: block.shape[1] * n] = block.T.reshape(-1)
        vectors.append(vec)
    return vectors


@dataclass
class BSGSMatmulPlan:
    """Plan-time artifact of one BSGS weight matrix: NTT-form diagonals.

    ``masks[o, c, j, i]`` are the generalized-diagonal block coefficient
    vectors (as built by :func:`_diagonal_masks`); ``eval_masks`` -- present
    when the backend is evaluation-resident -- holds the same masks expanded
    to slot vectors and pre-transformed into EVAL form via
    ``backend.encode_plain_eval`` (``None`` marks an all-zero mask).  The
    one forward transform per non-zero diagonal is paid *here*, once per
    weight registration, and amortised over every request and every batch
    the plan serves: the online diagonal multiply-accumulate then runs as
    pointwise products with zero transforms.  This is the NTT-form-weights
    artifact the serving layer caches per weight bank.
    """

    geometry: BSGSGeometry
    masks: np.ndarray
    eval_masks: list[list[list[list[Any | None]]]] | None = None
    #: digest of the (mod t) weight matrix the masks were built from, so a
    #: stale plan handed a *same-shape* replacement bank fails loudly
    #: instead of silently computing against the old weights
    weights_digest: str = ""
    #: RNS limb count of the ciphertext basis the plan's EVAL masks were
    #: pre-transformed for.  Limb-shaped artifacts are not interchangeable
    #: across bases, so a mismatch against the serving backend fails loudly.
    limbs: int = 1

    @property
    def nonzero_masks(self) -> int:
        """Number of diagonal products the kernel will execute (dense count)."""
        g = self.geometry
        return int(
            sum(
                1
                for o in range(g.out_groups)
                for c in range(g.num_ciphertexts)
                for j in range(g.giant)
                for i in range(g.baby)
                if self.masks[o, c, j, i].any()
            )
        )


def prepare_bsgs_plan(
    backend: HEBackend, weights: np.ndarray, geometry: BSGSGeometry
) -> BSGSMatmulPlan:
    """Build the diagonal masks of ``weights`` once, NTT-form when possible.

    On an evaluation-resident backend every non-zero diagonal mask is
    pre-transformed with ``encode_plain_eval`` (one tracked forward
    transform each -- the plan-time cost the online path never pays again).
    On other backends the plan still hoists the mask construction, and the
    kernel falls back to raw slot vectors.
    """
    t = backend.plaintext_modulus
    weights = np.asarray(weights, dtype=np.int64)
    masks = _diagonal_masks(weights, geometry, t)
    eval_masks = None
    if getattr(backend, "eval_resident", False) and getattr(
        backend, "supports_slotwise_plain", False
    ):
        step = geometry.n_tokens
        eval_masks = [
            [
                [
                    [
                        backend.encode_plain_eval(np.repeat(masks[o, c, j, i], step))
                        if masks[o, c, j, i].any()
                        else None
                        for i in range(geometry.baby)
                    ]
                    for j in range(geometry.giant)
                ]
                for c in range(geometry.num_ciphertexts)
            ]
            for o in range(geometry.out_groups)
        ]
    return BSGSMatmulPlan(
        geometry=geometry, masks=masks, eval_masks=eval_masks,
        weights_digest=_weights_digest(weights, t),
        limbs=getattr(getattr(backend, "params", None), "limb_count", 1),
    )


def _weights_digest(weights: np.ndarray, modulus: int) -> str:
    """Content digest of a weight matrix as the kernel sees it (mod t)."""
    residues = np.ascontiguousarray(np.mod(weights, modulus), dtype=np.int64)
    return hashlib.sha256(residues.tobytes()).hexdigest()[:32]


def bsgs_matmul_handles(
    backend: HEBackend,
    ciphertexts: list,
    weights: np.ndarray,
    geometry: BSGSGeometry,
    *,
    plan: BSGSMatmulPlan | None = None,
) -> list:
    """Rotation-minimal ``Enc(X) @ W`` over already-encrypted inputs.

    Returns one accumulated output handle per output column group (block
    ``g`` of group ``o``'s slots holds output column ``o * out_blocks +
    g``); a group whose weight slice is identically zero mod ``t`` yields
    ``None``.  The hoisted baby-step rotations are computed once and shared
    by every group.  With a :class:`BSGSMatmulPlan` the diagonal products
    reuse the plan's pre-transformed (EVAL-form) masks, so the whole
    multiply-accumulate is transform-free on an evaluation-resident
    backend.
    """
    if plan is not None and plan.geometry != geometry:
        raise ParameterError(
            "BSGS plan geometry does not match this product; rebuild the plan "
            f"(plan {plan.geometry}, requested {geometry})"
        )
    backend_limbs = getattr(getattr(backend, "params", None), "limb_count", 1)
    if plan is not None and plan.limbs != backend_limbs:
        raise ParameterError(
            f"BSGS plan was prepared for a {plan.limbs}-limb RNS basis but the "
            f"backend uses {backend_limbs} limbs; rebuild the plan for this "
            "parameter set"
        )
    t = backend.plaintext_modulus
    if plan is not None and plan.weights_digest:
        digest = _weights_digest(np.asarray(weights, dtype=np.int64), t)
        if digest != plan.weights_digest:
            raise ParameterError(
                "BSGS plan was prepared for a different weight matrix of the "
                "same shape; rebuild the plan for the current weights"
            )
    masks = (
        plan.masks if plan is not None
        else _diagonal_masks(np.asarray(weights, dtype=np.int64), geometry, t)
    )
    eval_masks = plan.eval_masks if plan is not None else None
    step = geometry.n_tokens

    # Hoist the baby-step rotations of every input ciphertext once.
    rotated: list[list] = []
    for ct in ciphertexts:
        babies = [ct]
        for i in range(1, geometry.baby):
            babies.append(backend.rotate(ct, i * step))
        rotated.append(babies)

    outputs = []
    for o in range(geometry.out_groups):
        output = None
        for j in range(geometry.giant):
            # Collect every (baby ciphertext, diagonal mask) pair of this
            # giant step, then hand the whole multiply-accumulate to the
            # backend's fused kernel -- one call instead of per-diagonal
            # intermediate ciphertexts (the default implementation is the
            # historical mul_plain/add loop, so counts and results are
            # identical either way).
            terms = []
            for c, babies in enumerate(rotated):
                for i, baby_ct in enumerate(babies):
                    blocks = masks[o, c, j, i]
                    if not blocks.any():
                        continue
                    operand = (
                        eval_masks[o][c][j][i]
                        if eval_masks is not None
                        else np.repeat(blocks, step)
                    )
                    terms.append((baby_ct, operand))
            acc = backend.fused_mul_accumulate(terms) if terms else None
            if acc is None:
                continue
            if j > 0:
                acc = backend.rotate(acc, j * geometry.baby * step)
            output = acc if output is None else backend.add(output, acc)
        outputs.append(output)
    return outputs


def bsgs_matmul(
    backend: HEBackend,
    matrix: np.ndarray,
    weights: np.ndarray,
    *,
    plan: BSGSMatmulPlan | None = None,
    costs: BSGSCosts | None = None,
) -> np.ndarray:
    """Encrypted ``X @ W`` through the BSGS diagonal kernel, decrypted.

    Packs ``X`` tokens-first (the paper's layout, padded to the block
    geometry), encrypts, runs :func:`bsgs_matmul_handles` and decrypts the
    result back into a ``(n_tokens, d_out)`` residue matrix.  ``plan``
    supplies pre-transformed diagonal masks (and pins the geometry it was
    built for); ``costs`` switches the baby/giant split to the measured
    cost model.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if matrix.ndim != 2 or weights.ndim != 2:
        raise ShapeError("BSGS matmul expects 2-D operands")
    if weights.shape[0] != matrix.shape[1]:
        raise ShapeError(f"cannot multiply {matrix.shape} by {weights.shape}")
    n_tokens, n_features = matrix.shape
    d_out = weights.shape[1]
    geometry = (
        plan.geometry if plan is not None
        else bsgs_geometry(n_tokens, n_features, d_out, backend.slot_count, costs=costs)
    )
    if (geometry.n_tokens, geometry.n_features, geometry.n_outputs) != (
        n_tokens, n_features, d_out,
    ):
        raise ParameterError(
            f"BSGS plan was prepared for "
            f"({geometry.n_tokens}, {geometry.n_features}, {geometry.n_outputs}); "
            f"this product is ({n_tokens}, {n_features}, {d_out})"
        )

    ciphertexts = backend.encrypt_batch(_pack_bsgs_vectors(matrix, geometry))
    outputs = bsgs_matmul_handles(backend, ciphertexts, weights, geometry, plan=plan)

    t = backend.plaintext_modulus
    result = np.zeros((n_tokens, d_out), dtype=np.int64)
    occupied = [o for o, handle in enumerate(outputs) if handle is not None]
    decrypted = backend.decrypt_batch([outputs[o] for o in occupied])
    for o, slots in zip(occupied, decrypted, strict=True):
        base = o * geometry.out_blocks
        width = min(geometry.out_blocks, d_out - base)
        usable = slots[: width * n_tokens]
        result[:, base: base + width] = usable.reshape(width, n_tokens).T
    return np.mod(result, t)


def bsgs_batch_matmul(
    backend: HEBackend, matrices: list[np.ndarray], weights: np.ndarray,
    *, plan: BSGSMatmulPlan | None = None, costs: BSGSCosts | None = None,
) -> list[np.ndarray]:
    """Serve many ``X_i @ W`` requests through one shared BSGS product.

    The requests' token matrices are stacked along the token axis, so the
    whole batch shares the hoisted baby-step rotations, the giant-step
    accumulators *and* the plan's pre-transformed diagonal masks of a
    single BSGS pass -- both the rotation count and the transform count are
    independent of the batch size.  Returns one decrypted result matrix per
    request.
    """
    arrays = [np.asarray(m, dtype=np.int64) for m in matrices]
    if not arrays:
        return []
    stacked = np.vstack(arrays)
    result = bsgs_matmul(backend, stacked, weights, plan=plan, costs=costs)
    splits: list[np.ndarray] = []
    offset = 0
    for m in arrays:
        splits.append(result[offset: offset + m.shape[0]])
        offset += m.shape[0]
    return splits
