"""Serving benchmark: batched vs sequential private inference throughput.

Three comparisons, mirroring the levels the serving runtime batches at:

1. **Shared-slot HE batches** on the *exact BFV backend*: eight private
   ``X @ W`` requests packed tokens-first into shared ciphertext slots versus
   the same eight requests encrypted and multiplied one at a time.  The batch
   needs one ciphertext per input feature -- independent of the batch size --
   so both the operation counts and the wall-clock throughput improve by
   roughly the batch factor.  The acceptance bar is 3x; the measured margin
   is typically ~8x at the test-scale parameters used here.

2. **Cached-engine serving** of full Primer inference on the simulated
   backend: the :class:`~repro.runtime.serving.ServingRuntime` amortises key
   generation and the HGS/FHGS offline phase across requests, versus the
   paper-style fresh-engine-per-sequence baseline.

3. **Pipelined executor vs serial drain** on a mixed multi-model workload
   over a realized network (paper delay of 2.3 ms per round): the sharded
   pipeline prepares the offline plans of later engines while earlier
   batches run their online phases, so the offline phase's wire time
   overlaps with compute instead of serialising in front of it.  The
   acceptance bar is 1.2x with bit-identical logits.

4. **BSGS diagonal matmul** at paper dimensions: the rotation-minimal
   kernel (hoisted baby steps, shared giant steps) against the legacy
   offset-enumeration loop in both packing layouts, with tracker-measured
   rotation counts asserted against the closed forms.  The acceptance bar
   is a 3x rotation reduction with bit-identical decrypted results.

5. **FHGS block-diagonal slot sharing**: a 4-request serving batch ships
   one set of cross-term ciphertexts instead of four -- the ~1/k online
   traffic reduction the ROADMAP's slot-sharing item asked for.

6. **Plan-store warm start**: a freshly started serving process installs
   its engine's :class:`OfflinePlan` from disk instead of re-running the
   offline HE exchange -- zero offline HE operations on the tracker,
   bit-identical logits, and an engine build ≥5x faster than the cold
   offline build (typically far more).

7. **RNS limb arithmetic**: the double-CRT serving path at a >=60-bit
   two-limb coefficient modulus (illegal under the old 30-bit single-
   modulus ceiling) against the one-limb configuration -- exact results on
   both, tracker-measured NTT transforms equal to the limb-scaled closed
   form ``(3 * input_cts + output_cts) * L`` with zero gap, rotations
   limb-independent.

8. **Kernel tier**: the compiled/multicore HE kernel tier
   (:mod:`repro.he.kernels`) against the reference numpy path on the same
   exact-backend serving workload at paper dimensions (N = 4096, a 6-limb
   double-CRT basis) -- logits bit-identical, transform/rotation closed
   forms untouched, and a committed >=2x wall-clock floor for the
   self-calibrated fastest tier.

9. **Fault recovery**: the async front door serving the full-inference
   workload under a deterministic :class:`FaultPlan` injecting transient
   executor faults (the issue's 1% per-batch rate plus one guaranteed
   firing) with a :class:`RetryPolicy` -- every request completes with
   logits bit-identical to the fault-free pass, the conservation check
   ``submitted == completed + typed-failed`` closes with zero gap, and
   throughput stays >= 0.8x fault-free.

10. **Replica fleet**: two forked :class:`ReplicaServer` processes behind a
    :class:`FleetRouter` against one in-process front door on a closed-loop
    workload bound by the batching linger window -- the replicas overlap
    their linger waits in parallel, so wall-clock throughput scales with
    the fleet even on one core.  The acceptance bar is >= 1.3x with logits
    bit-identical to the single-process pass, conservation gap zero, and a
    100% warm-start rate for a fresh replica pointed at the fleet's shared
    :class:`PlanStore` directory.

Headline numbers are persisted to ``BENCH_serving.json`` (see
``benchmarks/_record.py``) so the performance trajectory is tracked across
PRs; CI uploads the file as a workflow artifact and
``benchmarks/check_regressions.py`` fails the build when any recorded
speedup drops below its committed floor.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _record import latency_percentiles, record

from repro.costmodel import format_table
from repro.he import (
    ExactBFVBackend,
    PackingLayout,
    SimulatedHEBackend,
    bsgs_coeff_transform_count,
    bsgs_geometry,
    bsgs_matmul,
    bsgs_rotation_count,
    bsgs_transform_count,
    encrypted_batch_matmul,
    encrypted_packed_matmul,
    paper_parameters,
    prepare_bsgs_plan,
    rns_serving_parameters,
    serving_parameters,
)
from repro.errors import RequestFailed
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PRIMER_F, PRIMER_FPC, NetworkModel, Phase, PlanStore
from repro.runtime import (
    AsyncServingRuntime,
    FaultPlan,
    FaultRule,
    FleetRouter,
    RetryPolicy,
    ServingRuntime,
    fault_scope,
    run_sequential_baseline,
    spawn_replica_process,
    summarize,
)
from repro.runtime.faults import SITE_ONLINE_EXECUTE

BATCH = 8
TOKENS = 8
FEATURES = 16
OUTPUTS = 4


def _make_workload(seed: int = 0):
    rng = np.random.default_rng(seed)
    matrices = [rng.integers(0, 100, size=(TOKENS, FEATURES)) for _ in range(BATCH)]
    weights = rng.integers(0, 7, size=(FEATURES, OUTPUTS))
    return matrices, weights


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_throughput_exact_backend():
    """Acceptance: batched >= 3x sequential per-request throughput (exact BFV)."""
    matrices, weights = _make_workload()
    backend = ExactBFVBackend(serving_parameters(256), seed=5)

    def sequential():
        return [encrypted_batch_matmul(backend, [m], weights)[0] for m in matrices]

    def batched():
        return encrypted_batch_matmul(backend, matrices, weights)

    # Correctness first: both paths must decrypt to the plaintext product.
    t = backend.plaintext_modulus
    for got_seq, got_batch, m in zip(sequential(), batched(), matrices, strict=True):
        assert np.array_equal(got_seq, (m @ weights) % t)
        assert np.array_equal(got_batch, got_seq)

    seq_seconds = _best_of(3, sequential)
    batch_seconds = _best_of(3, batched)

    backend.tracker.reset()
    sequential()
    seq_ops = sum(backend.tracker.snapshot().values())
    backend.tracker.reset()
    batched()
    batch_ops = sum(backend.tracker.snapshot().values())

    seq_rps = BATCH / seq_seconds
    batch_rps = BATCH / batch_seconds
    print(f"\nShared-slot serving, exact BFV backend (batch={BATCH}, N=256)\n")
    print(format_table(
        ["Path", "Wall seconds", "Requests/s", "HE operations"],
        [
            ["sequential", f"{seq_seconds:.4f}", f"{seq_rps:,.1f}", f"{seq_ops:,}"],
            ["batched", f"{batch_seconds:.4f}", f"{batch_rps:,.1f}", f"{batch_ops:,}"],
            ["speedup", "", f"{batch_rps / seq_rps:.1f}x", f"{seq_ops / batch_ops:.1f}x"],
        ],
    ))
    record("serving", "shared_slot_exact_bfv", {
        "batch_size": BATCH,
        "sequential_requests_per_second": seq_rps,
        "batched_requests_per_second": batch_rps,
        "throughput_speedup": batch_rps / seq_rps,
        "he_operation_reduction": seq_ops / batch_ops,
    })
    # The operation-count reduction is deterministic; wall clock rides on it.
    assert seq_ops >= 3 * batch_ops
    assert batch_rps >= 3 * seq_rps


def test_serving_runtime_vs_fresh_engines():
    """Cached-engine serving beats the paper-style one-engine-per-sequence flow."""
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=2
    )
    model = TransformerEncoder.initialise(config, seed=3)
    rng = np.random.default_rng(1)
    tokens = [rng.integers(0, 40, size=6) for _ in range(BATCH)]

    runtime = ServingRuntime({"tiny": model}, max_batch_size=BATCH)
    runtime.engine_for("tiny")  # steady state: keys + offline phase in cache

    for t in tokens:
        runtime.submit("tiny", t)
    start = time.perf_counter()
    reports = runtime.run_pending()
    batch_seconds = time.perf_counter() - start

    solo_logits, seq_seconds = run_sequential_baseline(model, tokens)
    for report, expected in zip(reports, solo_logits, strict=True):
        assert np.array_equal(report.result, expected)

    stats = summarize(reports, batch_seconds)
    print(f"\nFull-inference serving, simulated backend (batch={BATCH})\n")
    print(format_table(
        ["Path", "Wall seconds", "Requests/s"],
        [
            ["fresh engine per request", f"{seq_seconds:.3f}", f"{BATCH / seq_seconds:.1f}"],
            ["serving runtime (warm)", f"{batch_seconds:.3f}", f"{stats.requests_per_second:.1f}"],
            ["speedup", "", f"{seq_seconds / batch_seconds:.1f}x"],
        ],
    ))
    record("serving", "cached_engine_serving", {
        "batch_size": BATCH,
        "fresh_engine_seconds": seq_seconds,
        "warm_runtime_seconds": batch_seconds,
        "throughput_speedup": seq_seconds / batch_seconds,
        "latency": latency_percentiles([r.latency_seconds for r in reports]),
    })
    assert batch_seconds < seq_seconds


def test_pipelined_executor_vs_serial_drain():
    """Acceptance: pipelined drain >= 1.2x serial run_pending, bit-identical.

    Mixed multi-model workload: four tiny models, two Primer variants,
    interleaved arrivals -- so the drain forms batches across several
    ``(model, variant)`` keys and the pipeline can shard them.  The network
    is *realized* at the paper's round-trip delay (2.3 ms, Section IV) with
    a modern link bandwidth: every offline/online message actually occupies
    the wire.  The serial drain pays each engine's offline exchanges inline;
    the pipelined executor prepares them on background workers while earlier
    batches run online, so the offline wire time overlaps with compute.
    """
    network = NetworkModel(delay_seconds=2.3e-3, bandwidth_bytes_per_second=500e6)
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    models = {f"m{i}": TransformerEncoder.initialise(config, seed=i) for i in range(4)}
    rng = np.random.default_rng(7)
    tokens = [rng.integers(0, 40, size=6) for _ in range(2 * len(models))]

    def submit_all(runtime: ServingRuntime) -> None:
        for index, t in enumerate(tokens):
            variant = PRIMER_FPC if index % 2 == 0 else PRIMER_F
            runtime.submit(f"m{index % len(models)}", t, variant=variant)

    serial = ServingRuntime(models, max_batch_size=4, seed=11, network=network)
    submit_all(serial)
    start = time.perf_counter()
    serial_reports = serial.run_pending()
    serial_seconds = time.perf_counter() - start

    pipelined = ServingRuntime(
        models, max_batch_size=4, seed=11, num_workers=4, network=network
    )
    submit_all(pipelined)
    start = time.perf_counter()
    pipelined_reports = pipelined.run_pending_pipelined()
    pipelined_seconds = time.perf_counter() - start

    # Bit-identical logits, same report order.
    assert [r.request_id for r in serial_reports] == [
        r.request_id for r in pipelined_reports
    ]
    for serial_report, pipelined_report in zip(serial_reports, pipelined_reports, strict=True):
        assert np.array_equal(serial_report.result, pipelined_report.result)

    n = len(tokens)
    speedup = serial_seconds / pipelined_seconds
    print(f"\nPipelined executor vs serial drain (mixed {len(models)}-model workload)\n")
    print(format_table(
        ["Path", "Wall seconds", "Requests/s"],
        [
            ["serial run_pending()", f"{serial_seconds:.2f}", f"{n / serial_seconds:.2f}"],
            ["pipelined (4 workers)", f"{pipelined_seconds:.2f}", f"{n / pipelined_seconds:.2f}"],
            ["speedup", "", f"{speedup:.2f}x"],
        ],
    ))
    record("serving", "pipelined_executor", {
        "num_models": len(models),
        "num_requests": n,
        "num_workers": 4,
        "batch_sizes": sorted({r.batch_size for r in pipelined_reports}),
        "serial_seconds": serial_seconds,
        "pipelined_seconds": pipelined_seconds,
        "serial_requests_per_second": n / serial_seconds,
        "pipelined_requests_per_second": n / pipelined_seconds,
        "throughput_speedup": speedup,
        "latency": latency_percentiles(
            [r.latency_seconds for r in pipelined_reports]
        ),
        "network": {
            "delay_seconds": network.delay_seconds,
            "bandwidth_bytes_per_second": network.bandwidth_bytes_per_second,
        },
    })
    assert speedup >= 1.2


def test_bsgs_rotation_reduction():
    """Acceptance: BSGS >= 3x fewer rotations than the legacy loop, bit-identical.

    Paper-facing dimensions: n = 30 tokens (Table I sequence length), a
    64-wide per-head projection, M = 4096 slots.  The legacy loop pays one
    rotation per feature block; the BSGS kernel pays ``2*sqrt(d) - 2``
    hoisted/shared rotations, tracker-verified against the closed form.
    """
    rng = np.random.default_rng(11)
    n_tokens, d_in, d_out = 30, 64, 64
    x = rng.integers(0, 200, size=(n_tokens, d_in))
    w = rng.integers(1, 200, size=(d_in, d_out))
    slot_count = paper_parameters().slot_count

    measured: dict[str, int] = {}
    seconds: dict[str, float] = {}
    results: dict[str, np.ndarray] = {}
    layouts = {
        "feature_based": PackingLayout.FEATURE_BASED,
        "tokens_first": PackingLayout.TOKENS_FIRST,
        "bsgs": PackingLayout.BSGS_DIAGONAL,
    }
    for name, layout in layouts.items():
        backend = SimulatedHEBackend(paper_parameters())
        backend.tracker.reset()
        start = time.perf_counter()
        results[name] = encrypted_packed_matmul(backend, x, w, layout)
        seconds[name] = time.perf_counter() - start
        measured[name] = backend.tracker.count("he_rotate")

    # Bit-identical decrypted results across all three kernels.
    assert np.array_equal(results["bsgs"], results["tokens_first"])
    assert np.array_equal(results["bsgs"], results["feature_based"])
    t = paper_parameters().plaintext_modulus
    assert np.array_equal(results["bsgs"], (x @ w) % t)
    # Tracker-verified closed form.
    closed = bsgs_rotation_count(n_tokens, d_in, d_out, slot_count)
    assert measured["bsgs"] == closed

    reduction = measured["tokens_first"] / measured["bsgs"]
    print(f"\nBSGS diagonal matmul (n={n_tokens}, {d_in}x{d_out}, M={slot_count})\n")
    print(format_table(
        ["Kernel", "Rotations", "Wall seconds"],
        [
            ["feature-based loop", f"{measured['feature_based']:,}", f"{seconds['feature_based']:.3f}"],
            ["tokens-first loop", f"{measured['tokens_first']:,}", f"{seconds['tokens_first']:.3f}"],
            ["BSGS diagonals", f"{measured['bsgs']:,}", f"{seconds['bsgs']:.3f}"],
            ["rotation reduction", f"{reduction:.1f}x", ""],
        ],
    ))
    record("serving", "bsgs_matmul", {
        "n_tokens": n_tokens,
        "d_in": d_in,
        "d_out": d_out,
        "slot_count": slot_count,
        "feature_based_rotations": measured["feature_based"],
        "tokens_first_rotations": measured["tokens_first"],
        "bsgs_rotations": measured["bsgs"],
        "bsgs_rotations_closed_form": closed,
        "rotation_reduction": reduction,
    })
    assert reduction >= 3.0


def test_fhgs_slot_sharing():
    """Acceptance: a k-request batch ships ~1/k the FHGS cross-term ciphertexts."""
    k = 4
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=2
    )
    model = TransformerEncoder.initialise(config, seed=3)
    rng = np.random.default_rng(9)
    tokens = [rng.integers(0, 40, size=6) for _ in range(k)]

    def serve(slot_sharing):
        runtime = ServingRuntime(
            {"tiny": model}, max_batch_size=k, seed=21,
            fhgs_slot_sharing=slot_sharing,
        )
        runtime.engine_for("tiny")  # build outside the timed window
        for token_ids in tokens:
            runtime.submit("tiny", token_ids)
        start = time.perf_counter()
        reports = runtime.run_pending()
        wall = time.perf_counter() - start
        engine = runtime.engine_for("tiny")
        ciphertext_bytes = engine.backend.ciphertext_bytes
        cross_cts = sum(
            m.num_bytes for m in engine.channel.messages
            if m.description == "Enc(cross terms - Rs)" and m.phase is Phase.ONLINE
        ) // ciphertext_bytes
        return reports, cross_cts, wall

    shared_reports, shared_cts, shared_seconds = serve(None)
    solo_reports, solo_cts, solo_seconds = serve(1)
    for shared, solo in zip(shared_reports, solo_reports, strict=True):
        assert np.array_equal(shared.result, solo.result)
    reduction = solo_cts / shared_cts
    print(f"\nFHGS block-diagonal slot sharing (batch of {k})\n")
    print(format_table(
        ["Path", "Cross-term ciphertexts", "Online seconds"],
        [
            ["per-request cross terms", f"{solo_cts:,}", f"{solo_seconds:.3f}"],
            ["slot-shared (block-diagonal)", f"{shared_cts:,}", f"{shared_seconds:.3f}"],
            ["reduction", f"{reduction:.1f}x", f"{solo_seconds / shared_seconds:.1f}x"],
        ],
    ))
    record("serving", "fhgs_slot_sharing", {
        "batch_size": k,
        "per_request_cross_term_ciphertexts": solo_cts,
        "shared_cross_term_ciphertexts": shared_cts,
        "cross_term_ciphertext_reduction": reduction,
        "per_request_seconds": solo_seconds,
        "shared_seconds": shared_seconds,
        "online_speedup": solo_seconds / shared_seconds,
    })
    # k requests, one cross-term set: the reduction is the batch factor.
    assert reduction >= 3.0


def test_ntt_domain_residency():
    """Acceptance: the EVAL-resident BSGS path pays >= 3x fewer NTT transforms.

    Two measurements at the paper-facing dimensions (n = 30 tokens, a 64x64
    per-head projection, M = 4096 slots):

    1. **Transform economy** (simulated backend, which models the transforms
       the deployed scheme executes): the coefficient-resident pipeline pays
       a full forward+inverse round trip per diagonal product; the
       EVAL-resident pipeline -- ciphertexts encrypted straight into NTT
       form, diagonal masks pre-transformed once at plan time -- pays only
       the encrypt/decrypt boundary.  Both tracker counts must equal their
       closed forms *exactly* (the residency analog of the PR-3 rotation
       accounting), and the reduction must clear 3x.

    2. **Wall clock** (exact BFV backend, which really executes the
       transforms): a stream of ciphertext-plaintext polynomial products
       against one resident ciphertext, pre-transformed plaintexts vs the
       coefficient-domain round trip.
    """
    rng = np.random.default_rng(11)
    n_tokens, d_in, d_out = 30, 64, 64
    x = rng.integers(0, 200, size=(n_tokens, d_in))
    w = rng.integers(1, 200, size=(d_in, d_out))
    slot_count = paper_parameters().slot_count

    coeff_backend = SimulatedHEBackend(paper_parameters(), eval_residency=False)
    coeff_backend.tracker.reset()
    result_coeff = bsgs_matmul(coeff_backend, x, w)
    coeff_transforms = coeff_backend.tracker.transforms()

    eval_backend = SimulatedHEBackend(paper_parameters())
    geometry = bsgs_geometry(n_tokens, d_in, d_out, slot_count)
    plan = prepare_bsgs_plan(eval_backend, w, geometry)
    plan_transforms = eval_backend.tracker.transforms()
    eval_backend.tracker.reset()
    result_eval = bsgs_matmul(eval_backend, x, w, plan=plan)
    eval_transforms = eval_backend.tracker.transforms()

    # Bit-identical results; exact closed forms on both sides.
    assert np.array_equal(result_eval, result_coeff)
    closed_eval = bsgs_transform_count(n_tokens, d_in, d_out, slot_count)
    closed_coeff = bsgs_coeff_transform_count(n_tokens, d_in, d_out, slot_count)
    assert eval_transforms == closed_eval
    assert coeff_transforms == closed_coeff
    reduction = coeff_transforms / eval_transforms

    # Exact backend: wall clock of resident products vs round-trip products.
    repeats = 64
    masks = [rng.integers(0, 4, size=256) for _ in range(repeats)]
    resident = ExactBFVBackend(serving_parameters(256), seed=5)
    ct_eval = resident.encrypt(np.arange(256) % 250).ciphertext
    pre = [resident.context.encode_plain_eval(mask) for mask in masks]
    coeff_exact = ExactBFVBackend(serving_parameters(256), seed=5, eval_residency=False)
    ct_coeff = coeff_exact.encrypt(np.arange(256) % 250).ciphertext

    eval_seconds = _best_of(
        3, lambda: [resident.context.multiply_plain_poly(ct_eval, p) for p in pre]
    )
    coeff_seconds = _best_of(
        3, lambda: [coeff_exact.context.multiply_plain_poly(ct_coeff, m) for m in masks]
    )
    exact_speedup = coeff_seconds / eval_seconds

    print(f"\nNTT domain residency (BSGS {d_in}x{d_out}, n={n_tokens}, M={slot_count})\n")
    print(format_table(
        ["Path", "NTT transforms", "Closed form", "Exact-BFV seconds"],
        [
            ["coefficient-resident", f"{coeff_transforms:,}", f"{closed_coeff:,}",
             f"{coeff_seconds:.4f}"],
            ["EVAL-resident (planned)", f"{eval_transforms:,}", f"{closed_eval:,}",
             f"{eval_seconds:.4f}"],
            ["plan preparation (once)", f"{plan_transforms:,}", "", ""],
            ["reduction / speedup", f"{reduction:.1f}x", "", f"{exact_speedup:.1f}x"],
        ],
    ))
    record("serving", "ntt_domain_residency", {
        "n_tokens": n_tokens,
        "d_in": d_in,
        "d_out": d_out,
        "slot_count": slot_count,
        "coeff_transforms": coeff_transforms,
        "eval_transforms": eval_transforms,
        "eval_transforms_closed_form": closed_eval,
        "coeff_transforms_closed_form": closed_coeff,
        "closed_form_gap": eval_transforms - closed_eval,
        "plan_prepare_transforms": plan_transforms,
        "transform_reduction": reduction,
        "exact_backend_coeff_seconds": coeff_seconds,
        "exact_backend_eval_seconds": eval_seconds,
        "exact_backend_speedup": exact_speedup,
    })
    assert reduction >= 3.0
    # Same threshold as the committed check_regressions.py floor (measured
    # ~86x, so the margin is enormous either way).
    assert exact_speedup >= 2.0


def test_rns_limb_arithmetic():
    """Acceptance: double-CRT serving at >=60 bits, exact limb-scaled counts.

    The same shared-slot linear workload is served on the exact backend
    twice: with the historical one-limb 30-bit modulus and with a two-limb
    RNS basis whose composite modulus is >= 60 bits -- a parameter point the
    pre-RNS representation could not express at all (its int64 pointwise
    products wrap past 30-bit moduli).  Results must be exact on both, the
    two-limb tracker-measured transform count must equal the limb-scaled
    closed form ``(3 * input_cts + output_cts) * L`` with zero gap, and
    rotations must stay limb-independent.
    """
    matrices, weights = _make_workload(seed=21)

    def serve(params):
        backend = ExactBFVBackend(params, seed=5)
        runtime = ServingRuntime(backend_factory=lambda: backend, max_batch_size=BATCH)
        runtime.register_weights("proj", weights)
        ids = [runtime.submit_linear("proj", m) for m in matrices]
        start = time.perf_counter()
        runtime.run_pending()
        seconds = time.perf_counter() - start
        t = backend.plaintext_modulus
        for m, rid in zip(matrices, ids, strict=True):
            assert np.array_equal(runtime.result(rid).result, (m @ weights) % t)
        transforms = backend.tracker.transforms()
        rotations = backend.tracker.count("he_rotate")
        return transforms, rotations, seconds

    one_limb = serving_parameters(256)
    two_limb = rns_serving_parameters(256, 2)
    assert two_limb.ciphertext_modulus.bit_length() >= 60
    one_transforms, one_rotations, one_seconds = serve(one_limb)
    two_transforms, two_rotations, two_seconds = serve(two_limb)

    # Closed form: one EVAL-native encryption (3 forwards) per input
    # ciphertext, one inverse per output ciphertext at the decrypt
    # boundary, everything scaled by the limb count.
    input_cts, output_cts = FEATURES, OUTPUTS
    closed = (3 * input_cts + output_cts) * two_limb.limb_count
    gap = two_transforms - closed

    print(f"\nRNS limb arithmetic (shared-slot linear, batch={BATCH})\n")
    print(format_table(
        ["Configuration", "log2 Q", "NTT transforms", "Closed form", "Seconds"],
        [
            ["1 limb (historical)", f"{one_limb.ciphertext_modulus.bit_length()}",
             f"{one_transforms:,}", f"{closed // 2:,}", f"{one_seconds:.4f}"],
            ["2 limbs (double-CRT)", f"{two_limb.ciphertext_modulus.bit_length()}",
             f"{two_transforms:,}", f"{closed:,}", f"{two_seconds:.4f}"],
        ],
    ))
    record("serving", "rns_limb_arithmetic", {
        "limbs": two_limb.limb_count,
        "modulus_bits": two_limb.ciphertext_modulus.bit_length(),
        "input_ciphertexts": input_cts,
        "output_ciphertexts": output_cts,
        "one_limb_transforms": one_transforms,
        "two_limb_transforms": two_transforms,
        "transforms_closed_form": closed,
        "closed_form_gap": gap,
        "rotations_one_limb": one_rotations,
        "rotations_two_limb": two_rotations,
        "one_limb_seconds": one_seconds,
        "two_limb_seconds": two_seconds,
    })
    assert gap == 0
    assert two_transforms == 2 * one_transforms
    assert two_rotations == one_rotations


def test_kernel_tier():
    """Acceptance: fastest kernel tier >= 2x exact-backend serving wall clock.

    The same shared-slot linear workload as the RNS section, served on the
    exact backend at the paper-facing dimension point -- ring degree 4096
    with a six-limb double-CRT basis (~180-bit composite modulus) -- once
    under every available kernel tier.  Every tier must return logits
    bit-identical to the ``reference`` numpy path with the tracker-measured
    transform count still equal to the limb-scaled closed form
    ``(3 * input_cts + output_cts) * L`` (gap zero) and rotation counts
    unchanged; the self-calibrated fastest tier must clear a 2x wall-clock
    speedup.  Skipped entirely when no compiled tier is available (the
    committed numbers then stand).
    """
    from repro.he import kernels

    fastest = kernels.fastest_tier_name()
    if fastest == "reference":
        pytest.skip("no compiled kernel tier available on this runner")

    params = rns_serving_parameters(4096, 6)
    matrices, weights = _make_workload(seed=33)

    def serve(tier):
        with kernels.tier_scope(tier):
            backend = ExactBFVBackend(params, seed=5)
            runtime = ServingRuntime(
                backend_factory=lambda: backend, max_batch_size=BATCH
            )
            runtime.register_weights("proj", weights)
            best = float("inf")
            for _ in range(2):
                ids = [runtime.submit_linear("proj", m) for m in matrices]
                backend.tracker.reset()
                start = time.perf_counter()
                runtime.run_pending()
                best = min(best, time.perf_counter() - start)
                results = [runtime.result(rid).result for rid in ids]
            transforms = backend.tracker.transforms()
            rotations = backend.tracker.count("he_rotate")
        t = params.plaintext_modulus
        for m, got in zip(matrices, results, strict=True):
            assert np.array_equal(got, (m @ weights) % t), tier
        return results, best, transforms, rotations

    tiers = kernels.available_tiers()
    runs = {tier: serve(tier) for tier in tiers}
    ref_results, ref_seconds, ref_transforms, ref_rotations = runs["reference"]

    closed = (3 * FEATURES + OUTPUTS) * params.limb_count
    bit_identical = all(
        np.array_equal(a, b)
        for tier in tiers
        for a, b in zip(runs[tier][0], ref_results, strict=True)
    )
    gap = max(abs(runs[tier][2] - closed) for tier in tiers)
    rotations_unchanged = all(runs[tier][3] == ref_rotations for tier in tiers)
    speedup = ref_seconds / runs[fastest][1]
    calibration = kernels.calibration_snapshot()

    print(f"\nKernel tier (shared-slot linear, N=4096, {params.limb_count} limbs)\n")
    print(format_table(
        ["Tier", "Seconds", "Speedup", "Calibrated NTT (us)"],
        [
            [
                tier + (" (auto)" if tier == fastest else ""),
                f"{runs[tier][1]:.4f}",
                f"{ref_seconds / runs[tier][1]:.1f}x",
                f"{calibration[tier]['ntt_seconds'] * 1e6:.0f}",
            ]
            for tier in tiers
        ],
    ))
    record("serving", "kernel_tier", {
        "fastest_tier": fastest,
        "available_tiers": tiers,
        "ring_degree": params.ring_degree,
        "limbs": params.limb_count,
        "reference_seconds": ref_seconds,
        "fastest_seconds": runs[fastest][1],
        "exact_backend_speedup": speedup,
        "bit_identical": int(bit_identical),
        "closed_form_gap": gap,
        "rotations_unchanged": int(rotations_unchanged),
        "transforms": ref_transforms,
        "transforms_closed_form": closed,
        "per_tier_seconds": {tier: runs[tier][1] for tier in tiers},
        "calibration": {
            tier: {k: float(v) for k, v in costs.items()}
            for tier, costs in sorted(calibration.items())
        },
    })
    assert bit_identical
    assert gap == 0
    assert rotations_unchanged
    # Same threshold as the committed check_regressions.py floor.
    assert speedup >= 2.0


def test_plan_store_warm_start(tmp_path):
    """Acceptance: disk warm-start >= 5x faster than the cold offline build.

    Cold path: a fresh serving process pays key generation plus the whole
    HGS/FHGS offline exchange to build its engine, then persists the
    resulting :class:`OfflinePlan` to the plan store.  Warm path: a second
    process (here: a second runtime over the same store directory) installs
    the stored plan -- no offline HE operation runs at all (asserted on the
    tracker) and the logits are bit-identical.
    """
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=2
    )
    model = TransformerEncoder.initialise(config, seed=3)
    rng = np.random.default_rng(29)
    tokens = rng.integers(0, 40, size=6)
    store = PlanStore(tmp_path)

    cold_runtime = ServingRuntime({"tiny": model}, plan_store=store, seed=7)
    start = time.perf_counter()
    cold_engine = cold_runtime.engine_for("tiny")
    cold_seconds = time.perf_counter() - start

    warm_runtime = ServingRuntime({"tiny": model}, plan_store=store, seed=7)
    start = time.perf_counter()
    warm_engine = warm_runtime.engine_for("tiny")
    warm_seconds = time.perf_counter() - start

    # Correctness first: the warm engine ran zero offline HE operations and
    # serves bit-identical logits.
    warm_offline_ops = sum(
        warm_engine.tracker.phase_snapshot(Phase.OFFLINE.value).values()
    )
    assert warm_offline_ops == 0
    assert warm_runtime.engine_cache.stats().warm_starts == 1
    assert np.array_equal(
        warm_engine.run(tokens).logits, cold_engine.run(tokens).logits
    )

    speedup = cold_seconds / warm_seconds
    print(f"\nPlan-store warm start (engine build, {store.entry_count()} stored plan)\n")
    print(format_table(
        ["Path", "Build seconds", "Offline HE ops"],
        [
            ["cold offline build", f"{cold_seconds:.3f}",
             f"{sum(cold_engine.tracker.phase_snapshot(Phase.OFFLINE.value).values()):,}"],
            ["disk warm start", f"{warm_seconds:.3f}", f"{warm_offline_ops:,}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
    ))
    record("serving", "plan_store_warm_start", {
        "cold_build_seconds": cold_seconds,
        "warm_start_seconds": warm_seconds,
        "warm_start_speedup": speedup,
        "warm_offline_he_operations": warm_offline_ops,
        "stored_plan_bytes": store.total_bytes(),
    })
    assert speedup >= 5.0


def test_fault_recovery():
    """Acceptance: >= 0.8x fault-free throughput under injected transient faults.

    The cached-engine full-inference workload runs through the async front
    door twice: fault-free, then under a deterministic :class:`FaultPlan`
    whose seeded 1% Bernoulli rate models the background transient-fault
    rate at the online-execute site, plus one guaranteed firing so the
    measured window always contains a real retry regardless of the draws.
    The :class:`RetryPolicy` must recover every faulted batch to logits
    bit-identical to the fault-free pass -- conservation
    ``submitted == completed + typed-failed`` with zero gap and zero
    abandoned handles -- at >= 0.8x the fault-free throughput.
    """
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    model = TransformerEncoder.initialise(config, seed=3)
    rng = np.random.default_rng(17)
    tokens = [rng.integers(0, 40, size=6) for _ in range(4 * BATCH)]
    policy = RetryPolicy(max_attempts=3, backoff_seconds=0.001)

    def serve():
        completed: dict[int, object] = {}
        failed: dict[int, RequestFailed] = {}
        with AsyncServingRuntime(
            {"tiny": model}, max_batch_size=4, seed=21, retry_policy=policy
        ) as door:
            door.runtime.engine_for("tiny")  # steady state: build untimed
            start = time.perf_counter()
            handles = [door.submit("tiny", t) for t in tokens]
            for index, handle in enumerate(handles):
                try:
                    completed[index] = handle.result(timeout=300)
                except RequestFailed as error:
                    failed[index] = error
            seconds = time.perf_counter() - start
        return completed, failed, seconds

    free_reports, free_failures, free_seconds = serve()
    assert not free_failures

    # The seed is fixed (not REPRO_FAULT_SEED) so the recorded numbers --
    # and the committed regression floor under them -- are reproducible.
    plan = FaultPlan(
        rules=(
            FaultRule(site=SITE_ONLINE_EXECUTE, rate=0.01),
            FaultRule(site=SITE_ONLINE_EXECUTE, fires=(2,)),
        ),
        seed=0,
    )
    with fault_scope(plan) as injector:
        fault_reports, fault_failures, fault_seconds = serve()
    injected = injector.fired_count(SITE_ONLINE_EXECUTE)
    assert injected >= 1

    # Conservation closes exactly: every handle resolved, none dropped.
    conservation_gap = len(tokens) - len(fault_reports) - len(fault_failures)
    assert conservation_gap == 0
    # Transient faults under a 3-attempt policy all recover bit-identically.
    assert not fault_failures
    for index, report in fault_reports.items():
        assert np.array_equal(report.result, free_reports[index].result)
    retried = sum(1 for report in fault_reports.values() if report.retried)
    assert retried >= 1

    n = len(tokens)
    free_rps = n / free_seconds
    fault_rps = n / fault_seconds
    ratio = fault_rps / free_rps
    print(f"\nFault recovery (async front door, {n} requests, retry x{policy.max_attempts})\n")
    print(format_table(
        ["Path", "Wall seconds", "Requests/s", "Faults", "Retried"],
        [
            ["fault-free", f"{free_seconds:.3f}", f"{free_rps:.1f}", "0", "0"],
            ["injected transients", f"{fault_seconds:.3f}", f"{fault_rps:.1f}",
             f"{injected}", f"{retried}"],
            ["throughput ratio", "", f"{ratio:.2f}x", "", ""],
        ],
    ))
    record("serving", "fault_recovery", {
        "num_requests": n,
        "max_attempts": policy.max_attempts,
        "injected_faults": injected,
        "retried_requests": retried,
        "typed_failures": len(fault_failures),
        "conservation_gap": conservation_gap,
        "fault_free_seconds": free_seconds,
        "faulted_seconds": fault_seconds,
        "fault_free_requests_per_second": free_rps,
        "faulted_requests_per_second": fault_rps,
        "throughput_ratio": ratio,
    })
    # Same threshold as the committed check_regressions.py floor.
    assert ratio >= 0.8


def test_replica_fleet(tmp_path):
    """Acceptance: 2-replica fleet >= 1.3x single-process closed-loop throughput.

    The workload is latency-bound, not compute-bound: the front door holds
    each batch open for ``linger_seconds`` so it can fill, and a closed-loop
    client (submit a round, wait for the whole round, repeat) pays that
    window on every round.  One process serves both models from a single
    drain loop, so the two models' linger windows serialise; two replica
    processes -- one per ``(model, variant)`` key under the router's sticky
    placement -- linger in parallel.  That overlap is the honest fleet win
    on this one-core runner (compute parallelism is unavailable), and it is
    exactly the batching-window pipelining a real fleet buys.

    Gates, matching the committed check_regressions.py entries: throughput
    speedup >= 1.3x, router conservation gap == 0, logits bit-identical to
    the single-process pass, and a fresh replica pointed at the fleet's
    shared :class:`PlanStore` directory warm-starts every engine from disk
    (hit rate 1.0, zero cold builds).
    """
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    models = {
        "tiny": TransformerEncoder.initialise(config, seed=3),
        "tiny2": TransformerEncoder.initialise(config, seed=7),
    }
    rng = np.random.default_rng(11)
    per_model, rounds, linger = 12, 4, 0.2
    runtime_kwargs = dict(max_batch_size=32, seed=21, linger_seconds=linger)
    work = []
    for _ in range(per_model):
        work.append(("tiny", rng.integers(0, 40, size=6)))
        work.append(("tiny2", rng.integers(0, 40, size=6)))
    n = len(work) * rounds

    def run_rounds(submit):
        reports = {}
        for round_index in range(rounds):
            handles = [(model, tokens, submit(model, tokens)) for model, tokens in work]
            for model, tokens, handle in handles:
                reports[(model, tokens.tobytes(), round_index)] = handle.result(
                    timeout=300
                )
        return reports

    with AsyncServingRuntime(models, **runtime_kwargs) as door:
        door.runtime.engine_for("tiny")  # steady state: builds untimed
        door.runtime.engine_for("tiny2")
        start = time.perf_counter()
        single_reports = run_rounds(door.submit)
        single_seconds = time.perf_counter() - start

    store_dir = tmp_path / "plans"
    fleet_dir = tmp_path / "fleet"
    replicas = [
        spawn_replica_process(
            models,
            name=f"rep-{index}",
            fleet_dir=fleet_dir,
            plan_store=PlanStore(store_dir),
            **runtime_kwargs,
        )
        for index in range(2)
    ]
    try:
        with FleetRouter(replicas, start_health_monitor=False) as router:
            # Pin each key's sticky placement and build both engines untimed.
            for model in models:
                router.submit(model, rng.integers(0, 40, size=6)).result(timeout=300)
            start = time.perf_counter()
            fleet_reports = run_rounds(router.submit)
            fleet_seconds = time.perf_counter() - start
            conservation = router.conservation()
            replicas_used = {
                report.worker.split(":")[0] for report in fleet_reports.values()
            }
            router.drain_replicas()
    finally:
        for replica in replicas:
            replica.terminate()
            replica.join(timeout=60)

    bit_identical = all(
        np.array_equal(single_reports[key].result, fleet_reports[key].result)
        for key in single_reports
    )
    assert replicas_used == {"rep-0", "rep-1"}

    # A fresh replica over the fleet's shared plan store skips every
    # offline build: the cross-process warm start the fleet_dir exists for.
    warm = spawn_replica_process(
        models, name="rep-warm", plan_store=PlanStore(store_dir), **runtime_kwargs
    )
    try:
        with FleetRouter([warm], start_health_monitor=False) as warm_router:
            for model in models:
                warm_router.submit(model, rng.integers(0, 40, size=6)).result(
                    timeout=300
                )
            [warm_stats] = warm_router.replica_stats()
    finally:
        warm.terminate()
        warm.join(timeout=60)
    warm_starts = warm_stats["engine_cache"]["warm_starts"]
    cold_builds = warm_stats["engine_cache"]["cold_builds"]
    warm_start_hit_rate = warm_starts / max(1, warm_starts + cold_builds)

    single_rps = n / single_seconds
    fleet_rps = n / fleet_seconds
    speedup = fleet_rps / single_rps
    print(f"\nReplica fleet ({n} closed-loop requests, linger {linger:.2f}s)\n")
    print(format_table(
        ["Path", "Wall seconds", "Requests/s", "Speedup"],
        [
            ["single process", f"{single_seconds:.3f}", f"{single_rps:.1f}", ""],
            ["2-replica fleet", f"{fleet_seconds:.3f}", f"{fleet_rps:.1f}",
             f"{speedup:.2f}x"],
        ],
    ))
    print(
        f"conservation gap {conservation['gap']}, bit identical {bit_identical}, "
        f"warm-start hit rate {warm_start_hit_rate:.2f}"
    )
    record("serving", "replica_fleet", {
        "num_requests": n,
        "num_replicas": len(replicas),
        "linger_seconds": linger,
        "single_process_seconds": single_seconds,
        "fleet_seconds": fleet_seconds,
        "single_process_requests_per_second": single_rps,
        "fleet_requests_per_second": fleet_rps,
        "throughput_speedup": speedup,
        "conservation_gap": conservation["gap"],
        "typed_failures": conservation["typed_failed"],
        "bit_identical": int(bit_identical),
        "warm_starts": warm_starts,
        "cold_builds": cold_builds,
        "warm_start_hit_rate": warm_start_hit_rate,
    })
    # Same thresholds as the committed check_regressions.py gates.
    assert conservation["gap"] == 0
    assert bit_identical
    assert warm_start_hit_rate == 1.0
    assert speedup >= 1.3


@pytest.mark.bench
@pytest.mark.parametrize("batch_size", [1, 4, 8])
def test_bench_shared_slot_matmul(benchmark, batch_size):
    matrices, weights = _make_workload()
    backend = ExactBFVBackend(serving_parameters(256), seed=5)
    benchmark(lambda: encrypted_batch_matmul(backend, matrices[:batch_size], weights))


@pytest.mark.bench
def test_bench_batched_encrypt(benchmark):
    backend = ExactBFVBackend(serving_parameters(256), seed=5)
    rng = np.random.default_rng(0)
    vectors = [rng.integers(0, 256, size=64) for _ in range(32)]
    benchmark(lambda: backend.encrypt_batch(vectors))
