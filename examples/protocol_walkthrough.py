"""Protocol walkthrough: HGS, FHGS and the GC share-ReLU, piece by piece.

This example exercises the individual building blocks of the paper on small
matrices so each exchange can be inspected:

1. HGS on the *exact* BFV backend -- real RLWE ciphertexts cross the wire,
   showing the offline Enc(Rc) / Enc(Rc @ W + Rs) exchange and the HE-free
   online phase.
2. FHGS (ciphertext-ciphertext Q @ K^T) on the simulated backend.
3. A fully garbled share-ReLU (Figure 4 with F = ReLU): real garbled tables,
   real oblivious transfers.

Run with:  python examples/protocol_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import decode, encode
from repro.he import ExactBFVBackend, SimulatedHEBackend, toy_parameters
from repro.mpc import AdditiveSharing
from repro.protocols import (
    EXACT_DEMO_FORMAT,
    FHGSMatmul,
    HGSLinearLayer,
    PROTOCOL_FORMAT,
    garbled_share_relu,
    protocol_he_parameters,
)
from repro.protocols.channel import Channel, Phase


def hgs_on_exact_bfv() -> None:
    print("=" * 70)
    print("1. HGS linear layer on the exact BFV backend")
    print("=" * 70)
    backend = ExactBFVBackend(toy_parameters(64), seed=1)
    sharing = AdditiveSharing(EXACT_DEMO_FORMAT, seed=1)
    channel = Channel()
    rng = np.random.default_rng(0)
    # Small weights keep the toy ring's noise budget positive; the deployed
    # parameters (repro.protocols.protocol_he_parameters) have far more room.
    x = rng.integers(0, 30, size=(4, 4))
    w = rng.integers(0, 6, size=(4, 3))

    layer = HGSLinearLayer(
        weights=w, bias=None, backend=backend, sharing=sharing, channel=channel,
        step="demo", input_rows=4, fmt=EXACT_DEMO_FORMAT, seed=2,
    )
    layer.offline()
    print(f"  offline traffic : {channel.total_bytes(Phase.OFFLINE):,} bytes "
          f"({channel.round_count(Phase.OFFLINE)} messages, real RLWE ciphertexts)")
    output = layer.online(sharing.share(x))
    print(f"  online traffic  : {channel.total_bytes(Phase.ONLINE):,} bytes (no HE)")
    print(f"  correct         : {np.array_equal(output.reconstruct(), (x @ w) % sharing.modulus)}")


def fhgs_attention_product() -> None:
    print("\n" + "=" * 70)
    print("2. FHGS ciphertext-ciphertext product (Q @ K^T)")
    print("=" * 70)
    backend = SimulatedHEBackend(protocol_he_parameters())
    sharing = AdditiveSharing(PROTOCOL_FORMAT, seed=3)
    channel = Channel()
    rng = np.random.default_rng(1)
    q = rng.integers(0, 500, size=(6, 8))
    k = rng.integers(0, 500, size=(6, 8))

    module = FHGSMatmul(
        left_shape=(6, 8), right_shape=(6, 8), backend=backend, sharing=sharing,
        channel=channel, step="qk", transpose_right=True, seed=4,
    )
    module.offline()
    result = module.online(sharing.share(q), sharing.share(k))
    print(f"  offline bytes   : {channel.total_bytes(Phase.OFFLINE):,} "
          f"(encrypted masks Enc(Rc), Enc(Rc^T))")
    print(f"  online bytes    : {channel.total_bytes(Phase.ONLINE):,}")
    print(f"  HE op counts    : {backend.tracker.snapshot()}")
    print(f"  correct         : {np.array_equal(result.reconstruct(), (q @ k.T) % sharing.modulus)}")


def garbled_relu() -> None:
    print("\n" + "=" * 70)
    print("3. Fully garbled share-ReLU (Figure 4, F = ReLU)")
    print("=" * 70)
    from repro.fixedpoint import DEFAULT_FORMAT

    sharing = AdditiveSharing(DEFAULT_FORMAT, seed=5)
    values = np.array([[0.75, -1.5], [2.25, -0.125]])
    shared = sharing.share(encode(values, DEFAULT_FORMAT))
    result, stats = garbled_share_relu(sharing, shared, fmt=DEFAULT_FORMAT, seed=6)
    recovered = decode(result.reconstruct(), DEFAULT_FORMAT)
    print(f"  inputs          : {values.tolist()}")
    print(f"  ReLU outputs    : {recovered.tolist()}")
    print(f"  AND gates       : {stats['and_gates']:,}")
    print(f"  garbled tables  : {stats['table_bytes']:,} bytes")
    print(f"  OT transfers    : {stats['ot_transfers']:,}")


if __name__ == "__main__":
    hgs_on_exact_bfv()
    fhgs_attention_product()
    garbled_relu()
