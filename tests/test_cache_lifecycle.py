"""Concurrent cache/queue lifecycle regressions.

Covers the two races the async front door exposed, plus the bounded-cache
behaviour:

* ``EngineCache.invalidate_model`` vs an in-flight ``prefetch()``/``entry()``
  build -- the build used to re-insert a stale-model engine after the
  invalidation returned; the per-key generation fence now discards it and
  rebuilds against the current model.
* ``BatchScheduler.submit`` vs a concurrent drain -- ``next_batch`` rebinds
  the queue deque, and an unlocked submit could append to the abandoned
  deque and vanish.
* LRU eviction: entry/byte budgets, recency order, and eviction while a
  batch is still executing on the evicted engine.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PrivateTransformerInference
from repro.runtime import (
    BatchKey,
    BatchScheduler,
    InferenceRequest,
    ServingRuntime,
    run_sequential_baseline,
)

FPC = "primer-fpc"


def _small_model(seed: int) -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=seed)


@pytest.fixture(scope="module")
def model_a() -> TransformerEncoder:
    return _small_model(3)


@pytest.fixture(scope="module")
def model_b() -> TransformerEncoder:
    return _small_model(8)


class TestInvalidateVersusInflightBuild:
    def test_invalidate_fences_an_inflight_prefetch(self, model_a, model_b, monkeypatch):
        """Regression: a build started before ``invalidate_model`` must not
        re-insert the replaced model's engine after the invalidation."""
        runtime = ServingRuntime({"m": model_a}, seed=5)
        cache = runtime.engine_cache
        key = BatchKey(kind="inference", model="m", variant=FPC)

        build_started = threading.Event()
        release_build = threading.Event()
        original_prepare = PrivateTransformerInference.prepare

        def gated_prepare(engine):
            build_started.set()
            assert release_build.wait(timeout=30)
            return original_prepare(engine)

        monkeypatch.setattr(PrivateTransformerInference, "prepare", gated_prepare)

        with ThreadPoolExecutor(max_workers=1) as pool:
            future = cache.prefetch(key, pool)
            assert build_started.wait(timeout=30)
            # The build is paused inside the old model's offline phase.
            # Replace the model -- this invalidates, bumping the key's
            # generation -- and only then let the build finish.
            runtime.register_model("m", model_b)
            release_build.set()
            entry = future.result(timeout=120)

        # The stale build was fenced off and re-run: both the returned
        # entry and the cached one serve the *new* model.
        assert entry.engine.model is model_b
        assert cache.entry(key).engine.model is model_b
        assert cache.entry(key) is entry

    def test_invalidation_still_drops_cached_and_pending_state(self, model_a, model_b):
        runtime = ServingRuntime({"m": model_a}, seed=5)
        runtime.engine_for("m")
        assert runtime.engine_cache.stats().entries == 1
        runtime.register_model("m", model_b)
        stats = runtime.engine_cache.stats()
        assert stats.entries == 0
        assert stats.invalidations == 1

    def test_fenced_build_does_not_poison_the_plan_store(
        self, tmp_path, model_a, model_b, monkeypatch
    ):
        """Regression: a remotely prepared plan adopted *after* the model
        was replaced must not be persisted under the new model's
        fingerprint -- the forced rebuild (and any future process) would
        warm-start from the stale plan and serve wrong logits."""
        from concurrent.futures import Future

        from repro.runtime.executor import EngineCache, _prepare_plan_remote

        rng = np.random.default_rng(17)
        tokens = rng.integers(0, 40, size=6)
        runtime = ServingRuntime({"m": model_a}, plan_store=tmp_path, seed=5)
        cache = runtime.engine_cache
        key = BatchKey(kind="inference", model="m", variant=FPC)

        # A worker process prepared model_a's plan (captured at prefetch time).
        future: Future = Future()
        future.set_result(_prepare_plan_remote(*cache.remote_prepare_args(key)))
        cache.adopt_plan_future(key, future)

        # Freeze the build between popping the pending plan and building
        # the engine skeleton -- the window in which register_model swaps
        # the model, so the skeleton (and store fingerprint) would belong
        # to model_b while the plan belongs to model_a.
        skeleton_reached = threading.Event()
        release_skeleton = threading.Event()
        original_skeleton = EngineCache._engine_skeleton

        def gated_skeleton(cache_self, build_key):
            skeleton_reached.set()
            assert release_skeleton.wait(timeout=30)
            return original_skeleton(cache_self, build_key)

        monkeypatch.setattr(EngineCache, "_engine_skeleton", gated_skeleton)
        with ThreadPoolExecutor(max_workers=1) as pool:
            build = cache.prefetch(key, pool)
            assert skeleton_reached.wait(timeout=30)
            runtime.register_model("m", model_b)
            release_skeleton.set()
            entry = build.result(timeout=120)
        assert entry.engine.model is model_b

        # The gold assertion: a fresh process warm-starting for model_b
        # must serve model_b's logits, not model_a's.
        fresh = ServingRuntime({"m": model_b}, plan_store=tmp_path, seed=5)
        engine = fresh.engine_for("m")
        expected, _ = run_sequential_baseline(model_b, [tokens])
        assert np.array_equal(engine.run(tokens).logits, expected[0])

    def test_remote_plan_adoption_counts_in_stats(self, model_a):
        from concurrent.futures import Future

        from repro.runtime.executor import _prepare_plan_remote

        runtime = ServingRuntime({"m": model_a}, seed=5)
        cache = runtime.engine_cache
        key = BatchKey(kind="inference", model="m", variant=FPC)
        future: Future = Future()
        future.set_result(_prepare_plan_remote(*cache.remote_prepare_args(key)))
        cache.adopt_plan_future(key, future)
        entry = cache.entry(key)
        assert entry.prepare_seconds == 0.0
        stats = cache.stats()
        assert stats.remote_builds == 1
        assert stats.cold_builds == 0 and stats.warm_starts == 0


class TestBoundedEngineCache:
    def test_lru_eviction_order_respects_recency(self, model_a):
        models = {name: model_a for name in ("a", "b", "c")}
        runtime = ServingRuntime(models, engine_cache_entries=2, seed=5)
        cache = runtime.engine_cache

        def key(name: str) -> BatchKey:
            return BatchKey(kind="inference", model=name, variant=FPC)

        runtime.engine_for("a")
        runtime.engine_for("b")
        cache.entry(key("a"))  # touch: "a" becomes most recent
        runtime.engine_for("c")  # over budget: evicts "b", the LRU entry
        assert [k.model for k in cache.cached_keys()] == ["a", "c"]
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.evictions == 1

    def test_byte_budget_evicts_but_keeps_the_newest_entry(self, model_a):
        # 1-byte budget: every entry is over budget, but the just-inserted
        # engine is never evicted (the cache must not thrash on one key).
        runtime = ServingRuntime(
            {"a": model_a, "b": model_a}, engine_cache_bytes=1, seed=5
        )
        cache = runtime.engine_cache
        runtime.engine_for("a")
        assert [k.model for k in cache.cached_keys()] == ["a"]
        runtime.engine_for("b")
        assert [k.model for k in cache.cached_keys()] == ["b"]
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.plan_bytes > 0  # the surviving entry's weight

    def test_degenerate_budgets_rejected(self, model_a):
        with pytest.raises(ProtocolError):
            ServingRuntime({"a": model_a}, engine_cache_entries=0)
        with pytest.raises(ProtocolError):
            ServingRuntime({"a": model_a}, engine_cache_bytes=0)

    def test_eviction_while_a_batch_is_executing(self, model_a, model_b, monkeypatch):
        """Evicting an engine mid-batch only drops the cache's reference:
        the executing batch finishes correctly on its own reference and the
        next request rebuilds the engine."""
        rng = np.random.default_rng(11)
        tokens = rng.integers(0, 40, size=6)
        runtime = ServingRuntime(
            {"a": model_a, "b": model_b}, engine_cache_entries=1, seed=5
        )
        cache = runtime.engine_cache
        key_a = BatchKey(kind="inference", model="a", variant=FPC)

        executing = threading.Event()
        evicted = threading.Event()
        original_run_batch = PrivateTransformerInference.run_batch

        def gated_run_batch(engine, payloads):
            executing.set()
            assert evicted.wait(timeout=30)
            return original_run_batch(engine, payloads)

        monkeypatch.setattr(PrivateTransformerInference, "run_batch", gated_run_batch)

        request_id = runtime.submit("a", tokens)
        drain: list = []
        thread = threading.Thread(target=lambda: drain.extend(runtime.run_pending()))
        thread.start()
        assert executing.wait(timeout=60)
        # While "a"'s batch is executing, building "b" under the 1-entry
        # budget evicts "a" out from under it.
        cache.entry(BatchKey(kind="inference", model="b", variant=FPC))
        assert [k.model for k in cache.cached_keys()] == ["b"]
        evicted.set()
        thread.join(timeout=120)
        assert not thread.is_alive()

        assert len(drain) == 1
        expected, _ = run_sequential_baseline(model_a, [tokens])
        assert np.array_equal(runtime.result(request_id).result, expected[0])
        # The next request for "a" rebuilds transparently.
        evicted.set()  # keep the gate open for the rebuild's run
        runtime.submit("a", tokens)
        rebuilt = runtime.run_pending()
        assert np.array_equal(rebuilt[0].result, expected[0])
        assert cache.stats().evictions >= 2  # "a" evicted, then "b"

    def test_explicit_evict(self, model_a):
        runtime = ServingRuntime({"a": model_a}, seed=5)
        key = BatchKey(kind="inference", model="a", variant=FPC)
        runtime.engine_for("a")
        assert runtime.engine_cache.evict(key) is True
        assert runtime.engine_cache.evict(key) is False
        assert runtime.engine_cache.cached_keys() == []


class TestSchedulerQueueLock:
    def test_concurrent_submit_is_never_dropped(self):
        """Regression: submits racing ``next_batch`` used to land in the
        abandoned queue deque and vanish from all accounting."""
        scheduler = BatchScheduler(max_batch_size=3)
        key = BatchKey(kind="inference", model="m", variant=FPC)
        drained: list[str] = []
        stop = threading.Event()

        def drain_loop() -> None:
            while not stop.is_set() or scheduler.pending():
                batch = scheduler.next_batch()
                if batch is None:
                    time.sleep(0.0002)
                else:
                    drained.extend(r.request_id for r in batch.requests)

        drainer = threading.Thread(target=drain_loop)
        drainer.start()

        per_thread = 400
        prefixes = ("a", "b", "c", "d")

        def submitter(prefix: str) -> None:
            for index in range(per_thread):
                scheduler.submit(
                    InferenceRequest(
                        request_id=f"{prefix}{index}", key=key, payload=None
                    )
                )

        threads = [
            threading.Thread(target=submitter, args=(prefix,)) for prefix in prefixes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stop.set()
        drainer.join(timeout=60)
        assert not drainer.is_alive()

        expected = {f"{p}{i}" for p in prefixes for i in range(per_thread)}
        assert scheduler.pending() == 0
        assert len(drained) == len(expected)  # nothing dropped or duplicated
        assert set(drained) == expected

    def test_submit_during_pipelined_drain_is_accounted(self, model_a):
        """A submit racing ``run_pending_pipelined`` either joins that drain
        or stays queued for the next one -- it never disappears."""
        rng = np.random.default_rng(2)
        runtime = ServingRuntime({"a": model_a}, seed=5, num_workers=2)
        runtime.engine_for("a")  # keep the drain window tight
        first = runtime.submit("a", rng.integers(0, 40, size=6))

        late_ids: list[str] = []

        def late_submitter() -> None:
            for _ in range(3):
                late_ids.append(runtime.submit("a", rng.integers(0, 40, size=6)))

        thread = threading.Thread(target=late_submitter)
        thread.start()
        reports = runtime.run_pending_pipelined()
        thread.join(timeout=60)

        drained_ids = {r.request_id for r in reports}
        assert first in drained_ids
        # Conservation: every late submit is either in this drain's reports
        # or still pending -- dropped-from-both is the bug this guards.
        assert runtime.scheduler.pending() == len(set(late_ids) - drained_ids)
        leftover = runtime.run_pending()
        assert drained_ids | {r.request_id for r in leftover} == {first, *late_ids}
