"""Model configurations for the BERT variants evaluated in the paper.

Table III of the paper lists five encoder-only models (BERT-tiny, -small,
-base, -medium, -large) with their block count ``N``, embedding dimension
``d_emb``, head count ``H`` and input length ``n = 30``.  The vocabulary is
WordPiece with 30522 tokens (Section I).

:func:`scaled_config` produces architecture-faithful but dimension-reduced
versions of the same models so that integration tests and the exact-crypto
examples finish quickly; the benchmarks use the full-size configurations
through the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ParameterError

__all__ = [
    "TransformerConfig",
    "BERT_TINY",
    "BERT_SMALL",
    "BERT_BASE",
    "BERT_MEDIUM",
    "BERT_LARGE",
    "PAPER_MODELS",
    "scaled_config",
]


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of an encoder-only Transformer (BERT-style)."""

    name: str
    num_blocks: int
    embed_dim: int
    num_heads: int
    seq_len: int
    vocab_size: int = 30522
    ffn_dim: int | None = None
    num_labels: int = 3

    def __post_init__(self) -> None:
        if self.embed_dim % self.num_heads != 0:
            raise ParameterError(
                f"embed_dim {self.embed_dim} must be divisible by num_heads "
                f"{self.num_heads}"
            )
        if self.num_blocks < 1:
            raise ParameterError("num_blocks must be at least 1")
        if self.seq_len < 1:
            raise ParameterError("seq_len must be at least 1")

    @property
    def head_dim(self) -> int:
        """Per-head projection width."""
        return self.embed_dim // self.num_heads

    @property
    def hidden_ffn_dim(self) -> int:
        """Feed-forward inner width (BERT convention: 4 x embed_dim)."""
        return self.ffn_dim if self.ffn_dim is not None else 4 * self.embed_dim

    def parameter_count(self) -> int:
        """Approximate trainable-parameter count (embeddings + blocks + head)."""
        d, f, v = self.embed_dim, self.hidden_ffn_dim, self.vocab_size
        embeddings = v * d + self.seq_len * d
        per_block = (
            4 * d * d + 4 * d      # QKV + output projections and biases
            + 2 * d * f + d + f    # FFN
            + 4 * d                # two LayerNorms
        )
        head = d * self.num_labels + self.num_labels
        return embeddings + self.num_blocks * per_block + head


# Table III hyper-parameters.
BERT_TINY = TransformerConfig("bert-tiny", num_blocks=3, embed_dim=768, num_heads=12, seq_len=30)
BERT_SMALL = TransformerConfig("bert-small", num_blocks=6, embed_dim=768, num_heads=12, seq_len=30)
BERT_BASE = TransformerConfig("bert-base", num_blocks=12, embed_dim=768, num_heads=12, seq_len=30)
BERT_MEDIUM = TransformerConfig("bert-medium", num_blocks=12, embed_dim=1024, num_heads=16, seq_len=30)
BERT_LARGE = TransformerConfig("bert-large", num_blocks=24, embed_dim=1024, num_heads=16, seq_len=30)

#: The five models of Table III, keyed by name.
PAPER_MODELS = {
    cfg.name: cfg
    for cfg in (BERT_TINY, BERT_SMALL, BERT_BASE, BERT_MEDIUM, BERT_LARGE)
}


def scaled_config(
    base: TransformerConfig,
    *,
    embed_dim: int = 32,
    num_heads: int = 4,
    seq_len: int = 8,
    vocab_size: int = 64,
    num_blocks: int | None = None,
    num_labels: int | None = None,
) -> TransformerConfig:
    """A dimension-reduced copy of a paper configuration for fast tests.

    The block structure (attention + FFN + LayerNorms) is unchanged; only the
    widths shrink, so every protocol code path is still exercised.
    """
    return replace(
        base,
        name=f"{base.name}-scaled",
        embed_dim=embed_dim,
        num_heads=num_heads,
        seq_len=seq_len,
        vocab_size=vocab_size,
        num_blocks=num_blocks if num_blocks is not None else min(base.num_blocks, 2),
        ffn_dim=2 * embed_dim,
        num_labels=num_labels if num_labels is not None else base.num_labels,
    )
