"""Explicit offline-phase artifacts: the :class:`OfflinePlan`.

The paper's central systems idea (HGS/FHGS/CHGS) is that *all* expensive HE
work happens before the input arrives.  Historically the reproduction kept
that pre-processing as hidden mutable state inside each protocol module
(``HGSLinearLayer._client_mask`` and friends), which made the offline phase
impossible to schedule: it could only ever run in-place, on the thread that
owned the module, immediately before the online phase.

This module makes the offline phase a first-class value instead.  Every
protocol module now splits its old ``offline()`` into

* ``prepare(phase=...)`` -- runs the HE exchange and returns a frozen *plan*
  (masks, offline shares, encrypted cross-term operands) without touching
  the module's execution state, and
* ``install(plan)`` -- adopts a previously prepared plan, after which
  ``online()`` may run.

``offline()`` survives as the trivial composition ``install(prepare())`` so
existing callers are unchanged.  At the engine level,
:meth:`~repro.protocols.primer.PrivateTransformerInference.prepare` gathers
one plan per named module into an :class:`OfflinePlan`, which the serving
executor can build on a background worker, hand between threads, or cache --
the pipelined runtime overlaps batch N+1's ``prepare()`` with batch N's
online execution precisely because the plan is a plain immutable artifact.

Plan layout
-----------

:class:`HGSPlan`
    ``Rc`` (client mask), ``Rs`` (server mask) and the client's decrypted
    offline share ``Rc @ W + Rs`` for one HGS linear layer.
:class:`FHGSPlan`
    Both operand masks, the encrypted mask packings kept for the online
    cross terms, and the shared mask-product ("quadratic") term for one
    FHGS/CHGS matrix product.  On an evaluation-resident backend (the
    default since the domain-residency work) the encrypted packings are
    EVAL-form (NTT-domain) handles, so a plan shipped through the
    :mod:`~repro.protocols.planstore` warm-starts an engine whose online
    cross terms run pointwise -- no per-product transform round trips.
:class:`OfflinePlan`
    A frozen mapping ``module name -> module plan`` plus the variant name
    and the phase the exchanges were charged to.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Mapping
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ProtocolError
from .channel import Phase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..he.matmul import PackedMatrix

__all__ = ["HGSPlan", "FHGSPlan", "OfflinePlan", "plan_nbytes"]


def plan_nbytes(obj) -> int:
    """Approximate in-memory footprint of a plan (or any plan fragment).

    Walks dataclasses, mappings and sequences summing the ``nbytes`` of
    every ndarray reached -- masks, offline shares and the slot vectors of
    simulated ciphertext handles all count.  The engine cache uses this as
    the byte weight of a cached engine for its eviction budget; it is a
    proxy (python object overhead is ignored), but it tracks the arrays
    that dominate a plan's real size.
    """
    seen: set[int] = set()

    def walk(value) -> int:
        if value is None or isinstance(value, (str, bytes, int, float, bool)):
            return 0
        if id(value) in seen:
            return 0
        seen.add(id(value))
        if isinstance(value, np.ndarray):
            return int(value.nbytes)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return sum(
                walk(getattr(value, f.name)) for f in dataclasses.fields(value)
            )
        if isinstance(value, Mapping):
            return sum(walk(item) for item in value.values())
        if isinstance(value, (list, tuple, set, frozenset)):
            return sum(walk(item) for item in value)
        return 0

    return walk(obj)


@dataclass(frozen=True)
class HGSPlan:
    """Offline artifact of one :class:`~repro.protocols.hgs.HGSLinearLayer`.

    After the offline exchange the client holds ``client_offline_share =
    Rc @ W + Rs`` and the server holds ``server_mask = Rs``; together with
    ``client_mask = Rc`` these are everything the online phase needs.
    """

    client_mask: np.ndarray
    server_mask: np.ndarray
    client_offline_share: np.ndarray

    @property
    def input_shape(self) -> tuple[int, ...]:
        return tuple(self.client_mask.shape)


@dataclass(frozen=True)
class FHGSPlan:
    """Offline artifact of one :class:`~repro.protocols.fhgs.FHGSMatmul`.

    ``enc_left_cols`` / ``enc_right_rows`` are the encrypted mask packings
    the server re-uses for the online cross terms; ``quad_client`` /
    ``quad_server`` are the two parties' shares of the mask-product term.
    ``enc_weighted_right_rows`` is only present for the right-weighted
    (combined value-projection) mode.

    When ``slot_sharing > 1`` the plan additionally carries *tiled*
    packings: every handle's packed vector replicated ``slot_sharing``
    times, so the online cross terms of up to ``slot_sharing`` compatible
    requests pack block-diagonally into shared ciphertext slots (request
    ``r`` occupies slot block ``r``) and a ``k``-request batch ships
    ``~1/k`` the cross-term ciphertexts.
    """

    left_mask: np.ndarray
    right_mask: np.ndarray
    enc_left_cols: PackedMatrix
    enc_right_rows: PackedMatrix
    quad_client: np.ndarray
    quad_server: np.ndarray
    enc_weighted_right_rows: PackedMatrix | None = None
    #: block-diagonal slot-sharing capacity (1 = classic per-request plan)
    slot_sharing: int = 1
    enc_left_cols_tiled: PackedMatrix | None = None
    enc_right_rows_tiled: PackedMatrix | None = None
    enc_weighted_right_rows_tiled: PackedMatrix | None = None

    @property
    def operand_shapes(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return tuple(self.left_mask.shape), tuple(self.right_mask.shape)


@dataclass(frozen=True)
class OfflinePlan:
    """The complete offline phase of one engine, as an immutable value.

    Produced by ``PrivateTransformerInference.prepare()`` and consumed by
    ``install()``; the mapping is keyed by the engine's stable module names
    (``"embedding"``, ``"block0.qkv.query"``, ``"block1.scores.0"``, ...).
    """

    variant: str
    phase: Phase
    modules: Mapping[str, HGSPlan | FHGSPlan] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the mapping so a plan can be shared across threads safely.
        object.__setattr__(self, "modules", MappingProxyType(dict(self.modules)))

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from a plain dict so a
        # plan can cross process boundaries (the pipelined executor prepares
        # plans in worker processes).
        return (OfflinePlan, (self.variant, self.phase, dict(self.modules)))

    def __len__(self) -> int:
        return len(self.modules)

    def module_names(self) -> list[str]:
        return list(self.modules)

    def module(self, name: str) -> HGSPlan | FHGSPlan:
        if name not in self.modules:
            raise ProtocolError(f"offline plan has no module {name!r}")
        return self.modules[name]

    def approx_nbytes(self) -> int:
        """Approximate footprint of every array this plan holds on to."""
        return plan_nbytes(self)
