"""Persistent :class:`~repro.protocols.plan.OfflinePlan` store.

The offline phase is the expensive half of the paper's protocols — and since
PR 2 it is an explicit, picklable artifact (:class:`OfflinePlan`).  This
module makes that artifact survive process restarts: plans are serialized to
disk keyed by ``(model, variant, seed, slot_sharing)``, so a freshly started
serving process can *warm-start* its engines by installing a stored plan
instead of re-running the whole HE exchange (the engine cache does exactly
that, see :class:`~repro.runtime.executor.EngineCache`).

Keying
------
The ``model`` component of a key is a **content fingerprint** (a SHA-256
prefix over the model's serialized config and weights), not the mutable
serving name.  Replacing a model under the same serving name therefore
changes the key and misses the store — stale plans can never be installed
onto a replaced model, the same invariant the in-memory cache enforces with
``invalidate_model``.

Integrity
---------
Every entry records a SHA-256 digest of its pickled payload plus the full
key metadata.  ``load`` verifies both before unpickling and treats *any*
mismatch — truncated file, flipped bit, metadata drift, unreadable pickle —
as a cache miss (the corrupt entry is deleted), so the worst failure mode of
the store is a cold rebuild, never a wrong or half-installed plan.

The store trusts its own directory: payloads are pickles, so a plan
directory must be treated like any other local cache (do not point it at
attacker-writable storage).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import ProtocolError
from .plan import OfflinePlan

__all__ = ["PlanStoreKey", "PlanStore", "model_fingerprint"]

#: file-format magic + version; bumping it invalidates every stored entry
_MAGIC = b"REPRO-PLAN1\n"


def model_fingerprint(model) -> str:
    """Content hash of a model (config + weights), stable across processes.

    Two models with identical configuration and weights fingerprint the
    same; any weight or shape change yields a new fingerprint.  Used as the
    ``model`` component of a :class:`PlanStoreKey`, so a stored plan can
    only ever be installed onto the exact model it was prepared for.
    """
    return hashlib.sha256(pickle.dumps(model)).hexdigest()[:32]


@dataclass(frozen=True)
class PlanStoreKey:
    """Identity of one stored plan: which engine build it can warm-start.

    ``model`` is a content fingerprint (see :func:`model_fingerprint`);
    ``slot_sharing`` is the *effective* FHGS slot-sharing the plan was
    prepared with (engines clamp the requested value to their backend and
    slot budget, and plans prepared at different sharing levels are not
    interchangeable).
    """

    model: str
    variant: str
    seed: int
    slot_sharing: int

    def digest(self) -> str:
        """Stable filename-safe digest of the key."""
        blob = json.dumps(asdict(self), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:40]


class PlanStore:
    """Directory-backed store of serialized offline plans.

    Writes are atomic (temp file + ``os.replace``), so a concurrent reader —
    another serving process sharing the directory, or a prefetch racing a
    build — never observes a partially written entry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keys ----------------------------------------------------------------
    def key_for(self, model, variant: str, seed: int, slot_sharing: int) -> PlanStoreKey:
        """The store key of an engine build (fingerprints ``model``)."""
        return PlanStoreKey(
            model=model_fingerprint(model), variant=variant,
            seed=int(seed), slot_sharing=int(slot_sharing),
        )

    def path_for(self, key: PlanStoreKey) -> Path:
        return self.root / f"{key.digest()}.plan"

    # -- persistence ---------------------------------------------------------
    def store(self, key: PlanStoreKey, plan: OfflinePlan) -> Path:
        """Serialize ``plan`` under ``key``; returns the entry's path."""
        if not isinstance(plan, OfflinePlan):
            raise ProtocolError(
                f"plan store holds OfflinePlans, not {type(plan).__name__}"
            )
        payload = pickle.dumps(plan)
        header = json.dumps(
            {
                "key": asdict(key),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "payload_bytes": len(payload),
                "variant": plan.variant,
            },
            sort_keys=True,
        ).encode()
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(len(header).to_bytes(4, "big"))
                handle.write(header)
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load(self, key: PlanStoreKey) -> OfflinePlan | None:
        """The stored plan for ``key``, or ``None`` on miss/corruption.

        Verification order: magic/version, header metadata (the stored key
        must equal ``key`` field for field), payload digest, then unpickle.
        Any failure deletes the entry and reads as a miss — the caller falls
        back to a cold build.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            offset = len(_MAGIC)
            header_len = int.from_bytes(blob[offset:offset + 4], "big")
            offset += 4
            header = json.loads(blob[offset:offset + header_len])
            payload = blob[offset + header_len:]
            if header.get("key") != asdict(key):
                raise ValueError("key metadata mismatch")
            if len(payload) != int(header.get("payload_bytes", -1)):
                raise ValueError("payload truncated")
            if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
                raise ValueError("payload digest mismatch")
            plan = pickle.loads(payload)
            if not isinstance(plan, OfflinePlan):
                raise ValueError("payload is not an OfflinePlan")
        except (ValueError, KeyError, json.JSONDecodeError, pickle.UnpicklingError,
                EOFError, AttributeError, ImportError, IndexError):
            self._discard(path)
            return None
        return plan

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone or unwritable
            pass

    # -- introspection -------------------------------------------------------
    def contains(self, key: PlanStoreKey) -> bool:
        return self.path_for(key).exists()

    def entry_bytes(self, key: PlanStoreKey) -> int:
        """On-disk size of ``key``'s entry (0 when absent)."""
        try:
            return self.path_for(key).stat().st_size
        except FileNotFoundError:
            return 0

    def entry_count(self) -> int:
        return len(list(self.root.glob("*.plan")))

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.root.glob("*.plan"))

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.plan"):
            self._discard(path)
            removed += 1
        return removed
