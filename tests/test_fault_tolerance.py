"""Fault-tolerant serving: deterministic injection, retry, degradation.

The acceptance bar from the issue: under a deterministic
:class:`~repro.runtime.faults.FaultPlan` injecting transient faults at every
registered site, all submitted requests either complete with logits
bit-identical to the fault-free run (retries) or fail with typed errors
carrying retry hints (shedding / quarantine) -- zero hangs, zero silently
dropped handles, verified by a conservation check
(``submitted == completed + typed-failed``).

Every recovery behaviour here is driven by *induced* failure through the
seeded injector (``REPRO_FAULT_SEED`` is matrixed in CI), never by mocks of
the recovery machinery itself.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    EngineQuarantined,
    OverloadedError,
    ProtocolError,
    RequestFailed,
    ShapeError,
    ShutdownTimeout,
    TransientFault,
)
from repro.he import kernels, toy_parameters
from repro.he.ntt import get_ntt_context
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PRIMER_F, PRIMER_FPC, PrivateTransformerInference
from repro.protocols.planstore import PlanStore
from repro.runtime import (
    ALL_SITES,
    AdmissionController,
    AsyncServingRuntime,
    BatchKey,
    BatchScheduler,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InferenceRequest,
    RetryPolicy,
    ServingRuntime,
    active_injector,
    fault_scope,
)
from repro.runtime.faults import (
    SITE_ENGINE_BUILD,
    SITE_KERNEL_DISPATCH,
    SITE_ONLINE_EXECUTE,
    SITE_PLANSTORE_LOAD,
    SITE_PLANSTORE_STORE,
    SITE_WORKER_SHARD,
    fault_seed_from_env,
)
from repro.runtime.serving import summarize

SEED = fault_seed_from_env()


@pytest.fixture(autouse=True)
def _clean_slate():
    """No injector leaks between tests; kernel fallback pins are cleared."""
    assert active_injector() is None
    yield
    assert active_injector() is None
    kernels.clear_kernel_state()


@pytest.fixture(scope="module")
def small_model() -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=3)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(29)
    return [rng.integers(0, 40, size=6) for _ in range(6)]


@pytest.fixture(scope="module")
def fault_free_logits(small_model, workload):
    """Logits of an injection-free serial pass, keyed by token payload."""
    runtime = ServingRuntime({"tiny": small_model}, max_batch_size=4, seed=21)
    ids = [runtime.submit("tiny", tokens) for tokens in workload]
    runtime.run_pending()
    return {
        tokens.tobytes(): runtime.result(rid).result
        for tokens, rid in zip(workload, ids, strict=True)
    }


def _door(small_model, **kwargs) -> AsyncServingRuntime:
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("seed", 21)
    return AsyncServingRuntime({"tiny": small_model}, **kwargs)


def _request(rid: str = "r0", sequence: int = 0) -> InferenceRequest:
    return InferenceRequest(
        request_id=rid,
        key=BatchKey(kind="inference", model="tiny", variant=PRIMER_FPC.name),
        payload=np.zeros(6, dtype=np.int64),
        sequence=sequence,
    )


class TestFaultInjector:
    def test_rules_validate(self):
        with pytest.raises(ProtocolError):
            FaultRule(site="nonsite", fires=(1,))
        with pytest.raises(ProtocolError):
            FaultRule(site=SITE_ONLINE_EXECUTE, kind="explode", fires=(1,))
        with pytest.raises(ProtocolError):
            FaultRule(site=SITE_ONLINE_EXECUTE, rate=1.5)
        with pytest.raises(ProtocolError):
            FaultRule(site=SITE_ONLINE_EXECUTE)  # neither fires nor rate

    def test_occurrence_schedule_fires_exactly_as_listed(self):
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, fires=(2, 4)),), seed=SEED
        )
        injector = FaultInjector(plan)
        outcomes = []
        for _ in range(5):
            try:
                injector.visit(SITE_ONLINE_EXECUTE)
                outcomes.append("ok")
            except TransientFault as fault:
                assert fault.site == SITE_ONLINE_EXECUTE
                assert fault.retryable
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok"]
        assert injector.occurrences(SITE_ONLINE_EXECUTE) == 5
        assert injector.fired_count(SITE_ONLINE_EXECUTE) == 2

    def test_seeded_rate_replays_identically(self):
        rule = FaultRule(site=SITE_KERNEL_DISPATCH, rate=0.4)

        def schedule(seed: int) -> list[bool]:
            injector = FaultInjector(FaultPlan(rules=(rule,), seed=seed))
            fired = []
            for _ in range(32):
                try:
                    injector.visit(SITE_KERNEL_DISPATCH)
                    fired.append(False)
                except TransientFault:
                    fired.append(True)
            return fired

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)  # the seed matters
        assert 0 < sum(schedule(11)) < 32  # a real Bernoulli schedule

    def test_max_fires_caps_a_rate_rule(self):
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, rate=1.0, max_fires=2),),
            seed=SEED,
        )
        injector = FaultInjector(plan)
        faults = 0
        for _ in range(6):
            try:
                injector.visit(SITE_ONLINE_EXECUTE)
            except TransientFault:
                faults += 1
        assert faults == 2

    def test_corrupt_counters_are_independent_of_inject(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site=SITE_PLANSTORE_LOAD, kind="corrupt", fires=(1,)),
                FaultRule(site=SITE_PLANSTORE_LOAD, fires=(99,)),
            ),
            seed=SEED,
        )
        injector = FaultInjector(plan)
        injector.visit(SITE_PLANSTORE_LOAD)  # inject occurrence 1: no fire
        assert injector.corrupt(SITE_PLANSTORE_LOAD, b"abc") == bytes(
            b ^ 0xFF for b in b"abc"
        )
        # corrupt occurrence 2: the rule fired once already, back to clean.
        assert injector.corrupt(SITE_PLANSTORE_LOAD, b"abc") == b"abc"
        assert injector.occurrences(SITE_PLANSTORE_LOAD, "inject") == 1
        assert injector.occurrences(SITE_PLANSTORE_LOAD, "corrupt") == 2

    def test_plain_exception_types_are_injectable(self):
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_PLANSTORE_LOAD, fires=(1,), error=OSError),),
            seed=SEED,
        )
        with pytest.raises(OSError):
            FaultInjector(plan).visit(SITE_PLANSTORE_LOAD)

    def test_delay_rule_sleeps_without_raising(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ONLINE_EXECUTE, kind="delay", fires=(1,),
                    delay_seconds=0.05,
                ),
            ),
            seed=SEED,
        )
        injector = FaultInjector(plan)
        start = time.perf_counter()
        injector.visit(SITE_ONLINE_EXECUTE)
        assert time.perf_counter() - start >= 0.045
        assert injector.events()[0].kind == "delay"

    def test_fault_scope_restores_previous_injector(self):
        outer_plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, fires=(99,)),), seed=SEED
        )
        with fault_scope(outer_plan) as outer:
            assert active_injector() is outer
            with fault_scope(FaultPlan(rules=(), seed=SEED)) as inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None
        with fault_scope(None) as none_scope:
            assert none_scope is None
            assert active_injector() is None

    def test_seed_comes_from_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "17")
        assert fault_seed_from_env() == 17
        assert RetryPolicy().seed == 17
        monkeypatch.setenv("REPRO_FAULT_SEED", "not-a-number")
        assert fault_seed_from_env(default=3) == 3

    def test_event_log_is_bounded_while_counters_stay_exact(self):
        """Regression: the process-global event log must not grow unbounded.

        Long-lived fleet replicas visit sites indefinitely; the log is a
        bounded replay window (``max_events``) but :meth:`fired_count` is
        counted separately and stays exact past the cap.
        """
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, rate=1.0),), seed=SEED
        )
        injector = FaultInjector(plan, max_events=8)
        for index in range(50):
            with pytest.raises(TransientFault):
                injector.visit(SITE_ONLINE_EXECUTE, detail=f"v{index}")
        assert len(injector.events()) == 8
        # The retained window is the *most recent* firings, oldest first.
        assert [event.detail for event in injector.events()] == [
            f"v{i}" for i in range(42, 50)
        ]
        assert injector.fired_count() == 50
        assert injector.fired_count(SITE_ONLINE_EXECUTE) == 50
        assert injector.fired_count(SITE_KERNEL_DISPATCH) == 0
        with pytest.raises(ProtocolError):
            FaultInjector(plan, max_events=0)

    def test_event_log_is_thread_safe_under_concurrent_visits(self):
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, rate=1.0),), seed=SEED
        )
        injector = FaultInjector(plan, max_events=16)
        per_thread, num_threads = 200, 8

        def hammer() -> None:
            for _ in range(per_thread):
                try:
                    injector.visit(SITE_ONLINE_EXECUTE)
                except TransientFault:
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert injector.fired_count() == per_thread * num_threads
        assert injector.occurrences(SITE_ONLINE_EXECUTE) == per_thread * num_threads
        assert len(injector.events()) == 16


class TestCircuitBreaker:
    def test_full_cycle_closed_open_halfopen_closed(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=10.0, clock=lambda: clock[0]
        )
        assert breaker.allow() and breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.allow()  # one failure under the threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after_seconds() == pytest.approx(10.0)
        clock[0] = 10.5
        assert breaker.allow()  # the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_failure_reopens_immediately(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after_seconds() == pytest.approx(5.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ProtocolError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ProtocolError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ProtocolError):
            RetryPolicy(timeout_seconds=0.0)

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(TransientFault("x"))
        assert not policy.retryable(ShapeError("x"))
        assert not policy.retryable(ValueError("x"))

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_seconds=0.01, backoff_multiplier=2.0, jitter=0.1, seed=5
        )
        for attempt in (1, 2, 3):
            base = 0.01 * 2.0 ** (attempt - 1)
            delay = policy.backoff_for("req-7", attempt)
            assert delay == policy.backoff_for("req-7", attempt)
            assert base * 0.9 <= delay <= base * 1.1
        # distinct requests de-synchronise (the point of the jitter)
        assert policy.backoff_for("req-7", 1) != policy.backoff_for("req-8", 1)

    def test_budget_is_shared_across_attempts(self):
        policy = RetryPolicy(timeout_seconds=1.0)
        assert policy.budget_remaining(submitted_at=0.0, now=0.4) == pytest.approx(0.6)
        assert policy.budget_remaining(submitted_at=0.0, now=1.2) < 0
        assert RetryPolicy().budget_remaining(0.0, 1e9) == float("inf")


class TestRetryPath:
    def test_transient_fault_retries_bit_identical(
        self, small_model, workload, fault_free_logits
    ):
        """One injected executor fault → the batch retries → identical logits."""
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, fires=(1,)),), seed=SEED
        )
        with fault_scope(plan) as injector:
            with _door(
                small_model,
                retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.001),
            ) as door:
                handles = [door.submit("tiny", tokens) for tokens in workload]
                reports = [handle.result(timeout=120) for handle in handles]
        assert injector.fired_count(SITE_ONLINE_EXECUTE) == 1
        retried = [r for r in reports if r.retried]
        assert retried, "the injected fault must have forced at least one retry"
        for report in retried:
            assert report.attempts == 2
        for tokens, report in zip(workload, reports, strict=True):
            assert np.array_equal(report.result, fault_free_logits[tokens.tobytes()])
        stats = summarize(reports)
        assert stats.retried_requests == len(retried)
        assert stats.total_attempts == len(reports) + len(retried)
        assert stats.degraded_requests == 0

    def test_exhausted_attempts_fail_typed(self, small_model, workload):
        """A persistent fault fails the request with attempts == max_attempts."""
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, rate=1.0),), seed=SEED
        )
        with fault_scope(plan):
            with _door(
                small_model,
                retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.001),
            ) as door:
                handle = door.submit("tiny", workload[0])
                with pytest.raises(RequestFailed) as info:
                    handle.result(timeout=120)
        assert info.value.request_id == handle.request_id
        assert info.value.attempts == 2
        assert info.value.site == SITE_ONLINE_EXECUTE
        assert isinstance(info.value.__cause__, TransientFault)

    def test_non_retryable_errors_fail_fast(self, small_model, workload):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ONLINE_EXECUTE, fires=(1,), error=ShapeError,
                    message="injected shape error",
                ),
            ),
            seed=SEED,
        )
        with fault_scope(plan):
            with _door(
                small_model,
                retry_policy=RetryPolicy(max_attempts=5, backoff_seconds=0.001),
            ) as door:
                handle = door.submit("tiny", workload[0])
                with pytest.raises(RequestFailed, match="injected shape error") as info:
                    handle.result(timeout=120)
        assert info.value.attempts == 1  # no retry was attempted

    def test_timeout_budget_fails_instead_of_retrying(self, small_model, workload):
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, rate=1.0),), seed=SEED
        )
        policy = RetryPolicy(
            max_attempts=50, backoff_seconds=0.05, timeout_seconds=0.001
        )
        with fault_scope(plan):
            with _door(small_model, retry_policy=policy) as door:
                handle = door.submit("tiny", workload[0])
                with pytest.raises(RequestFailed) as info:
                    handle.result(timeout=120)
        # far fewer executions than max_attempts: the budget cut the retries
        assert info.value.attempts < 10


class TestAdmissionControl:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ProtocolError):
            AdmissionController(max_inflight_bytes=0)
        with pytest.raises(ProtocolError):
            AdmissionController(retry_after_seconds=-1.0)

    def test_queue_depth_watermark_sheds(self):
        admission = AdmissionController(max_queue_depth=2, retry_after_seconds=0.1)
        admission.admit(0, 10)
        admission.admit(1, 10)
        with pytest.raises(OverloadedError) as info:
            admission.admit(2, 10)
        assert info.value.retry_after_seconds > 0.1  # scaled by the overload
        assert admission.shed_count == 1
        assert admission.admitted_count == 2

    def test_inflight_bytes_watermark_and_release(self):
        admission = AdmissionController(max_inflight_bytes=100)
        admission.admit(0, 60)
        with pytest.raises(OverloadedError):
            admission.admit(0, 60)
        admission.release(60)
        admission.admit(0, 60)  # freed budget admits again
        assert admission.inflight_bytes == 60

    def test_shedding_at_the_door_preserves_served_order(
        self, small_model, workload, fault_free_logits
    ):
        """Admitted requests are served FIFO; shed ones fail typed at submit."""
        admission = AdmissionController(max_queue_depth=2)
        door = _door(small_model, max_batch_size=2, admission=admission)
        try:
            # Wedge the drain loop briefly so the queue genuinely fills.
            gate = threading.Event()
            original = door.runtime.executor.execute

            def gated(batch, **kwargs):
                gate.wait(timeout=30)
                return original(batch, **kwargs)

            door.runtime.executor.execute = gated
            admitted, shed = [], 0
            for tokens in workload:
                try:
                    admitted.append((tokens, door.submit("tiny", tokens)))
                except OverloadedError as overloaded:
                    assert overloaded.retry_after_seconds > 0
                    shed += 1
            gate.set()
            reports = [handle.result(timeout=120) for _, handle in admitted]
        finally:
            gate.set()
            door.runtime.executor.execute = original
            door.close()
        assert shed > 0 and len(admitted) + shed == len(workload)
        assert admission.shed_count == shed
        # FIFO per key: completion order equals admission order.
        assert [r.request_id for r in reports] == sorted(
            (r.request_id for r in reports), key=lambda rid: int(rid.split("-")[1])
        )
        for tokens, _ in admitted:
            assert tokens.tobytes() in fault_free_logits
        assert admission.inflight_bytes == 0  # everything released


class TestEngineQuarantine:
    def _runtime(self, small_model, clock) -> ServingRuntime:
        return ServingRuntime(
            {"tiny": small_model},
            max_batch_size=4,
            seed=21,
            breaker_threshold=2,
            breaker_cooldown_seconds=30.0,
            breaker_clock=lambda: clock[0],
        )

    def test_single_build_fault_rebuilds_in_place(self, small_model, workload):
        clock = [0.0]
        runtime = self._runtime(small_model, clock)
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ENGINE_BUILD, fires=(1,)),), seed=SEED
        )
        with fault_scope(plan):
            rid = runtime.submit("tiny", workload[0])
            runtime.run_pending()
        assert runtime.result(rid).prediction is not None
        stats = runtime.executor.engines.stats()
        assert stats.build_failures == 1
        assert stats.cold_builds == 1
        assert stats.quarantine_rejections == 0

    def test_repeated_failures_quarantine_then_probe_recovers(
        self, small_model, workload, fault_free_logits
    ):
        clock = [0.0]
        runtime = self._runtime(small_model, clock)
        engines = runtime.executor.engines
        key = BatchKey(kind="inference", model="tiny", variant=PRIMER_FPC.name)
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ENGINE_BUILD, fires=(1, 2)),), seed=SEED
        )
        with fault_scope(plan):
            # Build + in-place rebuild both fail: the breaker opens.
            with pytest.raises(TransientFault):
                engines.entry(key)
            # While open, builds are quarantined with a retry hint.
            with pytest.raises(EngineQuarantined) as info:
                engines.entry(key)
            assert info.value.retry_after_seconds == pytest.approx(30.0)
            # After the cooldown, the half-open probe build succeeds and
            # closes the breaker.
            clock[0] = 31.0
            entry = engines.entry(key)
        assert entry.engine is not None
        stats = engines.stats()
        assert stats.build_failures == 2
        assert stats.quarantine_rejections == 1
        assert stats.probe_builds == 1
        # The recovered engine serves bit-identical logits.
        rid = runtime.submit("tiny", workload[0])
        runtime.run_pending()
        assert np.array_equal(
            runtime.result(rid).result, fault_free_logits[workload[0].tobytes()]
        )

    def test_probe_failure_reopens_the_quarantine(self, small_model):
        clock = [0.0]
        runtime = self._runtime(small_model, clock)
        engines = runtime.executor.engines
        key = BatchKey(kind="inference", model="tiny", variant=PRIMER_FPC.name)
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ENGINE_BUILD, fires=(1, 2, 3)),), seed=SEED
        )
        with fault_scope(plan):
            with pytest.raises(TransientFault):
                engines.entry(key)
            clock[0] = 31.0
            with pytest.raises(TransientFault):
                engines.entry(key)  # the probe build fails (occurrence 3)
            with pytest.raises(EngineQuarantined):
                engines.entry(key)  # ... and the breaker re-opened
        assert engines.stats().probe_builds == 1

    def test_build_failure_leaves_no_poisoned_entry_and_releases_lock(
        self, small_model, workload
    ):
        """Satellite: a failed build must not cache anything or wedge the
        per-key lock -- the next entry() builds cleanly."""
        clock = [0.0]
        runtime = self._runtime(small_model, clock)
        engines = runtime.executor.engines
        key = BatchKey(kind="inference", model="tiny", variant=PRIMER_FPC.name)
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ENGINE_BUILD, fires=(1,), error=ProtocolError,
                    message="injected non-retryable build failure",
                ),
            ),
            seed=SEED,
        )
        with fault_scope(plan):
            with pytest.raises(ProtocolError, match="injected non-retryable"):
                engines.entry(key)
            assert engines.cached_keys() == []  # nothing poisoned
            entry = engines.entry(key)  # lock released, clean rebuild
        assert entry.engine is not None
        assert engines.cached_keys() == [key]


class TestPlanStoreFaults:
    @pytest.fixture()
    def plan(self, small_model):
        engine = PrivateTransformerInference(small_model, PRIMER_FPC, seed=21)
        return engine.prepare()

    @pytest.fixture()
    def store_and_key(self, tmp_path, small_model):
        store = PlanStore(tmp_path, io_error_disable_threshold=3)
        key = store.key_for(small_model, PRIMER_FPC.name, 21, 1)
        return store, key

    def test_transient_load_error_retries_and_hits(self, plan, store_and_key):
        store, key = store_and_key
        store.store(key, plan)
        rules = (
            FaultRule(site=SITE_PLANSTORE_LOAD, fires=(1,), error=OSError),
        )
        with fault_scope(FaultPlan(rules=rules, seed=SEED)):
            loaded = store.load(key)
        assert loaded is not None  # the in-line retry absorbed the fault
        stats = store.stats()
        assert stats.io_errors == 1
        assert stats.hits == 1
        assert stats.integrity_failures == 0

    def test_exhausted_load_retry_is_a_miss_that_keeps_the_file(
        self, plan, store_and_key
    ):
        store, key = store_and_key
        store.store(key, plan)
        rules = (
            FaultRule(site=SITE_PLANSTORE_LOAD, fires=(1, 2), error=OSError),
        )
        with fault_scope(FaultPlan(rules=rules, seed=SEED)):
            assert store.load(key) is None
        assert store.contains(key)  # transient: the entry survives
        stats = store.stats()
        assert stats.io_errors == 2
        assert stats.integrity_failures == 0
        assert not store.disabled
        assert store.load(key) is not None  # fine once the fault clears

    def test_corruption_is_an_integrity_failure_that_deletes(
        self, plan, store_and_key
    ):
        store, key = store_and_key
        store.store(key, plan)
        rules = (
            FaultRule(site=SITE_PLANSTORE_LOAD, kind="corrupt", fires=(1,)),
        )
        with fault_scope(FaultPlan(rules=rules, seed=SEED)):
            assert store.load(key) is None
        assert not store.contains(key)  # damaged entries are discarded
        stats = store.stats()
        assert stats.integrity_failures == 1
        assert stats.io_errors == 0

    def test_store_fault_is_swallowed_and_counted(self, plan, store_and_key):
        store, key = store_and_key
        rules = (
            FaultRule(site=SITE_PLANSTORE_STORE, fires=(1,), error=OSError),
        )
        with fault_scope(FaultPlan(rules=rules, seed=SEED)):
            store.store(key, plan)  # best-effort: no raise
        assert not store.contains(key)
        assert store.stats().io_errors == 1
        store.store(key, plan)
        assert store.contains(key)

    def test_consecutive_io_errors_disable_the_store(self, plan, tmp_path, small_model):
        store = PlanStore(tmp_path, io_error_disable_threshold=2)
        key = store.key_for(small_model, PRIMER_FPC.name, 21, 1)
        rules = (FaultRule(site=SITE_PLANSTORE_STORE, rate=1.0, error=OSError),)
        with fault_scope(FaultPlan(rules=rules, seed=SEED)):
            store.store(key, plan)
            assert not store.disabled
            store.store(key, plan)
            assert store.disabled
        # Disabled: stores no-op and loads miss, even without faults.
        store.store(key, plan)
        assert not store.contains(key)
        assert store.load(key) is None
        stats = store.stats()
        assert stats.disabled
        assert stats.io_errors == 2

    def test_a_successful_op_resets_the_consecutive_count(
        self, plan, tmp_path, small_model
    ):
        store = PlanStore(tmp_path, io_error_disable_threshold=2)
        key = store.key_for(small_model, PRIMER_FPC.name, 21, 1)
        rules = (
            FaultRule(site=SITE_PLANSTORE_STORE, fires=(1, 3), error=OSError),
        )
        with fault_scope(FaultPlan(rules=rules, seed=SEED)):
            store.store(key, plan)  # failure 1
            store.store(key, plan)  # success: the streak resets
            store.store(key, plan)  # failure 1 again -- not 2
        assert not store.disabled
        assert store.stats().io_errors == 2


class TestWorkerShardFallback:
    def test_shard_fault_degrades_to_serial_re_execution(
        self, small_model, workload, fault_free_logits
    ):
        runtime = ServingRuntime(
            {"tiny": small_model}, max_batch_size=4, seed=21, num_workers=2
        )
        ids = [runtime.submit("tiny", tokens) for tokens in workload[:4]]
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_WORKER_SHARD, fires=(1,)),), seed=SEED
        )
        with fault_scope(plan) as injector:
            reports = runtime.run_pending_pipelined()
        assert injector.fired_count(SITE_WORKER_SHARD) == 1
        assert runtime.pipeline.serial_fallbacks == 1
        degraded = [r for r in reports if r.degraded]
        assert degraded, "the faulted shard batch must be marked degraded"
        assert all(r.worker is None for r in degraded)  # re-run serially
        for rid, tokens in zip(ids, workload[:4], strict=True):
            assert np.array_equal(
                runtime.result(rid).result, fault_free_logits[tokens.tobytes()]
            )
        stats = summarize(reports)
        assert stats.degraded_requests == len(degraded)


class TestKernelFallback:
    class _FlakyTier(kernels.KernelTier):
        """Delegates to the reference tier (so fault injection alone fails it)."""

        name = "flaky-test-tier"

        def available(self) -> bool:
            return True

        def ntt_batch(self, ctx, arr, inverse):
            return kernels._TIERS["reference"].ntt_batch(ctx, arr, inverse)

        def stacked_ntt(self, contexts, polys, inverse):
            return kernels._TIERS["reference"].stacked_ntt(contexts, polys, inverse)

    @pytest.fixture()
    def flaky_tier(self):
        kernels._TIERS[self._FlakyTier.name] = self._FlakyTier()
        try:
            yield self._FlakyTier.name
        finally:
            kernels._TIERS.pop(self._FlakyTier.name, None)
            kernels.clear_kernel_state()

    def test_dispatch_fault_pins_reference_fallback(self, flaky_tier):
        params = toy_parameters(64)
        ctx = get_ntt_context(params.ring_degree, params.ciphertext_modulus)
        n, q = ctx.ring_degree, ctx.modulus
        rows = np.arange(2 * n, dtype=np.int64).reshape(2, n) % q
        expected = kernels._TIERS["reference"].ntt_batch(ctx, rows, False)
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_KERNEL_DISPATCH, fires=(1,)),), seed=SEED
        )
        with fault_scope(plan):
            with kernels.tier_scope(flaky_tier):
                out = kernels.ntt_batch(ctx, rows, inverse=False)
                # The faulted dispatch still returned the right answer...
                assert np.array_equal(out, expected)
                # ... and pinned the reference fallback for the rest of the
                # process (fallback wins over the scope).
                fallback = kernels.kernel_fallback()
                assert fallback is not None
                assert fallback[0] == flaky_tier
                assert "ntt_batch" in fallback[1]
                assert kernels.active_tier_name() == "reference"
        # The pin outlives the fault scope, until kernel state is cleared.
        assert kernels.active_tier_name() == "reference"
        kernels.clear_kernel_state()
        assert kernels.kernel_fallback() is None

    def test_reference_tier_faults_are_not_swallowed(self):
        params = toy_parameters(64)
        ctx = get_ntt_context(params.ring_degree, params.ciphertext_modulus)
        rows = np.zeros((1, ctx.ring_degree), dtype=np.int64)
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_KERNEL_DISPATCH, fires=(1,)),), seed=SEED
        )
        with fault_scope(plan):
            with kernels.tier_scope("reference"):
                with pytest.raises(TransientFault):
                    kernels.ntt_batch(ctx, rows, inverse=False)


class TestErrorPaths:
    def test_scheduler_submit_after_close_raises(self):
        scheduler = BatchScheduler(max_batch_size=2)
        scheduler.submit(_request("r0"))
        scheduler.close()
        assert scheduler.closed
        with pytest.raises(ProtocolError, match="closed"):
            scheduler.submit(_request("r1"))
        # The shutdown flush still works: queued batches keep forming and
        # retried requests may re-enter.
        batch = scheduler.next_batch()
        assert batch is not None and len(batch) == 1
        scheduler.requeue(batch.requests[0])
        assert scheduler.pending() == 1
        scheduler.close()  # idempotent

    def test_fail_batch_marks_every_handle_exactly_once(self, small_model, workload):
        """Satellite: `_fail_batch` resolves each handle once; a second pass
        over the same requests is a no-op (futures already popped)."""
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ONLINE_EXECUTE, fires=(1,), error=ProtocolError,
                    message="injected batch failure",
                ),
            ),
            seed=SEED,
        )
        with fault_scope(plan):
            with _door(small_model, max_batch_size=4) as door:
                handles = [door.submit("tiny", tokens) for tokens in workload[:3]]
                failures = []
                for handle in handles:
                    with pytest.raises(RequestFailed, match="injected batch failure"):
                        handle.result(timeout=120)
                    failures.append(handle.exception(timeout=1))
                assert all(isinstance(f, RequestFailed) for f in failures)
                assert door.inflight_count() == 0
                # Exactly once: re-failing the same (already popped) requests
                # must not touch the resolved futures.
                requests = [_request(h.request_id) for h in handles]
                door._fail_requests(requests, ProtocolError("second pass"))
                for handle, failure in zip(handles, failures, strict=True):
                    assert handle.exception(timeout=1) is failure

    def test_close_timeout_raises_shutdown_timeout_with_outstanding_ids(
        self, small_model, workload
    ):
        door = _door(small_model)
        gate = threading.Event()
        original = door.runtime.executor.execute

        def wedged(batch, **kwargs):
            gate.wait(timeout=60)
            return original(batch, **kwargs)

        door.runtime.executor.execute = wedged
        try:
            handle = door.submit("tiny", workload[0])
            time.sleep(0.1)  # let the drain loop pick the batch up and wedge
            with pytest.raises(ShutdownTimeout) as info:
                door.close(timeout=0.3)
            assert handle.request_id in info.value.outstanding
            # The handle failed (not abandoned): result() raises immediately.
            with pytest.raises(ShutdownTimeout):
                handle.result(timeout=1)
        finally:
            gate.set()
            door.runtime.executor.execute = original
            door._thread.join(timeout=60)


class TestConservationUnderFaultsEverywhere:
    def test_all_sites_faulted_every_request_accounted(
        self, small_model, workload, fault_free_logits, tmp_path
    ):
        """The issue's acceptance check: transient faults scheduled at every
        registered site; every submitted request either completes with
        fault-free logits or fails typed -- and the counts conserve."""
        rules = tuple(
            FaultRule(site=site, rate=0.25, max_fires=2) for site in ALL_SITES
        )
        plan = FaultPlan(rules=rules, seed=SEED)
        admission = AdmissionController(max_queue_depth=64)
        completed, failed = [], []
        with fault_scope(plan) as injector:
            with _door(
                small_model,
                retry_policy=RetryPolicy(max_attempts=4, backoff_seconds=0.001),
                admission=admission,
                plan_store=PlanStore(tmp_path),
            ) as door:
                handles = [door.submit("tiny", tokens) for tokens in workload]
            # close() returned: zero hangs -- every handle must be resolved.
            for tokens, handle in zip(workload, handles, strict=True):
                assert handle.done(), f"{handle.request_id} was dropped"
                error = handle.exception(timeout=1)
                if error is None:
                    completed.append((tokens, handle.result(timeout=1)))
                else:
                    failed.append(error)
            # Conservation: submitted == completed + typed-failed.
            assert len(completed) + len(failed) == len(handles)
            for error in failed:
                assert isinstance(error, RequestFailed)
                assert error.attempts >= 1
                cause = error.__cause__
                assert isinstance(cause, Exception)
                if isinstance(cause, EngineQuarantined):
                    assert cause.retry_after_seconds >= 0.0
            for tokens, report in completed:
                assert np.array_equal(
                    report.result, fault_free_logits[tokens.tobytes()]
                )
            # Pipelined drain under the same plan: the worker-shard and
            # offline-prepare sites get exercised on a fresh runtime.
            runtime = ServingRuntime(
                {"tiny": small_model}, max_batch_size=2, seed=21, num_workers=2
            )
            ids = [runtime.submit("tiny", tokens) for tokens in workload[:4]]
            try:
                reports = runtime.run_pending_pipelined()
            except Exception as exc:  # noqa: BLE001 - typed failures allowed
                assert isinstance(exc, (TransientFault, EngineQuarantined))
            else:
                assert {r.request_id for r in reports} == set(ids)
                for rid, tokens in zip(ids, workload[:4], strict=True):
                    assert np.array_equal(
                        runtime.result(rid).result,
                        fault_free_logits[tokens.tobytes()],
                    )
        assert injector.fired_count() > 0, "the plan must have actually fired"
        assert admission.inflight_bytes == 0
