"""Primer's cryptographic protocols: HGS, FHGS/CHGS, GC non-linearities."""

from .accounting import InferenceAccount, OperationCounts, StepAccount, count_operations
from .channel import Channel, Message, NetworkModel, Phase
from .fhgs import FHGSMatmul
from .formats import EXACT_DEMO_FORMAT, PROTOCOL_FORMAT, VALUE_FORMAT, protocol_he_parameters
from .hgs import HGSLinearLayer
from .nonlinear import GCCostModel, GCNonlinearEvaluator, garbled_share_relu
from .plan import FHGSPlan, HGSPlan, OfflinePlan, plan_nbytes
from .planstore import PlanStore, PlanStoreKey, PlanStoreStats, model_fingerprint
from .primer import (
    ALL_VARIANTS,
    PRIMER_BASE,
    PRIMER_F,
    PRIMER_FP,
    PRIMER_FPC,
    PrimerVariant,
    PrivateInferenceResult,
    PrivateTransformerInference,
)

__all__ = [
    "ALL_VARIANTS",
    "Channel",
    "EXACT_DEMO_FORMAT",
    "FHGSMatmul",
    "FHGSPlan",
    "GCCostModel",
    "GCNonlinearEvaluator",
    "HGSLinearLayer",
    "HGSPlan",
    "InferenceAccount",
    "Message",
    "NetworkModel",
    "OfflinePlan",
    "OperationCounts",
    "PlanStore",
    "PlanStoreKey",
    "PlanStoreStats",
    "PROTOCOL_FORMAT",
    "PRIMER_BASE",
    "PRIMER_F",
    "PRIMER_FP",
    "PRIMER_FPC",
    "Phase",
    "PrimerVariant",
    "PrivateInferenceResult",
    "PrivateTransformerInference",
    "StepAccount",
    "VALUE_FORMAT",
    "count_operations",
    "garbled_share_relu",
    "model_fingerprint",
    "plan_nbytes",
    "protocol_he_parameters",
]
