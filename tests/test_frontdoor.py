"""Tests for the async serving front door (:class:`AsyncServingRuntime`).

The acceptance bar from the ROADMAP's PR-2 follow-up: submission is legal
*while a drain is in flight*, every handle resolves, and for any
interleaving of submits and drains the reports' logits are bit-identical to
a serial submit-all-then-``run_pending()`` pass over the same requests.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ProtocolError, RequestFailed
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PRIMER_F, PRIMER_FPC
from repro.runtime import AsyncServingRuntime, ServingRuntime

N_REQUESTS = 8


@pytest.fixture(scope="module")
def small_model() -> TransformerEncoder:
    """One-block model: front-door tests build several engines."""
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=3)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(13)
    tokens = [rng.integers(0, 40, size=6) for _ in range(N_REQUESTS)]
    variants = [PRIMER_FPC if i % 2 == 0 else PRIMER_F for i in range(N_REQUESTS)]
    return tokens, variants


@pytest.fixture(scope="module")
def serial_expected(small_model, workload):
    """Logits of a serial submit-all-then-run_pending pass, keyed two ways.

    ``by_id`` assumes the same submission order (request ids align);
    ``by_payload`` keys on ``(token bytes, variant)`` for tests whose
    submission order is nondeterministic (concurrent submitters).
    """
    tokens, variants = workload
    runtime = ServingRuntime({"tiny": small_model}, max_batch_size=4, seed=21)
    ids = [
        runtime.submit("tiny", t, variant=v) for t, v in zip(tokens, variants, strict=True)
    ]
    runtime.run_pending()
    reports = [runtime.result(rid) for rid in ids]
    by_id = {r.request_id: r for r in reports}
    by_payload = {
        (t.tobytes(), v.name): r.result
        for t, v, r in zip(tokens, variants, reports, strict=True)
    }
    return by_id, by_payload


def _door(small_model, **kwargs) -> AsyncServingRuntime:
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("seed", 21)
    return AsyncServingRuntime({"tiny": small_model}, **kwargs)


class TestFrontDoorEquivalence:
    def test_interleaved_submits_match_serial_drain(
        self, small_model, workload, serial_expected
    ):
        """Drains interleave arbitrarily with submissions; logits identical."""
        tokens, variants = workload
        by_id, _ = serial_expected
        with _door(small_model) as door:
            handles = []
            for t, v in zip(tokens, variants, strict=True):
                handles.append(door.submit("tiny", t, variant=v))
                # Let the drain loop race ahead between submissions, so
                # some requests are picked up while others are still
                # arriving -- the interleaving the serial API forbids.
                time.sleep(0.02)
            reports = [handle.result(timeout=120) for handle in handles]
        for report in reports:
            expected = by_id[report.request_id]
            assert np.array_equal(report.result, expected.result)
            assert report.prediction == expected.prediction

    def test_concurrent_submitters_all_served_identically(
        self, small_model, workload, serial_expected
    ):
        """Submissions from racing threads resolve to the serial logits."""
        tokens, variants = workload
        _, by_payload = serial_expected
        results: dict[int, list] = {}
        with _door(small_model) as door:
            def submitter(worker: int) -> None:
                pairs = []
                for index in range(worker, N_REQUESTS, 2):
                    handle = door.submit(
                        "tiny", tokens[index], variant=variants[index]
                    )
                    pairs.append((index, handle))
                results[worker] = pairs

            threads = [
                threading.Thread(target=submitter, args=(w,)) for w in (0, 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            gathered = [
                (index, handle.result(timeout=120))
                for pairs in results.values()
                for index, handle in pairs
            ]
        assert len(gathered) == N_REQUESTS
        for index, report in gathered:
            key = (tokens[index].tobytes(), variants[index].name)
            assert np.array_equal(report.result, by_payload[key])

    def test_close_flushes_everything_still_queued(
        self, small_model, workload, serial_expected
    ):
        """close() drains the backlog; no handle is abandoned."""
        tokens, variants = workload
        by_id, _ = serial_expected
        door = _door(small_model)
        handles = [
            door.submit("tiny", t, variant=v) for t, v in zip(tokens, variants, strict=True)
        ]
        door.close()
        assert door.closed
        assert door.pending_count() == 0
        assert door.inflight_count() == 0
        for handle in handles:
            assert handle.done()
            report = handle.result(timeout=1)
            assert np.array_equal(report.result, by_id[report.request_id].result)
        # Completed work stays queryable through the runtime facade.
        assert door.result(handles[0].request_id).request_id == handles[0].request_id


class TestFrontDoorLifecycle:
    def test_submit_after_close_rejected(self, small_model):
        door = _door(small_model)
        door.close()
        with pytest.raises(ProtocolError):
            door.submit("tiny", np.zeros(6, dtype=np.int64))
        # close() is idempotent.
        door.close()

    def test_linger_fills_batches(self, small_model, workload):
        """With a linger window, a quick burst lands in one full batch."""
        tokens, _ = workload
        with _door(small_model, linger_seconds=5.0) as door:
            handles = [door.submit("tiny", t) for t in tokens[:4]]
            reports = [handle.result(timeout=120) for handle in handles]
        assert {report.batch_id for report in reports} == {reports[0].batch_id}
        assert all(report.batch_size == 4 for report in reports)

    def test_executor_error_fails_only_its_batch(self, small_model, monkeypatch):
        """A failing batch resolves its handles with the error; the loop
        keeps serving later batches."""
        rng = np.random.default_rng(5)
        with _door(small_model, max_batch_size=2) as door:
            door.runtime.register_weights("proj", rng.integers(0, 7, size=(16, 4)))
            original = door.runtime.executor.execute

            def poisoned(batch, **kwargs):
                if batch.key.kind == "linear":
                    raise ProtocolError("injected linear failure")
                return original(batch, **kwargs)

            monkeypatch.setattr(door.runtime.executor, "execute", poisoned)
            bad = door.submit_linear("proj", rng.integers(0, 50, size=(8, 16)))
            good = door.submit("tiny", rng.integers(0, 40, size=6))
            with pytest.raises(RequestFailed, match="injected linear failure") as info:
                bad.result(timeout=120)
            assert info.value.request_id == bad.request_id
            assert isinstance(info.value.__cause__, ProtocolError)
            assert bad.exception(timeout=1) is not None
            report = good.result(timeout=120)
            assert report.kind == "inference"

    @pytest.mark.filterwarnings(
        # The drain thread re-raises the injected error on purpose (so a
        # debugger/telemetry sees it); pytest flags the thread death.
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_drain_loop_fails_handles_and_rejects_submits(
        self, small_model, monkeypatch
    ):
        """If the loop dies on a non-executor error (e.g. a buggy policy
        raising inside batch formation), pending handles resolve with the
        error and later submits are rejected -- nothing blocks forever."""
        rng = np.random.default_rng(9)
        door = _door(small_model)

        def broken_next_batch():
            raise RuntimeError("policy exploded")

        monkeypatch.setattr(door.runtime.scheduler, "next_batch", broken_next_batch)
        handle = door.submit("tiny", rng.integers(0, 40, size=6))
        with pytest.raises(ProtocolError, match="drain loop"):
            handle.result(timeout=120)
        # The loop is dead: submission is refused instead of registering
        # handles no one will resolve.
        door._thread.join(timeout=30)
        with pytest.raises(ProtocolError, match="not running"):
            door.submit("tiny", rng.integers(0, 40, size=6))
        door.close()  # still clean and idempotent

    def test_deadline_reports_flow_through(self, small_model):
        rng = np.random.default_rng(6)
        with _door(small_model) as door:
            handle = door.submit(
                "tiny", rng.integers(0, 40, size=6), deadline_seconds=300.0
            )
            report = handle.result(timeout=120)
        assert report.deadline is not None
        assert report.deadline_met is True

    def test_fronting_an_existing_runtime(self, small_model, workload, serial_expected):
        tokens, variants = workload
        by_id, _ = serial_expected
        runtime = ServingRuntime({"tiny": small_model}, max_batch_size=4, seed=21)
        with AsyncServingRuntime(runtime=runtime) as door:
            handle = door.submit("tiny", tokens[0], variant=variants[0])
            report = handle.result(timeout=120)
        assert np.array_equal(report.result, by_id[report.request_id].result)
        with pytest.raises(ProtocolError):
            AsyncServingRuntime({"tiny": small_model}, runtime=runtime)
