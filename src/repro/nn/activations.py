"""Activation functions and their HE-friendly polynomial approximations.

Primer keeps the exact non-linearities (SoftMax, GELU) by evaluating them
under garbled circuits, which is why it does not lose accuracy.  THE-X -- the
FHE-only baseline -- replaces them with polynomial approximations, which is
where its ~7-8 point accuracy drop comes from.  Both forms live here so the
accuracy experiments can measure the gap on the same model.

The polynomial approximations follow the published HE-friendly substitutions:

* ``softmax_poly`` -- the "2Quad" approximation (MPCFormer / THE-X style):
  replace ``exp(x)`` with ``(x + c)^2`` and normalise by the sum.
* ``gelu_poly`` -- a quadratic approximation ``0.125 x^2 + 0.25 x + 0.5``
  clipped to the linear regime outside ``[-4, 4]``.
* ``layernorm`` with polynomial inverse-sqrt iteration for the FHE path.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "softmax_poly",
    "relu",
    "gelu",
    "gelu_poly",
    "tanh_poly",
    "layer_norm",
    "inverse_sqrt_newton",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable SoftMax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def softmax_poly(logits: np.ndarray, axis: int = -1, *, offset: float = 5.0) -> np.ndarray:
    """HE-friendly quadratic SoftMax substitute ("2Quad").

    ``exp(x)`` is replaced by ``(x + offset)^2`` (clamped to be non-negative
    before squaring so that large negative logits vanish), then normalised.
    This is the class of approximation THE-X-style FHE-only inference uses
    and it visibly distorts the attention distribution, which is what drives
    the baseline's accuracy loss.
    """
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    base = np.maximum(shifted + offset, 0.0)
    squared = base * base
    denom = np.sum(squared, axis=axis, keepdims=True)
    denom = np.where(denom <= 1e-9, 1.0, denom)
    return squared / denom


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def gelu_poly(x: np.ndarray) -> np.ndarray:
    """Quadratic GELU substitute used by HE-only inference.

    ``0.25 x^2 + 0.5 x`` inside ``[-2, 2]``; outside that range the function
    continues as 0 (very negative) or the identity (very positive), matching
    the piecewise-polynomial substitutions in the THE-X family.  The
    approximation is continuous at the break points but visibly distorts the
    activation, which is the source of the FHE-only accuracy drop.
    """
    inner = 0.25 * x * x + 0.5 * x
    return np.where(x < -2.0, 0.0, np.where(x > 2.0, x, inner))


def tanh_poly(x: np.ndarray) -> np.ndarray:
    """Degree-3 polynomial tanh substitute (used by the FHE pooler head)."""
    clipped = np.clip(x, -3.0, 3.0)
    return clipped - (clipped ** 3) / 9.0


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = 1e-5,
    axis: int = -1,
) -> np.ndarray:
    """Standard LayerNorm."""
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.var(x, axis=axis, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def inverse_sqrt_newton(value: np.ndarray, *, iterations: int = 4) -> np.ndarray:
    """Polynomial (Newton) iteration for ``1/sqrt(value)``.

    FHE-only pipelines cannot take square roots, so LayerNorm's
    ``1/sqrt(var + eps)`` is computed by a few Newton steps
    ``y <- y * (1.5 - 0.5 * value * y^2)`` from a fixed initial guess; with a
    bounded number of iterations the result is a polynomial in ``value``.
    """
    value = np.asarray(value, dtype=np.float64)
    # Initial guess tuned for variances in [1e-2, 1e2], the range BERT
    # activations occupy after embedding scaling.
    y = np.full_like(value, 0.3)
    for _ in range(iterations):
        y = y * (1.5 - 0.5 * value * y * y)
    return y
