"""Polynomial ring arithmetic for the exact BFV backend.

Elements of ``R_q = Z_q[X]/(X^N + 1)`` are represented as numpy ``int64``
coefficient vectors of length ``N`` with entries in ``[0, q)``.  The ring
object owns the NTT context and the sampling routines (uniform, ternary
secret, centered binomial / discrete Gaussian error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from .ntt import NTTContext, get_ntt_context

__all__ = ["PolynomialRing"]


@dataclass
class PolynomialRing:
    """Arithmetic in ``Z_q[X]/(X^N + 1)`` with NTT-accelerated multiplication."""

    degree: int
    modulus: int
    _ntt: NTTContext = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # ``mul_scalar`` / ``mul_eval`` / ``rotate_eval`` form products of two
        # residues in plain int64 arithmetic, which is exact only while
        # ``q**2 < 2**63``.  Enforce the bound explicitly here instead of
        # relying on the (previously comment-only) invariant: a too-large
        # modulus must raise, not silently wrap coefficients.  Moduli past
        # 30 bits belong in a multi-limb RNS basis (:mod:`repro.he.rns`).
        if self.modulus.bit_length() > 30:
            raise ParameterError(
                f"PolynomialRing modulus {self.modulus} is "
                f"{self.modulus.bit_length()} bits; int64 pointwise products "
                "are only exact for moduli of at most 30 bits -- represent "
                "wider moduli as an RNS basis of <=30-bit limbs"
            )
        self._ntt = get_ntt_context(self.degree, self.modulus)

    @property
    def ntt(self) -> NTTContext:
        """The shared (cached per ``(N, q)``) NTT context of this ring."""
        return self._ntt

    # -- constructors ------------------------------------------------------
    def zero(self) -> np.ndarray:
        return np.zeros(self.degree, dtype=np.int64)

    def constant(self, value: int) -> np.ndarray:
        poly = self.zero()
        poly[0] = value % self.modulus
        return poly

    def from_coefficients(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape != (self.degree,):
            raise ParameterError(
                f"expected {self.degree} coefficients, got shape {coeffs.shape}"
            )
        return np.mod(coeffs, self.modulus)

    # -- sampling ----------------------------------------------------------
    # Each sampler takes an optional ``count``: None draws one polynomial of
    # shape (degree,), an integer draws a (count, degree) batch from the same
    # stream (batched encryption samples all its randomness in one call).
    def _shape(self, count: int | None) -> int | tuple[int, int]:
        return self.degree if count is None else (count, self.degree)

    def sample_uniform(self, rng: np.random.Generator, count: int | None = None) -> np.ndarray:
        """Uniform element(s) of the ring (used for the public `a` component)."""
        return rng.integers(0, self.modulus, size=self._shape(count), dtype=np.int64)

    def sample_ternary(self, rng: np.random.Generator, count: int | None = None) -> np.ndarray:
        """Ternary polynomial(s) with coefficients in {-1, 0, 1}."""
        return np.mod(
            rng.integers(-1, 2, size=self._shape(count), dtype=np.int64), self.modulus
        )

    def sample_error(
        self, rng: np.random.Generator, stddev: float, count: int | None = None
    ) -> np.ndarray:
        """Small error polynomial(s) (rounded Gaussian)."""
        noise = np.rint(rng.normal(0.0, stddev, size=self._shape(count))).astype(np.int64)
        return np.mod(noise, self.modulus)

    # -- arithmetic --------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a + b, self.modulus)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a - b, self.modulus)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return np.mod(-a, self.modulus)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic polynomial product via NTT."""
        return self._ntt.multiply(a, b)

    def mul_batch(self, polys: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of every row of ``polys`` with ``b`` via one NTT batch."""
        return self._ntt.multiply_batch(polys, b)

    def mul_scalar(self, a: np.ndarray, scalar: int) -> np.ndarray:
        scalar = scalar % self.modulus
        # scalar and coefficients are < 2**30 (enforced in __post_init__),
        # so products stay within int64.
        return np.mod(a * scalar, self.modulus)

    def mul_eval(self, a_eval: np.ndarray, b_eval: np.ndarray) -> np.ndarray:
        """Pointwise product of two EVAL-domain (NTT-form) polynomials.

        This is what a negacyclic product costs once both operands are
        resident in the evaluation domain: no transform at all.
        """
        return a_eval * b_eval % self.modulus

    # -- automorphisms -----------------------------------------------------
    def rotate_eval(self, a_eval: np.ndarray, steps: int) -> np.ndarray:
        """Negacyclic rotation of an EVAL-domain polynomial (transform-free).

        Multiplication by ``X**steps`` is diagonal in the evaluation domain:
        one pointwise product with the cached monomial table.  Bit-identical
        to ``forward(rotate_coefficients(inverse(a_eval), steps))``.
        """
        return a_eval * self._ntt.monomial_eval(steps) % self.modulus

    def rotate_coefficients(self, a: np.ndarray, steps: int) -> np.ndarray:
        """Negacyclic coefficient rotation ``X^i -> X^(i+steps)``.

        A rotation by ``steps`` corresponds to multiplying by ``X**steps``;
        coefficients that wrap past ``X^N`` pick up a sign flip because
        ``X^N = -1``.  The SIMD packing layer in this reproduction places one
        value per coefficient, so this negacyclic shift plays the role of
        SEAL's slot rotation for our purposes (the sign flip only affects
        slots that wrapped, which the packing layer never reads).
        """
        n = self.degree
        steps = steps % (2 * n)
        sign = 1
        if steps >= n:
            # X**N = -1, so a shift past N is a shift by (steps - N) negated.
            steps -= n
            sign = -1
        if steps == 0:
            return np.mod(sign * a, self.modulus)
        result = np.empty_like(a)
        # Coefficients that wrap past X**N pick up a sign flip.
        result[:steps] = -a[n - steps:]
        result[steps:] = a[: n - steps]
        return np.mod(sign * result, self.modulus)

    def centered(self, a: np.ndarray) -> np.ndarray:
        """Map residues to the symmetric interval ``(-q/2, q/2]``."""
        half = self.modulus // 2
        return np.where(a > half, a - self.modulus, a)

    def infinity_norm(self, a: np.ndarray) -> int:
        """Largest centered coefficient magnitude (used for noise tracking)."""
        return int(np.max(np.abs(self.centered(a))))
