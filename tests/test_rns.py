"""Double-CRT (RNS) ciphertext limbs: CRT bijection, per-limb NTT products,
parameter validation, and end-to-end multi-limb serving.

The RNS refactor has three claims worth independent evidence:

1. the CRT map is an exact ring isomorphism (``compose(decompose(x)) == x``
   and limb-wise products agree with big-int negacyclic products mod ``Q``);
2. a one-limb basis *is* the historical single-modulus scheme -- same RNG
   stream, same ciphertexts, same decryptions, checked here against a
   by-hand big-int reference built from :class:`PolynomialRing` directly;
3. a >=60-bit two-limb basis -- illegal under the old 30-bit ceiling -- runs
   end to end on the exact backend with tracker-measured transform counts
   exactly equal to the limb-scaled closed forms.

Also regression tests for the two latent-overflow guards this PR adds:
``BFVParameters`` rejecting non-NTT-friendly / over-wide moduli at
construction (pre-fix, the 61-bit Mersenne protocol modulus was accepted
and simply wrapped int64 on any exact-backend path), and
``PolynomialRing`` rejecting moduli past the 30-bit int64-product bound.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import (
    BFVParameters,
    ExactBFVBackend,
    RNSBasis,
    RNSPolynomialRing,
    bsgs_transform_count,
    find_ntt_prime,
    find_rns_primes,
    paper_parameters,
    rns_serving_parameters,
    serving_parameters,
)
from repro.he.ntt import Domain
from repro.he.polyring import PolynomialRing
from repro.runtime import ServingRuntime

#: Three 30-bit NTT-friendly limbs for a small test ring.
PRIMES_3 = find_rns_primes(30, 64, 3)

#: A 32-bit prime that IS NTT-friendly for N = 64 (q ≡ 1 mod 128) -- the
#: exact shape of modulus whose pointwise products silently wrapped int64
#: before the explicit polyring guard.
PRIME_32BIT_NTT_FRIENDLY = 4294966657
assert PRIME_32BIT_NTT_FRIENDLY.bit_length() == 32
assert (PRIME_32BIT_NTT_FRIENDLY - 1) % 128 == 0


def _reference_negacyclic(a, b, modulus: int) -> list[int]:
    """Schoolbook product in ``Z_Q[X]/(X^N + 1)`` with Python big ints."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return out


class TestCRTBijection:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_compose_decompose_roundtrip(self, data):
        basis = RNSBasis(PRIMES_3)
        values = data.draw(
            st.lists(st.integers(0, basis.product - 1), min_size=1, max_size=8)
        )
        arr = np.array(values, dtype=object)
        recomposed = basis.compose(basis.decompose(arr))
        assert [int(v) for v in recomposed] == values

    @settings(max_examples=30, deadline=None)
    @given(x=st.integers(0, math.prod(PRIMES_3) - 1))
    def test_decompose_is_residue_per_limb(self, x):
        basis = RNSBasis(PRIMES_3)
        limbs = basis.decompose(np.array([x], dtype=object))
        for row, q in zip(limbs, basis.primes, strict=True):
            assert int(row[0]) == x % q

    def test_negative_inputs_land_on_canonical_residues(self):
        basis = RNSBasis(PRIMES_3)
        arr = np.array([-1, -(basis.product // 2)], dtype=object)
        recomposed = basis.compose(basis.decompose(arr))
        assert int(recomposed[0]) == basis.product - 1
        assert int(recomposed[1]) == basis.product - basis.product // 2

    def test_single_limb_basis_is_identity(self):
        q = PRIMES_3[0]
        basis = RNSBasis((q,))
        arr = np.arange(8, dtype=np.int64)
        assert np.array_equal(basis.decompose(arr)[0], arr)
        assert [int(v) for v in basis.compose(arr[None, :])] == list(range(8))

    def test_empty_and_duplicate_bases_rejected(self):
        with pytest.raises(ParameterError):
            RNSBasis(())
        with pytest.raises(ParameterError, match="pairwise distinct"):
            RNSBasis((PRIMES_3[0], PRIMES_3[0]))

    def test_compose_rejects_wrong_limb_count(self):
        basis = RNSBasis(PRIMES_3)
        with pytest.raises(ParameterError, match="limbs"):
            basis.compose(np.zeros((2, 4), dtype=np.int64))


class TestPerLimbNTTProducts:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_limbwise_mul_matches_bigint_negacyclic_product(self, seed):
        """NTT products taken limb by limb ARE the product mod ``Q``."""
        ring = RNSPolynomialRing(degree=16, basis=RNSBasis(PRIMES_3))
        big_q = ring.modulus
        rng = np.random.default_rng(seed)
        a = np.array([int(v) for v in rng.integers(0, 1 << 62, size=16)], dtype=object)
        b = np.array([int(v) for v in rng.integers(0, 1 << 62, size=16)], dtype=object)
        a, b = a % big_q, b % big_q
        product = ring.basis.compose(
            ring.mul(ring.basis.decompose(a), ring.basis.decompose(b))
        )
        assert [int(v) for v in product] == _reference_negacyclic(a, b, big_q)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_forward_inverse_roundtrip_all_limbs(self, seed):
        ring = RNSPolynomialRing(degree=32, basis=RNSBasis(PRIMES_3))
        rng = np.random.default_rng(seed)
        poly = ring.sample_uniform(rng)
        assert np.array_equal(ring.inverse(ring.forward(poly)), poly)

    def test_eval_product_equals_coeff_product(self):
        ring = RNSPolynomialRing(degree=32, basis=RNSBasis(PRIMES_3))
        rng = np.random.default_rng(5)
        a, b = ring.sample_uniform(rng), ring.sample_uniform(rng)
        via_eval = ring.inverse(ring.mul_eval(ring.forward(a), ring.forward(b)))
        assert np.array_equal(via_eval, ring.mul(a, b))


class TestParameterValidation:
    """Satellite: moduli are validated at construction, not deep in NTT setup."""

    def test_pre_rns_mersenne_modulus_rejected(self):
        """Regression: the old protocol parameters used a 61-bit Mersenne
        modulus that no exact-backend path can represent -- pre-fix it was
        accepted at construction and overflowed int64 downstream."""
        with pytest.raises(ParameterError, match="lazy-reduction NTT bound"):
            BFVParameters(
                ring_degree=8192,
                ciphertext_modulus=(1 << 61) - 1,
                plaintext_modulus=1 << 31,
                error_stddev=3.2,
                security_bits=128,
            )

    def test_non_ntt_friendly_limb_rejected(self):
        # 30-bit prime friendly for N=64 but not for N=256 (q-1 % 512 != 0).
        q = find_ntt_prime(30, 64)
        if (q - 1) % 512 == 0:  # extremely unlikely; find one that is not
            q = next(
                p for p in find_rns_primes(30, 64, 8) if (p - 1) % 512 != 0
            )
        with pytest.raises(ParameterError, match="not NTT-friendly"):
            BFVParameters(
                ring_degree=256,
                ciphertext_modulus=q,
                plaintext_modulus=1 << 8,
                error_stddev=1.0,
                security_bits=0,
            )

    def test_composite_limb_rejected(self):
        composite = 2 * 64 * 15 + 1  # 1921 = 17 * 113: NTT-friendly shape, not prime
        assert (composite - 1) % (2 * 64) == 0 and composite == 17 * 113
        with pytest.raises(ParameterError, match="not prime"):
            BFVParameters(
                ring_degree=64,
                ciphertext_modulus=composite,
                plaintext_modulus=2,
                error_stddev=1.0,
                security_bits=0,
            )

    def test_limb_product_must_match_composite_modulus(self):
        primes = find_rns_primes(30, 64, 2)
        with pytest.raises(ParameterError, match="product of the RNS limbs"):
            BFVParameters(
                ring_degree=64,
                ciphertext_modulus=primes[0],  # not the product
                ciphertext_moduli=primes,
                plaintext_modulus=1 << 8,
                error_stddev=1.0,
                security_bits=0,
            )

    def test_plaintext_modulus_compares_against_product_not_limbs(self):
        """t = 2**31 exceeds every 30-bit limb but fits under Q: legal."""
        primes = find_rns_primes(30, 64, 2)
        params = BFVParameters(
            ring_degree=64,
            ciphertext_modulus=math.prod(primes),
            ciphertext_moduli=primes,
            plaintext_modulus=1 << 31,
            error_stddev=1.0,
            security_bits=0,
        )
        assert params.limb_count == 2

    def test_rns_serving_parameters_reach_sixty_bits(self):
        params = rns_serving_parameters(256, 2)
        assert params.limb_count == 2
        assert params.ciphertext_modulus.bit_length() >= 60
        assert math.prod(params.ciphertext_moduli) == params.ciphertext_modulus


class TestPolyRingModulusGuard:
    """Satellite: the int64-product invariant is an explicit guard."""

    def test_32_bit_modulus_rejected(self):
        """Regression: a 32-bit NTT-friendly prime used to construct fine and
        silently wrap ``q**2 > 2**63`` in every pointwise product."""
        with pytest.raises(ParameterError, match="at most 30 bits"):
            PolynomialRing(degree=64, modulus=PRIME_32BIT_NTT_FRIENDLY)

    def test_30_bit_modulus_still_accepted(self):
        ring = PolynomialRing(degree=64, modulus=find_ntt_prime(30, 64))
        assert ring.modulus.bit_length() == 30


def _bigint_reference_decrypt(context, ct) -> np.ndarray:
    """Decrypt by hand with exact big-int arithmetic, no RNS shortcuts.

    Composes ``c0``, ``c1`` and the secret key to integers mod ``Q``, forms
    ``c0 + c1 * s`` as a signed sum of negacyclic shifts of ``c1`` (the
    secret is ternary), and applies the exact BFV rounding
    ``round(t * centered / Q) mod t``.  ``Q`` is odd, so round-half-up
    equals round-to-nearest (no ties exist).
    """
    ring = context.ring
    big_q = ring.modulus
    n = ring.degree
    t = context.params.plaintext_modulus
    ct = context.convert_batch([ct], Domain.COEFF)[0]
    c0 = ring.basis.compose(ct.c0)
    c1 = ring.basis.compose(ct.c1)
    s = ring.basis.compose(context.secret_key.poly)
    acc = np.zeros(n, dtype=object)
    for j in range(n):
        sj = int(s[j])
        if sj == 0:
            continue
        assert sj in (1, big_q - 1), "secret key must be ternary"
        # c1 * s_j * X^j: coefficients wrapping past X^N pick up a sign flip.
        shifted = np.concatenate([-c1[n - j:], c1[: n - j]]) if j else c1
        acc = acc + (shifted if sj == 1 else -shifted)
    raw = (c0 + acc) % big_q
    decoded = []
    for v in raw:
        v = int(v)
        centered = v - big_q if v > big_q // 2 else v
        decoded.append(((2 * centered * t + big_q) // (2 * big_q)) % t)
    return np.array(decoded, dtype=np.int64)


class TestSingleLimbMatchesSingleModulusPath:
    def test_one_limb_decrypt_bit_identical_to_bigint_reference_at_paper_dims(self):
        """Paper ring dimension (N = 4096, one limb): the RNS path and an
        independent big-int reference decrypt agree bit for bit after
        homomorphic ops.  Uses a 30-bit serving-style modulus because the
        exact backend's analytic noise bound rejects ``paper_parameters``'
        29-bit modulus even for fresh ciphertexts."""
        params = BFVParameters(
            ring_degree=paper_parameters().ring_degree,
            ciphertext_modulus=find_ntt_prime(30, 4096),
            plaintext_modulus=1 << 8,
            error_stddev=1.0,
            security_bits=0,
            deployed_modulus_bits=60,
        )
        assert params.limb_count == 1
        backend = ExactBFVBackend(params, seed=11)
        context = backend.context
        rng = np.random.default_rng(11)
        values = rng.integers(0, params.plaintext_modulus, size=64)
        ct = context.encrypt(values, domain=Domain.EVAL)
        ct = context.add_plain(ct, rng.integers(0, 100, size=64))
        ct = context.multiply_scalar(ct, 3)
        ct = context.rotate(ct, 2)
        got = context.decrypt(ct, count=params.ring_degree)
        reference = _bigint_reference_decrypt(context, ct)
        assert np.array_equal(got, reference)

    def test_one_limb_rns_ring_matches_plain_polynomial_ring(self):
        """The one-limb RNS ring consumes the RNG stream exactly like the
        historical single-modulus ``PolynomialRing`` and computes the same
        products -- the refactor cannot have changed any 1-limb ciphertext."""
        q = find_ntt_prime(29, 64)
        plain_ring = PolynomialRing(degree=64, modulus=q)
        rns_ring = RNSPolynomialRing(degree=64, basis=RNSBasis((q,)))
        for sampler in ("sample_uniform", "sample_ternary"):
            a = getattr(plain_ring, sampler)(np.random.default_rng(3))
            b = getattr(rns_ring, sampler)(np.random.default_rng(3))
            assert np.array_equal(b, a[None, :]), sampler
        rng_a, rng_b = np.random.default_rng(4), np.random.default_rng(4)
        x, y = plain_ring.sample_uniform(rng_a), plain_ring.sample_uniform(rng_a)
        xr, yr = rns_ring.sample_uniform(rng_b), rns_ring.sample_uniform(rng_b)
        assert np.array_equal(rns_ring.mul(xr, yr)[0], plain_ring.mul(x, y))


class TestTwoLimbEndToEnd:
    """Acceptance: a >=60-bit two-limb set encrypts, serves and decrypts."""

    def test_roundtrip_and_homomorphic_ops_against_bigint_reference(self):
        params = rns_serving_parameters(256, 2)
        backend = ExactBFVBackend(params, seed=7)
        context = backend.context
        t = params.plaintext_modulus
        rng = np.random.default_rng(7)
        values = rng.integers(0, t, size=32)
        plus = rng.integers(0, t, size=32)
        ct = context.encrypt(values, domain=Domain.EVAL)
        ct = context.add_plain(ct, plus)
        ct = context.multiply_scalar(ct, 5)
        ct = context.rotate(ct, 3)
        # Rotation is a multiply by X**3: slots shift up by 3 and the first
        # 3 pull (negated) zeros down from the unused top of the ring.
        base = (values + plus) * 5 % t
        expected = np.concatenate([np.zeros(3, dtype=np.int64), base[:29]])
        got = context.decrypt(ct, count=32)
        assert np.array_equal(got, expected)
        # The decrypt itself is bit-identical to the big-int reference.
        assert np.array_equal(
            context.decrypt(ct, count=params.ring_degree),
            _bigint_reference_decrypt(context, ct),
        )

    def test_coeff_and_eval_residency_decrypt_identically(self):
        params = rns_serving_parameters(256, 2)
        for seed in (1, 2):
            eval_ct = ExactBFVBackend(params, seed=seed, eval_residency=True)
            coeff_ct = ExactBFVBackend(params, seed=seed, eval_residency=False)
            values = np.arange(24) % params.plaintext_modulus
            a = eval_ct.encrypt(values)
            b = coeff_ct.encrypt(values)
            assert np.array_equal(
                eval_ct.decrypt(a)[:24], coeff_ct.decrypt(b)[:24]
            )

    def test_serving_linear_path_transform_counts_are_limb_scaled(self):
        """End-to-end serving on the exact backend with two limbs: results
        exact, and tracker transforms equal the limb-scaled closed form
        ``(3 * input_cts + output_cts) * L`` -- the accounting model's
        ``he_ntt_transforms`` formula."""
        rng = np.random.default_rng(13)
        weights = rng.integers(0, 7, size=(16, 4))
        matrices = [rng.integers(0, 100, size=(8, 16)) for _ in range(4)]

        def run(params, seed=5):
            backend = ExactBFVBackend(params, seed=seed)
            runtime = ServingRuntime(backend_factory=lambda: backend, max_batch_size=4)
            runtime.register_weights("proj", weights)
            ids = [runtime.submit_linear("proj", m) for m in matrices]
            runtime.run_pending()
            t = backend.plaintext_modulus
            for m, rid in zip(matrices, ids, strict=True):
                assert np.array_equal(
                    runtime.result(rid).result, (m @ weights) % t
                )
            return (
                backend.tracker.count("ntt_forward"),
                backend.tracker.count("ntt_inverse"),
                backend.tracker.count("he_rotate"),
            )

        one_fwd, one_inv, one_rot = run(serving_parameters(256))
        two_fwd, two_inv, two_rot = run(rns_serving_parameters(256, 2))
        # Transform counts scale exactly by the limb count ...
        assert (two_fwd, two_inv) == (2 * one_fwd, 2 * one_inv)
        # ... and match the closed form: 16 input ciphertexts encrypted
        # EVAL-native (3 forwards each per limb), 4 output ciphertexts
        # inverse-transformed once each per limb at the decrypt boundary.
        input_cts, output_cts = 16, 4
        assert two_fwd == 3 * input_cts * 2
        assert two_inv == output_cts * 2
        # Rotations are whole-ciphertext ops: limb-independent.
        assert two_rot == one_rot

    def test_bsgs_closed_form_accepts_limb_factor(self):
        """``bsgs_transform_count`` scales by ``limbs`` exactly."""
        base = bsgs_transform_count(16, 16, 4, 256)
        assert bsgs_transform_count(16, 16, 4, 256, limbs=2) == 2 * base
        assert bsgs_transform_count(16, 16, 4, 256, limbs=6) == 6 * base
