"""Ciphertext packing layouts: feature-based vs tokens-first (paper Fig. 6).

The embedding layer of BERT multiplies an ``n x d_oh`` one-hot matrix
(``d_oh = 30522``) by a ``d_oh x d_emb`` weight matrix.  How the input matrix
is laid out across ciphertext slots determines how many homomorphic rotations
the encrypted matrix product needs:

* **feature-based packing** (prior work): the features of one token are
  packed contiguously; every occupied slot offset of every ciphertext needs
  its own rotation, giving ``c * M`` rotations for ``c`` ciphertexts of ``M``
  slots.
* **tokens-first packing** (the paper's proposal): the same feature of all
  ``n`` tokens is packed contiguously; only one rotation per *feature block*
  of ``n`` slots is needed, giving roughly ``c * M / n`` rotations.

This module implements both layouts (packing, unpacking, and closed-form
ciphertext/rotation counts).  :mod:`repro.he.matmul` contains the actual
rotation-based encrypted matrix product that realises these counts on an
:class:`~repro.he.backend.HEBackend`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError

__all__ = [
    "PackingLayout",
    "PackedInput",
    "pack_matrix",
    "unpack_matrix",
    "ciphertext_count",
    "rotation_count",
    "bsgs_rotation_count",
    "bsgs_transform_count",
    "bsgs_coeff_transform_count",
    "rotation_savings",
]


class PackingLayout(enum.Enum):
    """Which dimension of the token-by-feature matrix is packed first."""

    FEATURE_BASED = "feature_based"
    TOKENS_FIRST = "tokens_first"
    #: tokens-first slot layout driven through the baby-step/giant-step
    #: diagonal kernel (:mod:`repro.he.bsgs`): same packing as
    #: ``TOKENS_FIRST``, rotation count ``O(sqrt(d))`` instead of ``O(d)``
    BSGS_DIAGONAL = "bsgs_diagonal"


@dataclass
class PackedInput:
    """A token-by-feature matrix laid out across ciphertext slot vectors.

    Attributes
    ----------
    layout:
        The packing layout that produced this object.
    plaintexts:
        One residue vector per (future) ciphertext, each of length
        ``slot_count``.
    slot_map:
        ``slot_map[(token, feature)] = (ciphertext_index, slot_index)``.
    shape:
        Original ``(n_tokens, n_features)`` shape.
    slot_count:
        Number of slots per ciphertext.
    """

    layout: PackingLayout
    plaintexts: list[np.ndarray]
    slot_map: dict[tuple[int, int], tuple[int, int]]
    shape: tuple[int, int]
    slot_count: int
    #: tokens-first only: number of feature blocks (of n slots each) per ciphertext
    features_per_ciphertext: int = field(default=1)

    @property
    def num_ciphertexts(self) -> int:
        return len(self.plaintexts)


def _validate(matrix: np.ndarray, slot_count: int) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise ParameterError("packing expects a 2-D token-by-feature matrix")
    if slot_count < 1:
        raise ParameterError("slot_count must be positive")
    return matrix


def pack_matrix(
    matrix: np.ndarray, slot_count: int, layout: PackingLayout
) -> PackedInput:
    """Pack a token-by-feature matrix into ciphertext slot vectors."""
    matrix = _validate(matrix, slot_count)
    n_tokens, n_features = matrix.shape
    slot_map: dict[tuple[int, int], tuple[int, int]] = {}
    plaintexts: list[np.ndarray] = []

    if layout is PackingLayout.FEATURE_BASED:
        # Walk token-major, feature-minor; fill ciphertexts densely.
        current = np.zeros(slot_count, dtype=np.int64)
        slot = 0
        for token in range(n_tokens):
            for feature in range(n_features):
                current[slot] = matrix[token, feature]
                slot_map[(token, feature)] = (len(plaintexts), slot)
                slot += 1
                if slot == slot_count:
                    plaintexts.append(current)
                    current = np.zeros(slot_count, dtype=np.int64)
                    slot = 0
        if slot > 0:
            plaintexts.append(current)
        return PackedInput(
            layout=layout,
            plaintexts=plaintexts,
            slot_map=slot_map,
            shape=(n_tokens, n_features),
            slot_count=slot_count,
            features_per_ciphertext=max(1, slot_count // max(1, n_features)),
        )

    if layout in (PackingLayout.TOKENS_FIRST, PackingLayout.BSGS_DIAGONAL):
        if n_tokens > slot_count:
            raise ParameterError(
                f"tokens-first packing needs n_tokens <= slot_count "
                f"({n_tokens} > {slot_count})"
            )
        features_per_ct = max(1, slot_count // n_tokens)
        current = np.zeros(slot_count, dtype=np.int64)
        block = 0
        for feature in range(n_features):
            base = block * n_tokens
            for token in range(n_tokens):
                current[base + token] = matrix[token, feature]
                slot_map[(token, feature)] = (len(plaintexts), base + token)
            block += 1
            if block == features_per_ct:
                plaintexts.append(current)
                current = np.zeros(slot_count, dtype=np.int64)
                block = 0
        if block > 0:
            plaintexts.append(current)
        return PackedInput(
            layout=layout,
            plaintexts=plaintexts,
            slot_map=slot_map,
            shape=(n_tokens, n_features),
            slot_count=slot_count,
            features_per_ciphertext=features_per_ct,
        )

    raise ParameterError(f"unknown packing layout {layout!r}")


def unpack_matrix(packed: PackedInput) -> np.ndarray:
    """Invert :func:`pack_matrix`, reconstructing the original matrix."""
    n_tokens, n_features = packed.shape
    matrix = np.zeros((n_tokens, n_features), dtype=np.int64)
    for (token, feature), (ct_index, slot) in packed.slot_map.items():
        matrix[token, feature] = packed.plaintexts[ct_index][slot]
    return matrix


def ciphertext_count(
    n_tokens: int, n_features: int, slot_count: int, layout: PackingLayout
) -> int:
    """Closed-form number of ciphertexts needed to pack the input matrix."""
    total = n_tokens * n_features
    if layout is PackingLayout.FEATURE_BASED:
        return math.ceil(total / slot_count)
    if layout in (PackingLayout.TOKENS_FIRST, PackingLayout.BSGS_DIAGONAL):
        features_per_ct = max(1, slot_count // n_tokens)
        return math.ceil(n_features / features_per_ct)
    raise ParameterError(f"unknown packing layout {layout!r}")


def bsgs_rotation_count(
    n_tokens: int, n_features: int, n_outputs: int, slot_count: int
) -> int:
    """Closed-form rotation count of the BSGS diagonal kernel for ``X @ W``.

    The kernel (:func:`repro.he.bsgs.bsgs_matmul`) works on ``D`` feature
    blocks of ``n_tokens`` slots and splits the ``D`` generalized diagonals
    of the zero-padded weight matrix into ``bs = ceil(sqrt(D))`` baby steps
    times ``gs = ceil(D / bs)`` giant steps.  Each of the ``c`` input
    ciphertexts pays ``bs - 1`` hoisted baby-step rotations (reused across
    every output column group and every request packed into the shared
    slots), and each of the ``g`` output column groups pays ``gs - 1``
    giant-step rotations on accumulators that are summed across input
    ciphertexts before rotating:  ``c*(bs-1) + g*(gs-1)`` total.
    """
    from .bsgs import bsgs_geometry  # local import: keep packing dependency-light

    return bsgs_geometry(n_tokens, n_features, n_outputs, slot_count).rotation_count


def bsgs_transform_count(
    n_tokens: int, n_features: int, n_outputs: int, slot_count: int,
    *, limbs: int = 1,
) -> int:
    """Closed-form NTT transform count of the *evaluation-resident* BSGS path.

    With ciphertexts encrypted straight into EVAL form and the diagonal
    masks pre-transformed at plan time (:func:`repro.he.bsgs.prepare_bsgs_plan`),
    the whole multiply-accumulate -- hoisted baby rotations, diagonal
    products, giant-step rotations, accumulating additions -- is pointwise
    and transform-free.  What remains is the encrypt/decrypt boundary:

    * three forward transforms per input ciphertext (EVAL-native
      encryption transforms the masking polynomial and both noise/message
      polynomials), and
    * **one** inverse per output column group -- the single transform the
      residency design allows per output ciphertext, amortised over every
      diagonal and every request stacked into the batch.

    ``(c * 3 + g) * L`` total, assuming every output group's weight slice is
    non-zero (an all-zero group skips its decrypt).  ``limbs`` is the RNS
    limb count ``L`` of the ciphertext basis -- a double-CRT scheme runs one
    NTT per limb polynomial, so every term scales linearly.  The
    tracker-measured count must equal this exactly -- the transform-count
    analog of :func:`bsgs_rotation_count`, asserted in tests and gated in
    CI.
    """
    from .bsgs import bsgs_geometry  # local import: keep packing dependency-light

    geometry = bsgs_geometry(n_tokens, n_features, n_outputs, slot_count)
    return (3 * geometry.num_ciphertexts + geometry.out_groups) * limbs


def bsgs_coeff_transform_count(
    n_tokens: int, n_features: int, n_outputs: int, slot_count: int,
    *, nonzero_masks: int | None = None, limbs: int = 1,
) -> int:
    """Closed-form transform count of the coefficient-resident BSGS path.

    The historical pipeline stores ciphertexts in coefficient form, so
    every diagonal product pays the full round trip -- two forwards for the
    ciphertext pair, one for the plaintext mask, two inverses back (five
    per product) -- plus three transforms per input ciphertext at encrypt
    and two per output group at decrypt (forward ``c1``, inverse the
    combination).  ``nonzero_masks`` is the number of diagonal products
    actually executed; it defaults to the dense count ``g * c * D`` (every
    generalized diagonal of every input ciphertext and output group).
    ``limbs`` is the RNS limb count ``L``; every transform term is per limb
    polynomial, so the whole expression scales linearly.
    """
    from .bsgs import bsgs_geometry  # local import: keep packing dependency-light

    geometry = bsgs_geometry(n_tokens, n_features, n_outputs, slot_count)
    if nonzero_masks is None:
        nonzero_masks = (
            geometry.out_groups * geometry.num_ciphertexts * geometry.blocks
        )
    return (
        3 * geometry.num_ciphertexts
        + 5 * nonzero_masks
        + 2 * geometry.out_groups
    ) * limbs


def rotation_count(
    n_tokens: int,
    n_features: int,
    slot_count: int,
    layout: PackingLayout,
    *,
    n_outputs: int | None = None,
) -> int:
    """Closed-form number of homomorphic rotations for ``X @ W``.

    Matches the loop structure of the paper's Figure 6 pseudo-code: every
    distinct occupied slot offset of a feature-based ciphertext requires one
    rotation (``~ c * M`` when ``d_oh >= M``), whereas a tokens-first
    ciphertext only needs one rotation per feature block of ``n`` slots
    (``~ c * M / n``), the zero-offset block being free.  The BSGS diagonal
    kernel drops this further to ``O(sqrt(d))`` per ciphertext (see
    :func:`bsgs_rotation_count`); it is the only layout whose count depends
    on the output width, so ``n_outputs`` defaults to a square product.
    """
    c = ciphertext_count(n_tokens, n_features, slot_count, layout)
    if layout is PackingLayout.FEATURE_BASED:
        # Every occupied slot offset of every ciphertext needs one rotation;
        # with full ciphertexts this is the paper's c * M.
        per_ct = min(slot_count, n_tokens * n_features)
        return c * per_ct
    if layout is PackingLayout.TOKENS_FIRST:
        features_per_ct = max(1, slot_count // n_tokens)
        blocks = min(features_per_ct, n_features)
        # The block already aligned at offset zero needs no rotation.
        return c * max(0, blocks - 1)
    if layout is PackingLayout.BSGS_DIAGONAL:
        return bsgs_rotation_count(
            n_tokens, n_features,
            n_outputs if n_outputs is not None else n_features, slot_count,
        )
    raise ParameterError(f"unknown packing layout {layout!r}")


def rotation_savings(
    n_tokens: int, n_features: int, slot_count: int, *, n_outputs: int | None = None
) -> dict[str, int | float]:
    """Rotation counts of every layout and the savings over feature-based.

    The paper states the tokens-first saving as ``c * (M - M/n)`` rotations;
    this helper reports the closed-form counts of all three layouts plus the
    reduction ratios, which the packing benchmark prints alongside the
    measured counts from the tracker.
    """
    feature = rotation_count(
        n_tokens, n_features, slot_count, PackingLayout.FEATURE_BASED
    )
    tokens = rotation_count(
        n_tokens, n_features, slot_count, PackingLayout.TOKENS_FIRST
    )
    bsgs = rotation_count(
        n_tokens, n_features, slot_count, PackingLayout.BSGS_DIAGONAL,
        n_outputs=n_outputs,
    )
    return {
        "feature_based_rotations": feature,
        "tokens_first_rotations": tokens,
        "bsgs_rotations": bsgs,
        "saved_rotations": feature - tokens,
        "reduction_factor": float(feature) / max(1, tokens),
        "bsgs_reduction_factor": float(tokens) / max(1, bsgs),
    }
