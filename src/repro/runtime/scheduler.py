"""Request queue, batch formation and pluggable scheduling policies.

The serving layer accepts many independent private-inference requests and
groups *compatible* ones -- same model, same protocol variant, same request
kind -- into batches so that they can share the expensive cryptographic
state: one engine (keys, offline HGS/FHGS pre-processing, cached NTT
contexts) per compatibility key, and, for linear requests, shared ciphertext
slot space via the tokens-first layout.

*Which* compatible batch forms next is decided by a
:class:`SchedulingPolicy`:

``fifo`` (:class:`FifoPolicy`, the default)
    The head of the queue defines the next batch's key and the batch fills
    with the oldest compatible requests -- exactly the original hardcoded
    behaviour.
``edf`` (:class:`DeadlinePolicy`)
    Earliest-deadline-first across keys: the most urgent queued request
    picks the key.  Requests without a deadline sort last.
``size`` (:class:`SizeAwarePolicy`)
    Slot-packing for linear batches: the head's key is kept, but the batch
    is filled first-fit with the oldest same-key requests whose rows still
    fit one ciphertext's slot capacity, so a chunk seldom splits.

Every policy is bound by one hard fairness invariant, *enforced by the
scheduler itself*: the batch must consist of requests of a single key, it
must contain the oldest queued request of that key (the per-key head is
never starved), and requests within the batch run in arrival order.  Under
FIFO and EDF per-key service order is additionally strictly
first-come-first-served; the size-aware policy may serve a small, younger
request ahead of a same-key request that did not fit the remaining slot
capacity, but never ahead of the per-key head.
"""

from __future__ import annotations

import abc
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from ..errors import ProtocolError

__all__ = [
    "BatchKey",
    "InferenceRequest",
    "Batch",
    "SchedulingPolicy",
    "FifoPolicy",
    "DeadlinePolicy",
    "SizeAwarePolicy",
    "BatchScheduler",
]


@dataclass(frozen=True)
class BatchKey:
    """Compatibility key: requests sharing a key may share a batch."""

    kind: str      #: ``"inference"`` (full Primer run) or ``"linear"`` (X @ W)
    model: str     #: registered model or weight-matrix name
    variant: str   #: Primer variant name ("" for linear requests)


@dataclass
class InferenceRequest:
    """One queued serving request.

    ``payload`` is the token-id vector for ``kind == "inference"`` and the
    token-by-feature input matrix for ``kind == "linear"``.  ``deadline`` is
    an absolute completion target on the ``submitted_at`` clock (or any
    consistent virtual clock in tests); only :class:`DeadlinePolicy` reads
    it.
    """

    request_id: str
    key: BatchKey
    payload: Any
    submitted_at: float = field(default_factory=time.perf_counter)
    sequence: int = 0
    deadline: float | None = None


@dataclass
class Batch:
    """A group of compatible requests scheduled to run together."""

    batch_id: int
    key: BatchKey
    requests: list[InferenceRequest]

    def __len__(self) -> int:
        return len(self.requests)


class SchedulingPolicy(abc.ABC):
    """Decides which compatible requests form the next batch.

    ``select`` receives the queue in arrival order and must return a
    non-empty subset of it sharing a single :class:`BatchKey` that includes
    the oldest queued request of that key.  The scheduler validates the
    invariant and orders the batch by arrival, so a policy cannot break
    per-key FIFO fairness even by returning requests out of order.
    """

    #: short name used in stats/demo output
    name: str = "policy"

    @abc.abstractmethod
    def select(
        self, queue: Sequence[InferenceRequest], max_batch_size: int
    ) -> list[InferenceRequest]:
        """Pick the requests of the next batch from the queued requests."""

    @staticmethod
    def same_key_oldest_first(
        queue: Sequence[InferenceRequest], key: BatchKey
    ) -> list[InferenceRequest]:
        """All queued requests of ``key``, oldest first."""
        return [request for request in queue if request.key == key]


class FifoPolicy(SchedulingPolicy):
    """The original behaviour: head of the queue defines the batch."""

    name = "fifo"

    def select(
        self, queue: Sequence[InferenceRequest], max_batch_size: int
    ) -> list[InferenceRequest]:
        key = queue[0].key
        return self.same_key_oldest_first(queue, key)[:max_batch_size]


class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first across keys.

    The most urgent queued request (smallest ``deadline``; ties and
    deadline-free requests fall back to arrival order) chooses the batch
    key; the batch then fills with the oldest requests of that key, so the
    urgent request is served as soon as per-key FIFO fairness allows.
    """

    name = "edf"

    def select(
        self, queue: Sequence[InferenceRequest], max_batch_size: int
    ) -> list[InferenceRequest]:
        urgent = min(
            queue,
            key=lambda r: (
                r.deadline if r.deadline is not None else float("inf"),
                r.sequence,
            ),
        )
        return self.same_key_oldest_first(queue, urgent.key)[:max_batch_size]


class SizeAwarePolicy(SchedulingPolicy):
    """Slot-packing batch fill for linear requests.

    The head's key is kept (so the global head is served next, like FIFO),
    but a *linear* batch is filled first-fit in arrival order with requests
    whose row counts still fit in ``slot_count`` ciphertext slots: a request
    too large for the remaining capacity is skipped (it keeps its queue
    position and leads a later batch) in favour of older-first smaller ones,
    so a shared-slot chunk seldom splits.  Inference batches fall back to
    FIFO fill, as does everything when ``slot_count`` is None.
    """

    name = "size"

    def __init__(self, slot_count: int | None = None) -> None:
        if slot_count is not None and slot_count < 1:
            raise ProtocolError("slot_count must be positive")
        self.slot_count = slot_count

    def select(
        self, queue: Sequence[InferenceRequest], max_batch_size: int
    ) -> list[InferenceRequest]:
        key = queue[0].key
        candidates = self.same_key_oldest_first(queue, key)
        if key.kind != "linear" or self.slot_count is None:
            return candidates[:max_batch_size]
        taken: list[InferenceRequest] = [candidates[0]]  # per-key head, always
        remaining = self.slot_count - int(candidates[0].payload.shape[0])
        for request in candidates[1:]:
            if len(taken) >= max_batch_size:
                break
            rows = int(request.payload.shape[0])
            if rows <= remaining:
                taken.append(request)
                remaining -= rows
        return taken


class BatchScheduler:
    """Queue that groups compatible requests into bounded batches.

    The batching *policy* is pluggable (see :class:`SchedulingPolicy`);
    the fairness invariant -- single-key batches, per-key FIFO order, the
    per-key head always included -- is validated here so every policy
    honours it.

    The queue is guarded by one internal lock shared by :meth:`submit` and
    :meth:`next_batch`, so submission is safe *while a drain is in flight*.
    (Historically ``next_batch`` rebound ``self._queue`` to a filtered
    deque; a concurrent ``submit`` could append to the abandoned deque and
    the request vanished from both the drain and every later
    ``pending_count`` -- the race the async front door's continuous drain
    loop would hit constantly.)
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        *,
        policy: SchedulingPolicy | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ProtocolError("max_batch_size must be at least 1")
        self.max_batch_size = max_batch_size
        self.policy = policy if policy is not None else FifoPolicy()
        self._queue: deque[InferenceRequest] = deque()  # guarded_by: _lock
        self._sequence = itertools.count()
        self._batch_ids = itertools.count()
        self._closed = False  # guarded_by: _lock
        #: guards the queue; reentrant so ``drain`` can call ``next_batch``
        self._lock = threading.RLock()

    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Enqueue a request, stamping its arrival order.

        Raises :class:`~repro.errors.ProtocolError` after :meth:`close` --
        a closed scheduler still *forms* batches (the shutdown flush) but
        silently enqueueing new work nobody will drain would drop it.
        """
        with self._lock:
            if self._closed:
                raise ProtocolError("the scheduler is closed to new submissions")
            request.sequence = next(self._sequence)
            self._queue.append(request)
        return request

    def requeue(self, request: InferenceRequest) -> InferenceRequest:
        """Put an already-admitted request back at the head of the queue.

        The retry path: the request keeps its original id, sequence stamp
        and ``submitted_at`` clock (attribution and the per-request timeout
        budget span attempts), and re-enters at the *front* so its original
        arrival order is preserved -- with its old sequence it is again the
        oldest of its key, which the fairness invariant then serves first.
        Deliberately exempt from the closed check: a retried request was
        admitted before ``close()`` and is part of the shutdown flush.
        """
        with self._lock:
            self._queue.appendleft(request)
        return request

    def set_batch_id_base(self, base: int) -> None:
        """Start batch-id numbering at ``base`` (before any batch is formed).

        The fleet router hands each replica a disjoint id range so that the
        batch ids inside the :class:`~repro.runtime.executor.RequestReport`\\ s
        it aggregates stay globally unique -- ``summarize()`` counts batches
        by distinct id.  Renumbering *after* a batch exists would let ids
        collide within one replica, so that is rejected.
        """
        if base < 0:
            raise ProtocolError("batch id base must be non-negative")
        with self._lock:
            first_unused = next(self._batch_ids)
            if first_unused != 0:
                raise ProtocolError(
                    "batch ids were already assigned; the base must be set "
                    "before the first batch is formed"
                )
            self._batch_ids = itertools.count(base)

    def close(self) -> None:
        """Refuse new submissions (batch formation keeps working).  Idempotent."""
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- observability -------------------------------------------------------
    def pending(self) -> int:
        """Number of queued (not yet batched) requests."""
        with self._lock:
            return len(self._queue)

    def pending_count(self) -> int:
        """Alias of :meth:`pending`, the name the serving stats use."""
        return self.pending()

    def pending_keys(self) -> list[BatchKey]:
        """Distinct compatibility keys still queued, in arrival order."""
        seen: list[BatchKey] = []
        with self._lock:
            for request in self._queue:
                if request.key not in seen:
                    seen.append(request.key)
        return seen

    def queue_depths(self) -> dict[BatchKey, int]:
        """Queued request count per compatibility key, in arrival order."""
        depths: dict[BatchKey, int] = {}
        with self._lock:
            for request in self._queue:
                depths[request.key] = depths.get(request.key, 0) + 1
        return depths

    def max_queue_wait(self, now: float | None = None) -> float:
        """Longest time any queued request has been waiting, in seconds."""
        with self._lock:
            if not self._queue:
                return 0.0
            now = time.perf_counter() if now is None else now
            return max(now - request.submitted_at for request in self._queue)

    # -- batch formation -----------------------------------------------------
    def next_batch(self) -> Batch | None:
        """Form the next batch according to the scheduling policy.

        Requests with other keys keep their queue position, so an
        incompatible burst cannot push an older request backwards.
        """
        with self._lock:
            if not self._queue:
                return None
            taken = self.policy.select(tuple(self._queue), self.max_batch_size)
            self._validate_selection_locked(taken)
            # Arrival order within the batch, regardless of selection order.
            taken = sorted(taken, key=lambda r: r.sequence)
            chosen = {id(request) for request in taken}
            self._queue = deque(r for r in self._queue if id(r) not in chosen)
            return Batch(
                batch_id=next(self._batch_ids), key=taken[0].key, requests=taken
            )

    def _validate_selection_locked(self, taken: list[InferenceRequest]) -> None:
        policy = type(self.policy).__name__
        if not taken:
            raise ProtocolError(f"{policy} selected an empty batch")
        if len(taken) > self.max_batch_size:
            raise ProtocolError(
                f"{policy} selected {len(taken)} requests, over the "
                f"max batch size {self.max_batch_size}"
            )
        queued = {id(request) for request in self._queue}
        if any(id(request) not in queued for request in taken):
            raise ProtocolError(f"{policy} selected requests not in the queue")
        key = taken[0].key
        if any(request.key != key for request in taken):
            raise ProtocolError(f"{policy} mixed compatibility keys in one batch")
        oldest = min(
            (r for r in self._queue if r.key == key), key=lambda r: r.sequence
        )
        if all(request is not oldest for request in taken):
            raise ProtocolError(
                f"{policy} starved the per-key head request {oldest.request_id!r}"
            )

    def drain(self) -> list[Batch]:
        """Form batches until the queue is empty.

        The whole drain happens under the queue lock: a submission that
        races it either lands before the snapshot (and is drained) or after
        it (and is counted by the next ``pending_count``) -- never neither.
        """
        with self._lock:
            batches = []
            while True:
                batch = self.next_batch()
                if batch is None:
                    return batches
                batches.append(batch)
