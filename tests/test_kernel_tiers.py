"""Compiled/parallel kernel tier: bit-identity, selection, calibration.

The kernel tier moves the NTT butterflies and the BSGS inner loop into
compiled (and optionally multicore / numba-jitted) implementations behind
:mod:`repro.he.kernels`.  The whole contract is *bit-identity*: every tier
must produce exactly the arrays the ``reference`` numpy path produces --
per primitive (forward/inverse NTT, pointwise multiply, fused accumulate)
across every modulus the parameter families generate, and end to end
(serving logits, tracker-measured transform and rotation counts).  The
selection chain (explicit > ``tier_scope`` > ``set_kernel_tier`` >
``REPRO_KERNEL_TIER`` > self-calibrated auto) is pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he import (
    ExactBFVBackend,
    SimulatedHEBackend,
    get_ntt_context,
    paper_parameters,
    rns_serving_parameters,
    serving_parameters,
    toy_parameters,
)
from repro.he import test_parameters as midsize_parameters  # avoid pytest collection
from repro.he import kernels
from repro.runtime import ServingRuntime

TIERS = kernels.available_tiers()
NON_REFERENCE = [name for name in TIERS if name != "reference"]

#: every (N, q) pair the parameter families produce
PARAMS_MODULI = [
    ("toy", toy_parameters(64)),
    ("test", midsize_parameters(256)),
    ("serving", serving_parameters(256)),
    ("paper", paper_parameters()),
    ("rns2", rns_serving_parameters(256, 2)),
]


def _limb_pairs(params):
    if params.ciphertext_moduli:
        return [(params.ring_degree, q) for q in params.ciphertext_moduli]
    return [(params.ring_degree, params.ciphertext_modulus)]


@pytest.fixture(autouse=True)
def _reset_selection():
    """Each test starts from env/auto resolution with no pinned tier."""
    previous = kernels.get_kernel_tier()
    yield
    kernels.set_kernel_tier(previous)


class TestBitIdentity:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize(
        "name,params", PARAMS_MODULI, ids=[p[0] for p in PARAMS_MODULI]
    )
    def test_forward_inverse_match_reference_all_moduli(self, tier, name, params):
        """forward/inverse NTT bit-identical to reference for every modulus."""
        rng = np.random.default_rng(7)
        for n, q in _limb_pairs(params):
            ctx = get_ntt_context(n, q)
            batch = rng.integers(0, q, size=(5, n), dtype=np.int64)
            # Unreduced and negative inputs exercise the input-reduction path.
            dirty = batch - np.int64(q) * rng.integers(-2, 3, size=batch.shape)
            for arr in (batch, dirty):
                with kernels.tier_scope(tier):
                    fwd = ctx.forward_batch(arr)
                    inv = ctx.inverse_batch(fwd)
                with kernels.tier_scope("reference"):
                    fwd_ref = ctx.forward_batch(arr)
                    inv_ref = ctx.inverse_batch(fwd_ref)
                assert np.array_equal(fwd, fwd_ref), (tier, name, n, q)
                assert np.array_equal(inv, inv_ref), (tier, name, n, q)
                assert np.array_equal(inv, np.mod(arr, q))

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("limbs", [1, 2, 3])
    def test_stacked_rns_ring_ops_match_reference(self, tier, limbs):
        """Multi-limb stacked forward/inverse/mul identical across tiers."""
        params = rns_serving_parameters(128, limbs)
        rng = np.random.default_rng(11)
        moduli = np.asarray(
            params.ciphertext_moduli or [params.ciphertext_modulus], dtype=np.int64
        )
        polys = rng.integers(
            0, moduli[:, None, None], size=(limbs, 4, 128), dtype=np.int64
        )
        others = rng.integers(0, moduli[:, None], size=(limbs, 128), dtype=np.int64)

        def run(active):
            ring = ExactBFVBackend(params, seed=3).context.ring
            with kernels.tier_scope(active):
                fwd = ring.forward_batch(polys)
                inv = ring.inverse_batch(fwd)
                prod = ring.mul_batch(polys, others)
                eva = ring.mul_eval(fwd, fwd)
            return fwd, inv, prod, eva

        got = run(tier)
        want = run("reference")
        for a, b in zip(got, want, strict=True):
            assert np.array_equal(a, b), (tier, limbs)

    @pytest.mark.parametrize("tier", TIERS)
    def test_pointwise_mul_eval_matches_numpy(self, tier):
        """Barrett/compiled pointwise multiply == numpy ``a * b % q`` exactly."""
        rng = np.random.default_rng(5)
        for _, params in PARAMS_MODULI[:4]:
            n, q = params.ring_degree, params.ciphertext_modulus
            a = rng.integers(0, q, size=(3, n), dtype=np.int64)
            b = rng.integers(0, q, size=(3, n), dtype=np.int64)
            active = kernels._TIERS[tier]
            got = active.mul_eval(a, b, np.int64(q))
            assert np.array_equal(got, a * b % q), (tier, n, q)

    @pytest.mark.parametrize("tier", NON_REFERENCE)
    def test_fused_accumulate_matches_loop(self, tier):
        """tensordot-fused combine == scale-then-add loop, bit for bit."""
        rng = np.random.default_rng(13)
        q = np.asarray([536813569, 536690689], dtype=np.int64)[:, None]
        stacked = rng.integers(0, q.max(), size=(6, 2, 2, 64), dtype=np.int64) % q
        weights = rng.integers(-120, 121, size=(6, 3), dtype=np.int64)
        fused = kernels._TIERS[tier].fused_accumulate(weights, stacked, q)
        for j in range(weights.shape[1]):
            acc = np.zeros_like(stacked[0])
            for k in range(weights.shape[0]):
                acc = (acc + stacked[k] * weights[k, j]) % q
            assert np.array_equal(fused[j] % q, acc), (tier, j)


class TestEndToEndServing:
    BATCH, TOKENS, FEATURES, OUTPUTS = 4, 8, 16, 4

    def _serve(self, params, tier):
        rng = np.random.default_rng(21)
        matrices = [
            rng.integers(0, 100, size=(self.TOKENS, self.FEATURES))
            for _ in range(self.BATCH)
        ]
        weights = rng.integers(0, 7, size=(self.FEATURES, self.OUTPUTS))
        with kernels.tier_scope(tier):
            backend = ExactBFVBackend(params, seed=5)
            runtime = ServingRuntime(
                backend_factory=lambda: backend, max_batch_size=self.BATCH
            )
            runtime.register_weights("proj", weights)
            ids = [runtime.submit_linear("proj", m) for m in matrices]
            runtime.run_pending()
            results = [runtime.result(rid).result for rid in ids]
        t = params.plaintext_modulus
        for m, got in zip(matrices, results, strict=True):
            assert np.array_equal(got, (m @ weights) % t)
        return (
            results,
            backend.tracker.transforms(),
            backend.tracker.count("he_rotate"),
        )

    @pytest.mark.parametrize("tier", NON_REFERENCE)
    @pytest.mark.parametrize("limbs", [1, 2])
    def test_serving_logits_and_counts_match_reference(self, tier, limbs):
        """Same logits, same transform/rotation accounting under every tier."""
        params = (
            rns_serving_parameters(256, limbs) if limbs > 1
            else serving_parameters(256)
        )
        ref_results, ref_transforms, ref_rotations = self._serve(params, "reference")
        results, transforms, rotations = self._serve(params, tier)
        for a, b in zip(results, ref_results, strict=True):
            assert np.array_equal(a, b)
        assert transforms == ref_transforms
        assert rotations == ref_rotations

    @pytest.mark.parametrize("tier", NON_REFERENCE)
    def test_simulated_fused_accumulate_matches_loop(self, tier):
        """Fused simulated BSGS inner loop == per-term loop: slots, noise, counts."""
        params = paper_parameters()
        rng = np.random.default_rng(3)
        values = [rng.integers(0, 200, size=64) for _ in range(3)]
        masks = [rng.integers(0, 50, size=64) for _ in range(3)]

        def run(active, pre_transformed):
            with kernels.tier_scope(active):
                backend = SimulatedHEBackend(params)
                handles = [backend.encrypt(v) for v in values]
                operands = [
                    backend.encode_plain_eval(m) if pre_transformed else m
                    for m in masks
                ]
                backend.tracker.reset()
                out = backend.fused_mul_accumulate(list(zip(handles, operands, strict=True)))
            return out, backend.tracker.snapshot(), backend.tracker.transforms()

        for pre in (False, True):
            got, got_counts, got_transforms = run(tier, pre)
            want, want_counts, want_transforms = run("reference", pre)
            assert np.array_equal(got.slots, want.slots), (tier, pre)
            assert got.noise_bound == want.noise_bound
            assert got.domain is want.domain
            assert got_counts == want_counts
            assert got_transforms == want_transforms


class TestSelection:
    def test_unknown_tier_rejected(self):
        with pytest.raises(ParameterError):
            kernels.set_kernel_tier("turbo")
        with pytest.raises(ParameterError):
            with kernels.tier_scope("turbo"):
                pass

    def test_unavailable_tier_rejected(self):
        unavailable = [name for name in kernels._TIERS if name not in TIERS]
        for name in unavailable:
            with pytest.raises(ParameterError):
                kernels.set_kernel_tier(name)

    def test_env_variable_selects_tier(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "reference")
        assert kernels.active_tier_name() == "reference"

    def test_resolution_precedence(self, monkeypatch):
        """explicit > tier_scope > set_kernel_tier > env."""
        if not NON_REFERENCE:
            pytest.skip("only the reference tier is available here")
        other = NON_REFERENCE[0]
        monkeypatch.setenv(kernels.ENV_VAR, other)
        assert kernels.active_tier_name() == other
        kernels.set_kernel_tier("reference")
        assert kernels.active_tier_name() == "reference"
        with kernels.tier_scope(other):
            assert kernels.active_tier_name() == other
            assert kernels.active_tier_name("reference") == "reference"
        assert kernels.active_tier_name() == "reference"

    def test_params_kernel_tier_threads_through_ring(self):
        params = serving_parameters(64, kernel_tier="reference")
        assert params.kernel_tier == "reference"
        backend = ExactBFVBackend(params, seed=1)
        assert backend.context.ring.kernel_tier == "reference"

    def test_auto_resolves_to_calibrated_fastest(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        name = kernels.active_tier_name()
        assert name in TIERS
        assert name == kernels.fastest_tier_name()

    def test_calibration_snapshot_covers_available_tiers(self):
        snapshot = kernels.calibration_snapshot()
        assert set(snapshot) == set(TIERS)
        for costs in snapshot.values():
            assert costs["ntt_seconds"] > 0
            assert costs["mul_eval_seconds"] > 0

    def test_serving_stats_record_tier_and_costs(self):
        from repro.runtime.serving import summarize

        stats = summarize([])
        assert stats.kernel_tier in TIERS
        stats = summarize([], wall_seconds=None)
        assert stats.kernel_costs == () or all(
            isinstance(k, str) and v > 0 for k, v in stats.kernel_costs
        )

    def test_calibrate_bsgs_costs_accepts_tier(self):
        from repro.he import calibrate_bsgs_costs

        backend = SimulatedHEBackend(toy_parameters(64))
        costs = calibrate_bsgs_costs(backend, repeats=1, kernel_tier="reference")
        assert costs.rotation_seconds > 0
        assert costs.mul_seconds > 0


class TestWarm:
    @pytest.mark.parametrize("tier", NON_REFERENCE)
    def test_warm_tier_builds_packed_tables(self, tier):
        ctx = get_ntt_context(64, toy_parameters(64).ciphertext_modulus)
        kernels.warm_tier(ctx, tier)
        assert getattr(ctx, "_kernel_tables", None) is not None

    def test_warm_ntt_cache_warms_active_tier(self):
        from repro.he import warm_ntt_cache

        params = toy_parameters(64)
        tier = NON_REFERENCE[0] if NON_REFERENCE else "reference"
        warmed = warm_ntt_cache(
            [(params.ring_degree, params.ciphertext_modulus)], kernel_tier=tier
        )
        ctx = get_ntt_context(params.ring_degree, params.ciphertext_modulus)
        if NON_REFERENCE:
            assert getattr(ctx, "_kernel_tables", None) is not None
        assert warmed
