"""Shared fixtures for the benchmark harness (pytest-benchmark)."""

from __future__ import annotations

import pytest

from repro.nn import BERT_BASE
from repro.runtime import calibrated_latency_model


@pytest.fixture(scope="session")
def latency_model():
    """Cost model calibrated once per benchmark session (Table II anchors)."""
    return calibrated_latency_model(BERT_BASE)
