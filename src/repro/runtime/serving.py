"""Batch-serving façade for private Transformer inference.

The paper evaluates the hybrid HE+GC protocol one sequence at a time; this
module is the front door of the reproduction's *serving system*.  The actual
machinery lives one layer down and is composed of three parts (see the
README's "Serving architecture" section):

* **plans** (:mod:`repro.protocols.plan`) -- the offline phase of every
  engine is an explicit, immutable :class:`~repro.protocols.plan.OfflinePlan`
  produced by ``prepare()`` and adopted by ``install()``;
* **executors** (:mod:`repro.runtime.executor`) -- the
  :class:`~repro.runtime.executor.BatchExecutor` runs one batch with full
  per-request attribution; the
  :class:`~repro.runtime.executor.PipelinedExecutor` shards engines across
  workers and overlaps offline preparation with online execution;
* **policies** (:mod:`repro.runtime.scheduler`) -- batch formation is a
  pluggable :class:`~repro.runtime.scheduler.SchedulingPolicy` (FIFO
  default, earliest-deadline-first, size-aware slot packing), all bound by
  the scheduler-enforced per-key FIFO fairness invariant.

:class:`ServingRuntime` preserves the original API: ``submit`` /
``submit_linear`` queue requests, ``run_pending()`` drains serially (batch
after batch, behaviour-identical to the pre-split runtime) and
``run_pending_pipelined()`` drains through the sharded pipeline.  Both paths
produce bit-identical logits -- the protocol's outputs are deterministic
functions of the inputs regardless of the sharing randomness -- which the
test-suite asserts for all four Primer variants.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

import numpy as np

from ..errors import ProtocolError
from ..he.backend import HEBackend
from ..nn.transformer import TransformerEncoder
from ..protocols.channel import NetworkModel
from ..protocols.planstore import PlanStore
from ..protocols.primer import (
    ALL_VARIANTS,
    PRIMER_FPC,
    PrimerVariant,
    PrivateTransformerInference,
)
from .executor import (
    STEP_LINEAR,
    BatchExecutor,
    EngineCache,
    LinearServingPath,
    PipelinedExecutor,
    RequestReport,
)
from .scheduler import BatchKey, BatchScheduler, InferenceRequest, SchedulingPolicy

__all__ = [
    "RequestReport",
    "ServingStats",
    "ServingRuntime",
    "run_sequential_baseline",
    "summarize",
    "STEP_LINEAR",
]


@dataclass(frozen=True)
class ServingStats:
    """Aggregate view over a set of request reports."""

    num_requests: int
    num_batches: int
    total_seconds: float
    requests_per_second: float
    mean_latency_seconds: float
    mean_queue_seconds: float
    #: longest any request in the set waited in the queue
    max_queue_seconds: float = 0.0
    #: deadline outcomes (requests without a deadline count in neither)
    deadlines_met: int = 0
    deadlines_missed: int = 0
    #: fault-tolerance aggregates: requests that needed at least one retry,
    #: requests served along a degradation rung, and the total executor
    #: attempts across all requests (== num_requests in a fault-free run)
    retried_requests: int = 0
    degraded_requests: int = 0
    total_attempts: int = 0
    #: HE kernel tier that was active when the stats were summarized
    kernel_tier: str = ""
    #: per-tier calibration timings ``(tier, {"ntt_seconds", "mul_eval_seconds"})``
    #: flattened to ``(("reference.ntt_seconds", 3.1e-3), ...)``; empty until the
    #: ``auto`` tier has run its self-calibration in this process
    kernel_costs: tuple[tuple[str, float], ...] = ()


def _kernel_costs_snapshot() -> tuple[tuple[str, float], ...]:
    """Flatten :func:`repro.he.kernels.calibration_snapshot` for ServingStats."""
    from repro.he import kernels

    flat: list[tuple[str, float]] = []
    for tier, costs in sorted(kernels.calibration_snapshot().items()):
        for metric, seconds in sorted(costs.items()):
            flat.append((f"{tier}.{metric}", float(seconds)))
    return tuple(flat)


def summarize(reports: list[RequestReport], wall_seconds: float | None = None) -> ServingStats:
    """Aggregate throughput/latency statistics for a serving run."""
    from repro.he import kernels

    if not reports:
        return ServingStats(
            0, 0, 0.0, 0.0, 0.0, 0.0, kernel_tier=kernels.active_tier_name()
        )
    total = (
        wall_seconds
        if wall_seconds is not None
        else sum(r.latency_seconds for r in reports if not r.shared_slot_batch)
        + sum(
            r.latency_seconds / max(1, r.batch_size)
            for r in reports
            if r.shared_slot_batch
        )
    )
    return ServingStats(
        num_requests=len(reports),
        num_batches=len({r.batch_id for r in reports}),
        total_seconds=total,
        requests_per_second=len(reports) / total if total > 0 else float("inf"),
        mean_latency_seconds=float(np.mean([r.latency_seconds for r in reports])),
        mean_queue_seconds=float(np.mean([r.queue_seconds for r in reports])),
        max_queue_seconds=float(np.max([r.queue_seconds for r in reports])),
        deadlines_met=sum(1 for r in reports if r.deadline_met is True),
        deadlines_missed=sum(1 for r in reports if r.deadline_met is False),
        retried_requests=sum(1 for r in reports if r.retried),
        degraded_requests=sum(1 for r in reports if r.degraded),
        total_attempts=sum(r.attempts for r in reports),
        kernel_tier=kernels.active_tier_name(),
        kernel_costs=_kernel_costs_snapshot(),
    )


class ServingRuntime:
    """Queue → policy batcher → (pipelined) executor → per-request reports.

    Parameters
    ----------
    models:
        Named models served for full-inference requests.
    max_batch_size:
        Upper bound on requests per batch (see :class:`BatchScheduler`).
    backend_factory:
        Optional zero-argument callable returning a fresh
        :class:`~repro.he.backend.HEBackend` (with its own tracker) for each
        engine and for the linear path; defaults to the simulated backend at
        protocol-scale parameters.
    seed:
        Seed handed to every engine (results are seed-independent; the seed
        only fixes the sharing randomness).
    policy:
        Scheduling policy for batch formation; default FIFO (the original
        behaviour).
    num_workers:
        Shard workers used by :meth:`run_pending_pipelined`.
    network:
        Optional :class:`~repro.protocols.channel.NetworkModel` to
        *realize*: every protocol message then actually waits out its
        transfer time, emulating the paper's two-instance deployment.  The
        pipelined executor overlaps the offline phase's wire time with
        online execution; the serial drain pays it inline.
    fhgs_slot_sharing:
        FHGS block-diagonal slot-sharing capacity: engines prepare their
        offline plans so that up to this many compatible requests share one
        set of cross-term ciphertexts per batch (``None``, the default,
        follows ``max_batch_size``; ``1`` disables sharing).  Engines clamp
        it to what their backend and slot budget support, so it is always
        safe to leave on.
    plan_store:
        Optional :class:`~repro.protocols.planstore.PlanStore` (or a
        directory path, which is wrapped in one).  Cold engine builds
        persist their offline plans there and later builds -- including in a
        freshly started process -- *warm-start* by installing the stored
        plan instead of re-running the offline HE exchange.
    engine_cache_entries / engine_cache_bytes:
        LRU bounds on the engine cache: at most this many cached engines /
        this many bytes of cached offline-plan arrays.  ``None`` (default)
        leaves the dimension unbounded, the original behaviour.
    breaker_threshold / breaker_cooldown_seconds / breaker_clock:
        Per-``(model, variant)`` engine-build circuit breaker: after
        ``breaker_threshold`` consecutive build failures the key is
        quarantined (:class:`~repro.errors.EngineQuarantined` with a retry
        hint) until ``breaker_cooldown_seconds`` admits a half-open probe
        build.  ``breaker_clock`` is injectable for tests.
    """

    def __init__(
        self,
        models: dict[str, TransformerEncoder] | None = None,
        *,
        max_batch_size: int = 8,
        backend_factory: Callable[[], HEBackend] | None = None,
        seed: int = 0,
        policy: SchedulingPolicy | None = None,
        num_workers: int = 2,
        network: NetworkModel | None = None,
        fhgs_slot_sharing: int | None = None,
        plan_store: PlanStore | str | Path | None = None,
        engine_cache_entries: int | None = None,
        engine_cache_bytes: int | None = None,
        breaker_threshold: int = 2,
        breaker_cooldown_seconds: float = 30.0,
        breaker_clock: Callable[[], float] | None = None,
    ) -> None:
        self.scheduler = BatchScheduler(max_batch_size=max_batch_size, policy=policy)
        self._models: dict[str, TransformerEncoder] = dict(models or {})
        self._weight_banks: dict[str, np.ndarray] = {}
        self._variants: dict[str, PrimerVariant] = {v.name: v for v in ALL_VARIANTS}
        slot_sharing = (
            max_batch_size if fhgs_slot_sharing is None else max(1, fhgs_slot_sharing)
        )
        if isinstance(plan_store, (str, Path)):
            plan_store = PlanStore(plan_store)
        self._engines = EngineCache(
            self._models, self._variants, backend_factory, seed,
            network=network, slot_sharing=slot_sharing,
            plan_store=plan_store,
            max_entries=engine_cache_entries,
            max_bytes=engine_cache_bytes,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_seconds=breaker_cooldown_seconds,
            breaker_clock=breaker_clock,
        )
        self._linear = LinearServingPath(self._weight_banks, backend_factory, network=network)
        self.executor = BatchExecutor(self._engines, self._linear)
        self.pipeline = PipelinedExecutor(self.executor, num_workers=num_workers)
        self._request_ids = itertools.count()
        self._completed: dict[str, RequestReport] = {}

    def _register_variant(self, variant: PrimerVariant) -> None:
        """Track a variant by name, rejecting silent name collisions.

        Batch keys carry only the variant *name*, so two different variant
        configurations under one name would make requests run under
        whichever registered first -- an error, not a tie-break.
        """
        existing = self._variants.setdefault(variant.name, variant)
        if existing != variant:
            raise ProtocolError(
                f"variant name {variant.name!r} is already registered with a "
                "different configuration"
            )

    # -- registration --------------------------------------------------------
    def register_model(self, name: str, model: TransformerEncoder) -> None:
        """Register (or replace) a model served under ``name``."""
        self._models[name] = model
        # Engines built for an older model under this name are stale.
        self._engines.invalidate_model(name)

    def register_weights(self, name: str, weights: np.ndarray) -> None:
        """Register a plaintext weight matrix for the linear serving path.

        Replacing a bank with a *different input dimension* while compatible
        linear requests are still queued is rejected: those requests were
        shape-validated against the old bank at submit time and would
        otherwise run against the new one (the executor re-checks the shape
        contract at batch time as a second line of defence).
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2:
            raise ProtocolError("linear serving weights must be a 2-D matrix")
        previous = self._weight_banks.get(name)
        if previous is not None and previous.shape[0] != weights.shape[0]:
            pending = self.scheduler.queue_depths().get(
                BatchKey(kind="linear", model=name, variant=""), 0
            )
            if pending:
                raise ProtocolError(
                    f"cannot replace weight bank {name!r} "
                    f"({previous.shape} -> {weights.shape}) while {pending} "
                    "compatible linear requests are queued; drain them first"
                )
        # The bank swap and the invalidation of its NTT-form diagonal plans
        # happen atomically under the linear path's lock, so an in-flight
        # drain can never pair the new bank with the old bank's plans.
        self._linear.replace_bank(name, weights)

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        model_name: str,
        token_ids: np.ndarray,
        *,
        variant: PrimerVariant = PRIMER_FPC,
        deadline_seconds: float | None = None,
    ) -> str:
        """Queue one full private-inference request; returns its request id.

        ``deadline_seconds`` is a completion target relative to submission;
        it only influences batch order under the deadline-aware policy, and
        every report records whether its deadline was met.
        """
        if model_name not in self._models:
            raise ProtocolError(f"unknown model {model_name!r}")
        self._register_variant(variant)
        request = InferenceRequest(
            request_id=f"req-{next(self._request_ids)}",
            key=BatchKey(kind="inference", model=model_name, variant=variant.name),
            payload=np.asarray(token_ids, dtype=np.int64),
        )
        if deadline_seconds is not None:
            request.deadline = request.submitted_at + deadline_seconds
        self.scheduler.submit(request)
        return request.request_id

    def submit_linear(
        self,
        weights_name: str,
        matrix: np.ndarray,
        *,
        deadline_seconds: float | None = None,
    ) -> str:
        """Queue one private ``X @ W`` request against a registered bank."""
        if weights_name not in self._weight_banks:
            raise ProtocolError(f"unknown weight bank {weights_name!r}")
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != self._weight_banks[weights_name].shape[0]:
            raise ProtocolError(
                f"linear request shape {matrix.shape} incompatible with "
                f"bank {weights_name!r} of shape {self._weight_banks[weights_name].shape}"
            )
        slot_count = self._linear.backend().slot_count
        if matrix.shape[0] > slot_count:
            raise ProtocolError(
                f"linear request of {matrix.shape[0]} rows exceeds the "
                f"{slot_count}-slot ciphertext capacity"
            )
        request = InferenceRequest(
            request_id=f"req-{next(self._request_ids)}",
            key=BatchKey(kind="linear", model=weights_name, variant=""),
            payload=matrix,
        )
        if deadline_seconds is not None:
            request.deadline = request.submitted_at + deadline_seconds
        self.scheduler.submit(request)
        return request.request_id

    # -- execution -----------------------------------------------------------
    def _record_completions(self, batch_reports: list[RequestReport]) -> None:
        """Register finished reports so :meth:`result` can serve them.

        Called batch by batch from every drain path (serial, pipelined, and
        the async front door's continuous loop), so an error in a later
        batch cannot lose the results of batches that already ran.
        """
        for report in batch_reports:
            self._completed[report.request_id] = report

    def run_pending(self) -> list[RequestReport]:
        """Drain the queue serially, batch after batch; returns all reports."""
        reports: list[RequestReport] = []
        while True:
            batch = self.scheduler.next_batch()
            if batch is None:
                break
            batch_reports = self.executor.execute(batch)
            self._record_completions(batch_reports)
            reports.extend(batch_reports)
        return reports

    def run_pending_pipelined(self) -> list[RequestReport]:
        """Drain the queue through the sharded offline/online pipeline.

        Batches are formed by the same policy as :meth:`run_pending`; they
        then run on per-key shard workers while the offline plans of
        not-yet-started engines are prepared in the background.  Reports
        come back in batch-formation order and the logits are bit-identical
        to a serial drain.  Completions register batch by batch (like the
        serial drain), so an error in one shard cannot lose the results of
        batches that already ran.
        """
        batches = self.scheduler.drain()
        return self.pipeline.drain(batches, on_batch_complete=self._record_completions)

    def result(self, request_id: str) -> RequestReport:
        """Report of a completed request."""
        if request_id not in self._completed:
            raise ProtocolError(f"request {request_id!r} has not completed")
        return self._completed[request_id]

    # -- engine cache --------------------------------------------------------
    def engine_for(self, model_name: str, variant: PrimerVariant = PRIMER_FPC) -> PrivateTransformerInference:
        """The cached engine serving ``(model, variant)``, building it if needed."""
        self._register_variant(variant)
        key = BatchKey(kind="inference", model=model_name, variant=variant.name)
        return self._engines.entry(key).engine

    @property
    def engine_cache(self) -> EngineCache:
        """The bounded engine cache (eviction stats, plan store, keys)."""
        return self._engines

    @property
    def linear_channel(self):
        """The accounting channel of the shared-slot linear path."""
        return self._linear.channel


def run_sequential_baseline(
    model: TransformerEncoder,
    token_ids_list: list[np.ndarray],
    *,
    variant: PrimerVariant = PRIMER_FPC,
    backend_factory: Callable[[], HEBackend] | None = None,
    seed: int = 0,
    network: NetworkModel | None = None,
) -> tuple[list[np.ndarray], float]:
    """Serve requests the pre-runtime way: a fresh engine per request.

    This is exactly what the paper-style evaluation does (key generation and
    the full offline phase repeated for every sequence); it is the baseline
    the serving benchmark compares batched throughput against.  Returns the
    per-request logits and the total wall-clock seconds.
    """
    logits: list[np.ndarray] = []
    start = time.perf_counter()
    for token_ids in token_ids_list:
        backend = backend_factory() if backend_factory else None
        engine = PrivateTransformerInference(
            model, variant, backend=backend, seed=seed, network=network
        )
        engine.offline()
        logits.append(engine.run(np.asarray(token_ids, dtype=np.int64)).logits)
    return logits, time.perf_counter() - start
