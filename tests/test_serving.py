"""Tests for the batch-serving runtime: scheduler policy, per-request
accounting, slot-sharing linear batches, and batched-vs-solo equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.he import ExactBFVBackend, SimulatedHEBackend, serving_parameters, toy_parameters
from repro.he.tracker import OperationTracker
from repro.protocols import PRIMER_F, PRIMER_FPC, Phase
from repro.runtime import (
    BatchKey,
    BatchScheduler,
    InferenceRequest,
    ServingRuntime,
    run_sequential_baseline,
    summarize,
)

KEY_A = BatchKey(kind="inference", model="a", variant="primer-fpc")
KEY_B = BatchKey(kind="inference", model="b", variant="primer-fpc")
KEY_A_F = BatchKey(kind="inference", model="a", variant="primer-f")


def _request(key: BatchKey, rid: str) -> InferenceRequest:
    return InferenceRequest(request_id=rid, key=key, payload=np.zeros(1, dtype=np.int64))


class TestBatchScheduler:
    def test_groups_compatible_requests(self):
        scheduler = BatchScheduler(max_batch_size=4)
        for i in range(3):
            scheduler.submit(_request(KEY_A, f"a{i}"))
        scheduler.submit(_request(KEY_B, "b0"))
        batch = scheduler.next_batch()
        assert batch.key == KEY_A
        assert [r.request_id for r in batch.requests] == ["a0", "a1", "a2"]
        assert scheduler.pending() == 1

    def test_fifo_head_defines_the_batch(self):
        """The oldest request is always in the next batch (no starvation)."""
        scheduler = BatchScheduler(max_batch_size=4)
        scheduler.submit(_request(KEY_B, "b0"))
        for i in range(6):
            scheduler.submit(_request(KEY_A, f"a{i}"))
        batch = scheduler.next_batch()
        assert batch.key == KEY_B
        assert [r.request_id for r in batch.requests] == ["b0"]

    def test_fifo_order_preserved_within_key(self):
        scheduler = BatchScheduler(max_batch_size=2)
        order = ["a0", "b0", "a1", "a2", "b1"]
        for rid in order:
            scheduler.submit(_request(KEY_A if rid.startswith("a") else KEY_B, rid))
        batches = scheduler.drain()
        assert [[r.request_id for r in b.requests] for b in batches] == (
            [["a0", "a1"], ["b0", "b1"], ["a2"]]
        )

    def test_max_batch_size_enforced(self):
        scheduler = BatchScheduler(max_batch_size=3)
        for i in range(7):
            scheduler.submit(_request(KEY_A, f"a{i}"))
        sizes = [len(b) for b in scheduler.drain()]
        assert sizes == [3, 3, 1]

    def test_variants_are_incompatible(self):
        scheduler = BatchScheduler(max_batch_size=8)
        scheduler.submit(_request(KEY_A, "a0"))
        scheduler.submit(_request(KEY_A_F, "f0"))
        batches = scheduler.drain()
        assert len(batches) == 2
        assert batches[0].key == KEY_A and batches[1].key == KEY_A_F

    def test_empty_queue_yields_none(self):
        assert BatchScheduler().next_batch() is None

    def test_rejects_degenerate_batch_size(self):
        with pytest.raises(ProtocolError):
            BatchScheduler(max_batch_size=0)


@pytest.fixture(scope="module")
def served(tiny_model):
    """One serving run over six requests across two variants (shared)."""
    rng = np.random.default_rng(7)
    tokens = [rng.integers(0, 40, size=6) for _ in range(6)]
    runtime = ServingRuntime({"tiny": tiny_model}, max_batch_size=4, seed=21)
    ids = [runtime.submit("tiny", t) for t in tokens[:4]]
    ids.append(runtime.submit("tiny", tokens[4], variant=PRIMER_F))
    ids.append(runtime.submit("tiny", tokens[5]))
    reports = runtime.run_pending()
    return runtime, tokens, ids, reports


class TestServingRuntime:
    def test_all_requests_served_in_batches(self, served):
        runtime, tokens, ids, reports = served
        assert [r.request_id for r in reports] == ids
        assert runtime.scheduler.pending() == 0
        # 4 fpc + 1 f + 1 fpc overflow -> three batches.
        assert len({r.batch_id for r in reports}) == 3

    def test_batched_results_match_solo_runs(self, served, tiny_model):
        """Batch execution must be bit-identical to engine-per-request runs."""
        runtime, tokens, ids, reports = served
        solo_logits, _ = run_sequential_baseline(tiny_model, tokens[:4], seed=999)
        for rid, expected in zip(ids[:4], solo_logits):
            report = runtime.result(rid)
            assert np.array_equal(report.result, expected), rid
            assert report.prediction == int(np.argmax(expected))

    def test_per_request_channel_accounting_sums_to_totals(self, served):
        runtime, tokens, ids, reports = served
        for variant in ("primer-fpc", "primer-f"):
            engine = runtime.engine_for(
                "tiny", PRIMER_FPC if variant == "primer-fpc" else PRIMER_F
            )
            channel = engine.channel
            tagged_bytes = sum(
                channel.total_bytes(Phase.ONLINE, request=rid) for rid in channel.requests()
            )
            # The engine's shared offline phase sends nothing online, so the
            # per-request attribution covers all online traffic exactly.
            assert tagged_bytes == channel.total_bytes(Phase.ONLINE)
            tagged_rounds = sum(
                channel.round_count(Phase.ONLINE, request=rid) for rid in channel.requests()
            )
            assert tagged_rounds == channel.round_count(Phase.ONLINE)

    def test_per_request_tracker_accounting_sums_to_totals(self, served):
        runtime, tokens, ids, reports = served
        engine = runtime.engine_for("tiny", PRIMER_FPC)
        tracker = engine.tracker
        recombined = dict(tracker.unattributed())
        for rid in tracker.requests():
            for op, count in tracker.request_snapshot(rid).items():
                recombined[op] = recombined.get(op, 0) + count
        assert recombined == tracker.snapshot()

    def test_reports_carry_per_request_breakdowns(self, served):
        _, _, _, reports = served
        for report in reports:
            assert report.online_bytes > 0
            assert report.online_rounds > 0
            assert report.latency_seconds > 0
            assert report.queue_seconds >= 0
            assert report.summary()["batch_size"] >= 1

    def test_summarize_throughput(self, served):
        _, _, _, reports = served
        stats = summarize(reports)
        assert stats.num_requests == 6
        assert stats.num_batches == 3
        assert stats.requests_per_second > 0

    def test_unknown_model_rejected(self):
        runtime = ServingRuntime()
        with pytest.raises(ProtocolError):
            runtime.submit("nope", np.zeros(4, dtype=np.int64))

    def test_engine_cache_reused_across_run_pending_calls(self, served, tiny_model):
        runtime, tokens, ids, reports = served
        engine_before = runtime.engine_for("tiny", PRIMER_FPC)
        runtime.submit("tiny", tokens[0])
        more = runtime.run_pending()
        assert runtime.engine_for("tiny", PRIMER_FPC) is engine_before
        assert np.array_equal(more[-1].result, runtime.result(ids[0]).result)


class TestLinearServing:
    @pytest.mark.parametrize(
        "make_backend",
        [
            lambda: ExactBFVBackend(serving_parameters(256), seed=5),
            lambda: SimulatedHEBackend(toy_parameters(256)),
        ],
    )
    def test_batched_linear_results_exact(self, make_backend, rng):
        runtime = ServingRuntime(backend_factory=make_backend, max_batch_size=8)
        weights = rng.integers(0, 7, size=(16, 4))
        runtime.register_weights("proj", weights)
        matrices = [rng.integers(0, 100, size=(8, 16)) for _ in range(8)]
        ids = [runtime.submit_linear("proj", m) for m in matrices]
        reports = runtime.run_pending()
        t = make_backend().plaintext_modulus
        for m, rid in zip(matrices, ids):
            report = runtime.result(rid)
            assert np.array_equal(report.result, (m @ weights) % t)
            assert report.shared_slot_batch

    def test_batch_shares_ciphertexts_across_requests(self, rng):
        """8 requests cost the same number of encryptions as one request."""
        backend = ExactBFVBackend(serving_parameters(256), seed=5)
        runtime = ServingRuntime(backend_factory=lambda: backend, max_batch_size=8)
        weights = rng.integers(0, 7, size=(16, 4))
        runtime.register_weights("proj", weights)
        for _ in range(8):
            runtime.submit_linear("proj", rng.integers(0, 100, size=(8, 16)))
        reports = runtime.run_pending()
        # One ciphertext per input feature, shared by the whole batch.
        assert reports[0].he_operations["encrypt"] == 16
        assert reports[0].batch_size == 8

    def test_oversized_batches_are_chunked_to_slot_capacity(self, rng):
        backend = SimulatedHEBackend(toy_parameters(64))  # 64 slots
        runtime = ServingRuntime(backend_factory=lambda: backend, max_batch_size=8)
        weights = rng.integers(0, 7, size=(4, 2))
        runtime.register_weights("proj", weights)
        matrices = [rng.integers(0, 30, size=(24, 4)) for _ in range(5)]  # 120 rows total
        for m in matrices:
            runtime.submit_linear("proj", m)
        reports = runtime.run_pending()
        t = backend.plaintext_modulus
        for m, report in zip(matrices, reports):
            assert np.array_equal(report.result, (m @ weights) % t)
        # 24-row requests fit two per 64-slot ciphertext -> chunks of <= 2.
        assert max(r.batch_size for r in reports) == 2
        # Every chunk gets its own accounting tag: a later chunk's report
        # must not accumulate the earlier chunks' operations.
        first_chunk_ops = reports[0].he_operations
        last_chunk_ops = reports[-1].he_operations
        assert last_chunk_ops["encrypt"] == first_chunk_ops["encrypt"] == weights.shape[0]

    def test_request_larger_than_slot_capacity_rejected_at_submit(self, rng):
        backend = SimulatedHEBackend(toy_parameters(64))
        runtime = ServingRuntime(backend_factory=lambda: backend)
        runtime.register_weights("proj", rng.integers(0, 7, size=(4, 2)))
        with pytest.raises(ProtocolError):
            runtime.submit_linear("proj", rng.integers(0, 30, size=(65, 4)))
        # Nothing was queued, so the runtime keeps serving normally.
        assert runtime.scheduler.pending() == 0

    def test_engine_for_unknown_model_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            ServingRuntime().engine_for("typo")

    def test_shape_mismatch_rejected(self, rng):
        runtime = ServingRuntime()
        runtime.register_weights("proj", rng.integers(0, 7, size=(16, 4)))
        with pytest.raises(ProtocolError):
            runtime.submit_linear("proj", rng.integers(0, 10, size=(8, 5)))
        with pytest.raises(ProtocolError):
            runtime.submit_linear("unknown", rng.integers(0, 10, size=(8, 16)))


class TestTrackerAttribution:
    def test_attribute_scopes_nest_and_restore(self):
        tracker = OperationTracker()
        tracker.record("op")
        with tracker.attribute("r1"):
            tracker.record("op")
            with tracker.attribute("r2"):
                tracker.record("op", count=2)
            tracker.record("op")
        tracker.record("op")
        assert tracker.count("op") == 6
        assert tracker.request_snapshot("r1") == {"op": 2}
        assert tracker.request_snapshot("r2") == {"op": 2}
        assert tracker.unattributed() == {"op": 2}

    def test_merge_preserves_request_attribution(self):
        a, b = OperationTracker(), OperationTracker()
        with a.attribute("r1"):
            a.record("x", bytes_moved=10)
        with b.attribute("r1"):
            b.record("x", bytes_moved=5)
        a.merge(b)
        assert a.request_snapshot("r1") == {"x": 2}
        assert a.request_bytes["r1"] == 15
