"""The FHGS protocol: ciphertext-ciphertext products for attention (Fig. 5),
and its combined variant CHGS (Fig. 3(d) / Section III-C).

Attention needs ``X_Q @ X_K^T`` and ``A @ X_V`` -- products of two *secret*
matrices.  Additive HE alone cannot offload these, which is why the paper
extends HGS with a Beaver-triple-style protocol:

* **offline** -- the client samples random masks ``Rc`` for both operands and
  sends their encryptions (column- and row-packed: the paper's ``Enc(Rc)``
  and ``Enc(Rc^T)``).  The products involving only masks are prepared before
  the input arrives (for the weighted/combined variants this takes a short
  interactive sub-protocol, still entirely offline).
* **online** -- the server holds the blinded operands in plaintext, computes
  ``tmp1`` locally, corrects it with the encrypted cross terms, masks with a
  fresh ``Rs`` and returns one ciphertext batch.  Decryption gives the client
  its additive share of the product.

Three product forms are supported, selected by the constructor:

==================  =======================  ==========================
mode                computes                 used for
==================  =======================  ==========================
plain               ``L @ R^T`` or ``L @ R``  Q@K^T, A@V (Primer-F)
middle_weights M    ``L @ M @ L'^T``          combined QKV+Q@K^T (CHGS)
right_weights W     ``L @ (R @ W)``           combined V-projection+A@V
==================  =======================  ==========================

In the weighted modes the server's weight matrices are folded into the
product so the separate HGS projections disappear -- that is exactly the
"computation merge" of Primer-FPC, and it is what collapses four
interactions into one.

Implementation note on packing: to add the two encrypted cross terms the
paper relies on packing rotations.  We instead mask each cross term with an
independent half of ``Rs`` and let the client add the two decryptions; the
message count, the privacy argument (everything the client sees is masked by
uniform randomness) and the offline/online split are unchanged, and the slot
re-arrangements that *are* required (for the weighted value product) go
through :func:`repro.he.matmul.repack_columns_to_rows`, which charges its
rotations to the tracker.

**Block-diagonal slot sharing** (``prepare(share_slots=k)`` +
:meth:`FHGSMatmul.online_batch`): the attention of a ``k``-request serving
batch is block-diagonal over requests, so the online cross terms of all
``k`` requests pack into *shared* ciphertext slots -- request ``r`` occupies
slot block ``r`` of each cross-term ciphertext.  The client tiles its
encrypted mask packings ``k`` times at encryption time (same ciphertext
count, more occupied slots) during the offline phase; online, one
slot-wise plaintext product per (handle, output row/column) covers the
whole batch, so a ``k``-request batch ships -- and computes -- ``~1/k`` the
cross-term ciphertexts of ``k`` independent runs.  The server masks every
slot block with fresh ``Rs`` randomness before shipping, preserving the
share-uniformity argument verbatim.

Domain residency: the mask packings this module keeps for the online cross
terms are EVAL-form (NTT-resident) handles on the default backend, so each
online cross-term product pays at most one forward transform (the
data-dependent coefficient vector) instead of the five-transform round
trip of a coefficient-resident pipeline, and the only inverse is at the
client's decrypt.  The slot repacking of the weighted mode pre-transforms
its static row selectors once each (see
:func:`repro.he.matmul.repack_columns_to_rows`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ProtocolError, ShapeError
from ..fixedpoint.encoding import FixedPointFormat
from ..he.backend import HEBackend
from ..he.matmul import (
    PackedMatrix,
    enc_times_plain,
    encrypt_matrix_columns,
    encrypt_matrix_rows,
    plain_times_enc,
    repack_columns_to_rows,
    tile_packed,
)
from ..mpc.sharing import AdditiveSharing, SharedValue
from .channel import Channel, Phase
from .formats import PROTOCOL_FORMAT
from .plan import FHGSPlan

__all__ = ["FHGSMatmul"]


@dataclass
class FHGSMatmul:
    """Private product of two shared matrices with optional weight folding."""

    left_shape: tuple[int, int]
    right_shape: tuple[int, int]
    backend: HEBackend
    sharing: AdditiveSharing
    channel: Channel
    step: str
    transpose_right: bool = True
    #: server-held middle weights M: computes L @ M @ R^T (CHGS scores).
    middle_weights: np.ndarray | None = None
    #: server-held right weights W: computes L @ (R @ W) (combined A @ X @ W_V).
    right_weights: np.ndarray | None = None
    fmt: FixedPointFormat = PROTOCOL_FORMAT
    seed: int | None = None

    # installed offline artifact (see protocols/plan.py)
    _plan: FHGSPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.middle_weights is not None and self.right_weights is not None:
            raise ProtocolError("middle_weights and right_weights are mutually exclusive")
        if self.middle_weights is not None:
            self.middle_weights = np.asarray(self.middle_weights, dtype=np.int64)
            if not self.transpose_right:
                raise ProtocolError("middle_weights requires transpose_right=True")
            if self.middle_weights.shape != (self.left_shape[1], self.right_shape[1]):
                raise ShapeError(
                    f"middle weights shape {self.middle_weights.shape} incompatible "
                    f"with operands {self.left_shape}, {self.right_shape}"
                )
        elif self.right_weights is not None:
            self.right_weights = np.asarray(self.right_weights, dtype=np.int64)
            if self.transpose_right:
                raise ProtocolError("right_weights requires transpose_right=False")
            if self.right_weights.shape[0] != self.right_shape[1]:
                raise ShapeError(
                    f"right weights shape {self.right_weights.shape} incompatible "
                    f"with right operand {self.right_shape}"
                )
            if self.left_shape[1] != self.right_shape[0]:
                raise ShapeError(
                    f"cannot form L @ R with shapes {self.left_shape}, {self.right_shape}"
                )
        else:
            inner_left = self.left_shape[1]
            inner_right = self.right_shape[1] if self.transpose_right else self.right_shape[0]
            if inner_left != inner_right:
                raise ShapeError(
                    f"cannot multiply shapes {self.left_shape} and {self.right_shape} "
                    f"(transpose_right={self.transpose_right})"
                )
        self._rng = np.random.default_rng(self.seed)

    @property
    def output_shape(self) -> tuple[int, int]:
        if self.right_weights is not None:
            return (self.left_shape[0], self.right_weights.shape[1])
        if self.transpose_right:
            return (self.left_shape[0], self.right_shape[0])
        return (self.left_shape[0], self.right_shape[1])

    # -- offline phase ---------------------------------------------------------
    def prepare(self, *, phase: Phase = Phase.OFFLINE, share_slots: int = 1) -> FHGSPlan:
        """Exchange encrypted masks and return the offline artifact.

        ``share_slots=k`` (k > 1) additionally prepares *tiled* mask
        packings -- each packed vector replicated ``k`` times inside its
        ciphertext -- enabling the block-diagonal :meth:`online_batch` path
        that serves up to ``k`` compatible requests with one set of
        cross-term ciphertexts.  Tiling the client-held masks is free at
        encryption time; the server-computed weighted packing is tiled
        homomorphically (rotations charged to this phase).

        The returned :class:`FHGSPlan` is not adopted -- pass it to
        :meth:`install`, or call :meth:`offline` which composes the two.
        """
        modulus = self.sharing.modulus
        if share_slots < 1:
            raise ProtocolError("share_slots must be at least 1")
        left_mask = self._rng.integers(0, modulus, size=self.left_shape, dtype=np.int64)
        right_mask = self._rng.integers(0, modulus, size=self.right_shape, dtype=np.int64)

        enc_left_cols = encrypt_matrix_columns(self.backend, left_mask)
        right_for_rows = right_mask.T if self.transpose_right else right_mask
        enc_right_rows = encrypt_matrix_rows(self.backend, right_for_rows)
        enc_right_cols = encrypt_matrix_columns(self.backend, right_mask)
        total_cts = (
            len(enc_left_cols.handles)
            + len(enc_right_rows.handles)
            + len(enc_right_cols.handles)
        )
        self.channel.send(
            "client", "server", total_cts * self.backend.ciphertext_bytes,
            description="Enc(Rc), Enc(Rc^T)", step=self.step, phase=phase,
        )

        enc_left_cols_tiled: PackedMatrix | None = None
        enc_right_rows_tiled: PackedMatrix | None = None
        if share_slots > 1:
            # The masks are the client's own randomness, so the tiled
            # packings cost the same number of ciphertexts -- only more
            # occupied slots -- and travel alongside the plain ones.
            enc_left_cols_tiled = encrypt_matrix_columns(
                self.backend, np.tile(left_mask, (share_slots, 1))
            )
            enc_right_rows_tiled = encrypt_matrix_rows(
                self.backend, np.tile(right_for_rows, (1, share_slots))
            )
            tiled_cts = (
                len(enc_left_cols_tiled.handles) + len(enc_right_rows_tiled.handles)
            )
            self.channel.send(
                "client", "server", tiled_cts * self.backend.ciphertext_bytes,
                description=f"Enc(Rc) tiled x{share_slots}", step=self.step,
                phase=phase,
            )

        enc_weighted_right_rows: PackedMatrix | None = None
        enc_weighted_right_rows_tiled: PackedMatrix | None = None
        if self.middle_weights is not None:
            quad_client, quad_server = self._prepare_quadratic_middle(
                left_mask, right_mask, enc_left_cols, enc_right_rows, phase
            )
        elif self.right_weights is not None:
            quad_client, quad_server, enc_weighted_right_rows = (
                self._prepare_quadratic_right(left_mask, enc_left_cols, enc_right_cols, phase)
            )
            if share_slots > 1:
                # Server-computed packing: tiled homomorphically (stays on
                # the server, so no extra wire traffic).
                enc_weighted_right_rows_tiled = tile_packed(
                    self.backend, enc_weighted_right_rows, share_slots
                )
        else:
            # Both masks are the client's own randomness, so the client
            # computes the mask product locally (the Enc(Rc^T x Rc) term).
            if self.transpose_right:
                quad_client = np.mod(left_mask @ right_mask.T, modulus)
            else:
                quad_client = np.mod(left_mask @ right_mask, modulus)
            quad_server = np.zeros_like(quad_client)

        return FHGSPlan(
            left_mask=left_mask,
            right_mask=right_mask,
            enc_left_cols=enc_left_cols,
            enc_right_rows=enc_right_rows,
            quad_client=quad_client,
            quad_server=quad_server,
            enc_weighted_right_rows=enc_weighted_right_rows,
            slot_sharing=share_slots,
            enc_left_cols_tiled=enc_left_cols_tiled,
            enc_right_rows_tiled=enc_right_rows_tiled,
            enc_weighted_right_rows_tiled=enc_weighted_right_rows_tiled,
        )

    def install(self, plan: FHGSPlan) -> None:
        """Adopt a prepared offline artifact; ``online()`` may run after this."""
        if not isinstance(plan, FHGSPlan):
            raise ProtocolError(
                f"FHGS '{self.step}' cannot install a {type(plan).__name__}"
            )
        if plan.operand_shapes != (self.left_shape, self.right_shape):
            raise ShapeError(
                f"plan operand shapes {plan.operand_shapes} do not match "
                f"module shapes {self.left_shape}/{self.right_shape}"
            )
        if self.right_weights is not None and plan.enc_weighted_right_rows is None:
            raise ProtocolError(
                f"FHGS '{self.step}' needs a right-weighted plan "
                "(enc_weighted_right_rows missing)"
            )
        self._plan = plan

    def offline(self, *, phase: Phase = Phase.OFFLINE, share_slots: int = 1) -> None:
        """Prepare and immediately install the offline artifact."""
        self.install(self.prepare(phase=phase, share_slots=share_slots))

    @property
    def plan(self) -> FHGSPlan:
        """The installed offline artifact."""
        if self._plan is None:
            raise ProtocolError("offline phase has not been run")
        return self._plan

    def _prepare_quadratic_middle(
        self,
        left_mask: np.ndarray,
        right_mask: np.ndarray,
        enc_left_cols: PackedMatrix,
        enc_right_rows: PackedMatrix,
        phase: Phase,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Offline sharing of ``RcL @ M @ RcR^T`` when M is server-held."""
        modulus = self.sharing.modulus
        n_left = self.left_shape[0]
        n_right = self.right_shape[0]
        dim = self.middle_weights.shape[1]

        # Server: Enc(RcL @ M) - S, sent to the client.
        enc_left_m = enc_times_plain(self.backend, enc_left_cols, self.middle_weights)
        blinding = self._rng.integers(0, modulus, size=(n_left, dim), dtype=np.int64)
        masked = [
            self.backend.add_plain(handle, np.mod(-blinding[:, j], modulus))
            for j, handle in enumerate(enc_left_m.handles)
        ]
        self.channel.send(
            "server", "client", len(masked) * self.backend.ciphertext_bytes,
            description="Enc(RcL @ M - S)", step=self.step, phase=phase,
        )
        decrypted = np.zeros((n_left, dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked)):
            decrypted[:, j] = values[:n_left]

        # Client part: (RcL @ M - S) @ RcR^T.
        client_part = np.mod(decrypted @ right_mask.T, modulus)

        # The leftover S @ RcR^T is linear in the encrypted mask, so the
        # server computes it homomorphically and the parties share it.
        enc_leftover = plain_times_enc(self.backend, blinding, enc_right_rows)
        leftover_mask = self._rng.integers(0, modulus, size=(n_left, n_right), dtype=np.int64)
        masked_leftover = [
            self.backend.add_plain(handle, np.mod(-leftover_mask[i, :], modulus))
            for i, handle in enumerate(enc_leftover.handles)
        ]
        self.channel.send(
            "server", "client", len(masked_leftover) * self.backend.ciphertext_bytes,
            description="Enc(S @ RcR^T - S2)", step=self.step, phase=phase,
        )
        leftover = np.zeros((n_left, n_right), dtype=np.int64)
        for i, values in enumerate(self.backend.decrypt_batch(masked_leftover)):
            leftover[i, :] = values[:n_right]

        return np.mod(client_part + leftover, modulus), leftover_mask

    def _prepare_quadratic_right(
        self,
        left_mask: np.ndarray,
        enc_left_cols: PackedMatrix,
        enc_right_cols: PackedMatrix,
        phase: Phase,
    ) -> tuple[np.ndarray, np.ndarray, PackedMatrix]:
        """Offline sharing of ``RcL @ (RcR @ W)`` when W is server-held.

        Also prepares the row-packed ``Enc(RcR @ W)`` needed by the online
        cross term, including the slot repacking rotations.
        """
        modulus = self.sharing.modulus
        n_left = self.left_shape[0]
        out_dim = self.right_weights.shape[1]
        inner = self.right_shape[0]

        # Server: Enc(RcR @ W), column-packed, then repacked row-wise for the
        # online plain x enc product (this is where the rotations go).
        enc_right_w_cols = enc_times_plain(self.backend, enc_right_cols, self.right_weights)
        enc_weighted_right_rows = repack_columns_to_rows(self.backend, enc_right_w_cols)

        # Server: Enc(RcR @ W) - S to the client.
        blinding = self._rng.integers(0, modulus, size=(inner, out_dim), dtype=np.int64)
        masked = [
            self.backend.add_plain(handle, np.mod(-blinding[:, j], modulus))
            for j, handle in enumerate(enc_right_w_cols.handles)
        ]
        self.channel.send(
            "server", "client", len(masked) * self.backend.ciphertext_bytes,
            description="Enc(RcR @ W - S)", step=self.step, phase=phase,
        )
        decrypted = np.zeros((inner, out_dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked)):
            decrypted[:, j] = values[:inner]

        client_part = np.mod(left_mask @ decrypted, modulus)

        # Leftover RcL @ S: server-plaintext times encrypted mask.
        enc_leftover = enc_times_plain(self.backend, enc_left_cols, blinding)
        leftover_mask = self._rng.integers(0, modulus, size=(n_left, out_dim), dtype=np.int64)
        masked_leftover = [
            self.backend.add_plain(handle, np.mod(-leftover_mask[:, j], modulus))
            for j, handle in enumerate(enc_leftover.handles)
        ]
        self.channel.send(
            "server", "client", len(masked_leftover) * self.backend.ciphertext_bytes,
            description="Enc(RcL @ S - S2)", step=self.step, phase=phase,
        )
        leftover = np.zeros((n_left, out_dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked_leftover)):
            leftover[:, j] = values[:n_left]

        return np.mod(client_part + leftover, modulus), leftover_mask, enc_weighted_right_rows

    @property
    def left_mask(self) -> np.ndarray:
        return self.plan.left_mask

    @property
    def right_mask(self) -> np.ndarray:
        return self.plan.right_mask

    # -- online phase ---------------------------------------------------------
    def online(self, shared_left: SharedValue, shared_right: SharedValue) -> SharedValue:
        """Compute shares of the product from shares of the two operands."""
        return self.online_batch([shared_left], [shared_right])[0]

    def online_batch(
        self,
        shared_lefts: list[SharedValue],
        shared_rights: list[SharedValue],
    ) -> list[SharedValue]:
        """Compute shares of ``k`` independent products in one online pass.

        On a slot-shared plan (``prepare(share_slots=k)``) the cross terms
        of up to ``slot_sharing`` requests pack block-diagonally into one
        set of shared ciphertexts; larger batches are chunked to that
        capacity, and a classic plan falls back to per-request execution.
        Results are bit-identical to ``k`` separate :meth:`online` calls.
        """
        if self._plan is None:
            raise ProtocolError(f"FHGS '{self.step}' used online before offline")
        if len(shared_lefts) != len(shared_rights) or not shared_lefts:
            raise ProtocolError(
                "online_batch needs equally many (and at least one) "
                "left/right operands"
            )
        capacity = max(1, self._plan.slot_sharing)
        results: list[SharedValue] = []
        for start in range(0, len(shared_lefts), capacity):
            lefts = shared_lefts[start: start + capacity]
            rights = shared_rights[start: start + capacity]
            if capacity == 1:
                results.extend(
                    self._online_single(left, right)
                    for left, right in zip(lefts, rights, strict=True)
                )
            else:
                results.extend(self._online_shared(lefts, rights))
        return results

    def _blind_operands(
        self, shared_left: SharedValue, shared_right: SharedValue
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Per-request blinded operands plus the correction bytes they cost."""
        plan = self._plan
        if shared_left.shape != self.left_shape or shared_right.shape != self.right_shape:
            raise ShapeError(
                f"operand shapes {shared_left.shape}/{shared_right.shape} do not "
                f"match offline shapes {self.left_shape}/{self.right_shape}"
            )
        modulus = self.sharing.modulus
        element_bytes = (self.fmt.total_bits + 7) // 8
        left_corr = np.mod(shared_left.client_share - plan.left_mask, modulus)
        right_corr = np.mod(shared_right.client_share - plan.right_mask, modulus)
        correction_bytes = 0
        if np.any(left_corr):
            correction_bytes += int(left_corr.size) * element_bytes
        if np.any(right_corr):
            correction_bytes += int(right_corr.size) * element_bytes
        left_blinded = np.mod(shared_left.server_share + left_corr, modulus)
        right_blinded = np.mod(shared_right.server_share + right_corr, modulus)
        return left_blinded, right_blinded, correction_bytes

    def _online_single(
        self, shared_left: SharedValue, shared_right: SharedValue
    ) -> SharedValue:
        """Classic per-request online phase (one request, untiled plan)."""
        # Client -> server: corrections so the server holds L - RcL and R - RcR.
        left_blinded, right_blinded, correction_bytes = self._blind_operands(
            shared_left, shared_right
        )
        if correction_bytes:
            self.channel.send(
                "client", "server", correction_bytes,
                description="blinded-operand corrections", step=self.step,
                phase=Phase.ONLINE,
            )
        if self.middle_weights is not None:
            return self._online_middle(left_blinded, right_blinded)
        if self.right_weights is not None:
            return self._online_right_weighted(left_blinded, right_blinded)
        return self._online_plain(left_blinded, right_blinded)

    # -- online variants ---------------------------------------------------------
    def _finish(
        self,
        tmp1: np.ndarray,
        cross_a: PackedMatrix,
        cross_b: PackedMatrix,
    ) -> SharedValue:
        """Mask the cross terms, ship them, and assemble the output sharing."""
        modulus = self.sharing.modulus
        out_rows, out_cols = tmp1.shape
        mask_a = self._rng.integers(0, modulus, size=(out_rows, out_cols), dtype=np.int64)
        mask_b = self._rng.integers(0, modulus, size=(out_rows, out_cols), dtype=np.int64)

        masked_a = [
            self.backend.add_plain(handle, np.mod(-mask_a[i, :], modulus))
            for i, handle in enumerate(cross_a.handles)
        ]
        masked_b = [
            self.backend.add_plain(handle, np.mod(-mask_b[:, j], modulus))
            for j, handle in enumerate(cross_b.handles)
        ]
        num_cts = len(masked_a) + len(masked_b)
        self.channel.send(
            "server", "client", num_cts * self.backend.ciphertext_bytes,
            description="Enc(cross terms - Rs)", step=self.step, phase=Phase.ONLINE,
        )

        dec_a = np.zeros((out_rows, out_cols), dtype=np.int64)
        for i, values in enumerate(self.backend.decrypt_batch(masked_a)):
            dec_a[i, :] = values[:out_cols]
        dec_b = np.zeros((out_rows, out_cols), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked_b)):
            dec_b[:, j] = values[:out_rows]

        plan = self.plan
        client_share = np.mod(dec_a + dec_b + plan.quad_client, modulus)
        server_share = np.mod(tmp1 + mask_a + mask_b + plan.quad_server, modulus)
        return SharedValue(client_share=client_share, server_share=server_share, modulus=modulus)

    def _online_plain(self, left_blinded: np.ndarray, right_blinded: np.ndarray) -> SharedValue:
        modulus = self.sharing.modulus
        right_blinded_t = right_blinded.T if self.transpose_right else right_blinded
        tmp1 = np.mod(left_blinded @ right_blinded_t, modulus)
        # cross_a = Lb @ RcR^T, cross_b = RcL @ Rb^T
        cross_a = plain_times_enc(self.backend, left_blinded, self.plan.enc_right_rows)
        cross_b = enc_times_plain(self.backend, self.plan.enc_left_cols, right_blinded_t)
        return self._finish(tmp1, cross_a, cross_b)

    def _online_middle(self, left_blinded: np.ndarray, right_blinded: np.ndarray) -> SharedValue:
        modulus = self.sharing.modulus
        weights = self.middle_weights
        left_m = np.mod(left_blinded @ weights, modulus)
        tmp1 = np.mod(left_m @ right_blinded.T, modulus)
        # cross_a = (Lb @ M) @ RcR^T, cross_b = RcL @ (M @ Rb^T)
        cross_a = plain_times_enc(self.backend, left_m, self.plan.enc_right_rows)
        cross_b = enc_times_plain(
            self.backend, self.plan.enc_left_cols, np.mod(weights @ right_blinded.T, modulus)
        )
        return self._finish(tmp1, cross_a, cross_b)

    def _online_right_weighted(
        self, left_blinded: np.ndarray, right_blinded: np.ndarray
    ) -> SharedValue:
        modulus = self.sharing.modulus
        weights = self.right_weights
        right_weighted = np.mod(right_blinded @ weights, modulus)
        tmp1 = np.mod(left_blinded @ right_weighted, modulus)
        # cross_a = Lb @ (RcR @ W), cross_b = RcL @ (Rb @ W)
        cross_a = plain_times_enc(self.backend, left_blinded, self.plan.enc_weighted_right_rows)
        cross_b = enc_times_plain(self.backend, self.plan.enc_left_cols, right_weighted)
        return self._finish(tmp1, cross_a, cross_b)

    # -- block-diagonal slot-shared online phase --------------------------------
    def _shared_sides(
        self, left_blinded: list[np.ndarray], right_blinded: list[np.ndarray]
    ) -> tuple[list[np.ndarray], list[np.ndarray], PackedMatrix, PackedMatrix]:
        """Per-request cross-term coefficient matrices plus the tiled packings.

        In every mode the online output decomposes as ``tmp1 + a_side @
        Enc(row-packed mask) + Enc(column-packed mask) @ b_side + quad``
        with ``tmp1 = left_blinded @ b_side``; only the coefficient
        matrices differ per mode.
        """
        plan = self._plan
        modulus = self.sharing.modulus
        if self.middle_weights is not None:
            weights = self.middle_weights
            a_sides = [np.mod(lb @ weights, modulus) for lb in left_blinded]
            b_sides = [np.mod(weights @ rb.T, modulus) for rb in right_blinded]
            rowpack = plan.enc_right_rows_tiled
        elif self.right_weights is not None:
            weights = self.right_weights
            a_sides = list(left_blinded)
            b_sides = [np.mod(rb @ weights, modulus) for rb in right_blinded]
            rowpack = plan.enc_weighted_right_rows_tiled
        else:
            a_sides = list(left_blinded)
            b_sides = [
                rb.T if self.transpose_right else rb for rb in right_blinded
            ]
            rowpack = plan.enc_right_rows_tiled
        colpack = plan.enc_left_cols_tiled
        if rowpack is None or colpack is None:
            raise ProtocolError(
                f"FHGS '{self.step}' plan has no tiled packings; prepare with "
                "share_slots > 1 for slot-shared batches"
            )
        return a_sides, b_sides, rowpack, colpack

    def _online_shared(
        self, shared_lefts: list[SharedValue], shared_rights: list[SharedValue]
    ) -> list[SharedValue]:
        """Online phase of up to ``slot_sharing`` requests with shared slots."""
        modulus = self.sharing.modulus
        blinded = [
            self._blind_operands(left, right)
            for left, right in zip(shared_lefts, shared_rights, strict=True)
        ]
        correction_bytes = sum(entry[2] for entry in blinded)
        if correction_bytes:
            self.channel.send(
                "client", "server", correction_bytes,
                description="blinded-operand corrections (slot-shared batch)",
                step=self.step, phase=Phase.ONLINE,
            )
        left_blinded = [entry[0] for entry in blinded]
        right_blinded = [entry[1] for entry in blinded]
        a_sides, b_sides, rowpack, colpack = self._shared_sides(
            left_blinded, right_blinded
        )
        tmp1s = [
            np.mod(lb @ b_side, modulus)
            for lb, b_side in zip(left_blinded, b_sides, strict=True)
        ]
        cross_a, cross_b = self._shared_cross_terms(a_sides, b_sides, rowpack, colpack)
        return self._finish_shared(len(blinded), tmp1s, cross_a, cross_b)

    def _shared_cross_terms(
        self,
        a_sides: list[np.ndarray],
        b_sides: list[np.ndarray],
        rowpack: PackedMatrix,
        colpack: PackedMatrix,
    ) -> tuple[list, list]:
        """Both cross terms of the whole chunk, block-diagonally packed.

        Cross-term A ciphertext ``i`` holds, at slot block ``r``, request
        ``r``'s output row ``i`` of ``a_side_r @ RcR``-side; cross-term B
        ciphertext ``j`` holds the output columns analogously.  One
        slot-wise plaintext product per (handle, row/column) covers every
        request -- the coefficient vector is block-constant, request ``r``'s
        coefficient repeated over block ``r``'s slots.
        """
        plan = self._plan
        capacity = plan.slot_sharing
        rows, cols = self.output_shape
        # The two cross terms contract over different packings (they differ
        # in the middle-weighted mode): A against the row-packed mask, B
        # against the column-packed one.
        inner_a = len(rowpack.handles)
        inner_b = len(colpack.handles)
        t = self.backend.plaintext_modulus
        a_pad = np.zeros((capacity, rows, inner_a), dtype=np.int64)
        a_pad[: len(a_sides)] = np.mod(np.stack(a_sides), t)
        b_pad = np.zeros((capacity, inner_b, cols), dtype=np.int64)
        b_pad[: len(b_sides)] = np.mod(np.stack(b_sides), t)
        # Block-constant coefficient vectors, built in one vectorized pass:
        # a_vecs[i, m] repeats request r's a[r, i, m] over block r (len cols).
        a_vecs = np.repeat(a_pad.transpose(1, 2, 0), cols, axis=2)
        b_vecs = np.repeat(b_pad.transpose(1, 2, 0), rows, axis=2)

        cross_a = []
        for i in range(rows):
            acc = None
            for m in range(inner_a):
                vec = a_vecs[i, m]
                if not vec.any():
                    continue
                term = self.backend.mul_plain(rowpack.handles[m], vec)
                acc = term if acc is None else self.backend.add(acc, term)
            cross_a.append(acc if acc is not None else self.backend.zero(capacity * cols))
        cross_b = []
        for j in range(cols):
            acc = None
            for m in range(inner_b):
                vec = b_vecs[m, j]
                if not vec.any():
                    continue
                term = self.backend.mul_plain(colpack.handles[m], vec)
                acc = term if acc is None else self.backend.add(acc, term)
            cross_b.append(acc if acc is not None else self.backend.zero(capacity * rows))
        return cross_a, cross_b

    def _finish_shared(
        self, k: int, tmp1s: list[np.ndarray], cross_a: list, cross_b: list
    ) -> list[SharedValue]:
        """Mask every slot block, ship one shared cross-term set, split."""
        plan = self._plan
        modulus = self.sharing.modulus
        capacity = plan.slot_sharing
        rows, cols = self.output_shape
        # Fresh Rs over *every* block (also the unoccupied ones) keeps the
        # client's view uniformly masked regardless of the batch size.
        mask_a = self._rng.integers(0, modulus, size=(rows, capacity * cols), dtype=np.int64)
        mask_b = self._rng.integers(0, modulus, size=(cols, capacity * rows), dtype=np.int64)
        masked_a = [
            self.backend.add_plain(handle, np.mod(-mask_a[i], modulus))
            for i, handle in enumerate(cross_a)
        ]
        masked_b = [
            self.backend.add_plain(handle, np.mod(-mask_b[j], modulus))
            for j, handle in enumerate(cross_b)
        ]
        num_cts = len(masked_a) + len(masked_b)
        self.channel.send(
            "server", "client", num_cts * self.backend.ciphertext_bytes,
            description="Enc(cross terms - Rs)", step=self.step, phase=Phase.ONLINE,
        )

        # Handles may carry trailing zero slots (full-width repacked rows);
        # only the first ``capacity`` blocks are meaningful.
        dec_a = np.zeros((rows, capacity * cols), dtype=np.int64)
        for i, values in enumerate(self.backend.decrypt_batch(masked_a)):
            usable = values[: capacity * cols]
            dec_a[i, : usable.size] = usable
        dec_b = np.zeros((cols, capacity * rows), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked_b)):
            usable = values[: capacity * rows]
            dec_b[j, : usable.size] = usable

        results = []
        for r in range(k):
            dec_a_r = dec_a[:, r * cols: (r + 1) * cols]
            dec_b_r = dec_b[:, r * rows: (r + 1) * rows].T
            mask_a_r = mask_a[:, r * cols: (r + 1) * cols]
            mask_b_r = mask_b[:, r * rows: (r + 1) * rows].T
            client_share = np.mod(dec_a_r + dec_b_r + plan.quad_client, modulus)
            server_share = np.mod(
                tmp1s[r] + mask_a_r + mask_b_r + plan.quad_server, modulus
            )
            results.append(
                SharedValue(
                    client_share=client_share, server_share=server_share,
                    modulus=modulus,
                )
            )
        return results
