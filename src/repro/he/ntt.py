"""Number-theoretic transform over ``Z_q[X]/(X^N + 1)``.

The BFV backend needs fast negacyclic polynomial multiplication.  We use the
standard negative-wrapped-convolution NTT: multiply the coefficient vector by
powers of ``psi`` (a primitive 2N-th root of unity mod q), apply a length-N
NTT with root ``psi**2``, multiply pointwise, invert, and undo the psi
twist.  All arithmetic stays inside ``numpy.int64``; this is safe because the
moduli used by :mod:`repro.he.params` are below 2**30 so intermediate products
fit in 62 bits.

The implementation favours clarity over raw speed (iterative Cooley-Tukey
with precomputed twiddle tables); the exact backend is only used at small
ring dimensions in tests and examples, while model-scale runs use the
functional backend in :mod:`repro.he.simulated`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError

__all__ = ["is_prime", "find_ntt_prime", "primitive_root", "NTTContext"]


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_prime(bits: int, ring_degree: int) -> int:
    """Find the largest prime below ``2**bits`` congruent to 1 mod ``2*ring_degree``.

    Such a prime guarantees the existence of a primitive ``2N``-th root of
    unity, which the negacyclic NTT requires.
    """
    if bits < 4 or bits > 30:
        raise ParameterError(f"NTT prime bits must be in [4, 30], got {bits}")
    step = 2 * ring_degree
    candidate = ((1 << bits) // step) * step + 1
    while candidate > step:
        if candidate < (1 << bits) and is_prime(candidate):
            return candidate
        candidate -= step
    raise ParameterError(
        f"no NTT-friendly prime below 2**{bits} for ring degree {ring_degree}"
    )


def primitive_root(modulus: int) -> int:
    """Find a generator of the multiplicative group of ``Z_modulus`` (prime)."""
    order = modulus - 1
    factors = _prime_factors(order)
    for g in range(2, modulus):
        if all(pow(g, order // f, modulus) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for modulus {modulus}")


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        reversed_indices |= ((indices >> b) & 1) << (bits - 1 - b)
    return reversed_indices


@dataclass
class NTTContext:
    """Precomputed tables for negacyclic NTT over ``Z_q[X]/(X^N + 1)``.

    Parameters
    ----------
    ring_degree:
        Power-of-two polynomial degree ``N``.
    modulus:
        Prime ``q`` with ``q ≡ 1 (mod 2N)``.
    """

    ring_degree: int
    modulus: int
    _psi_powers: np.ndarray = field(init=False, repr=False)
    _psi_inv_powers: np.ndarray = field(init=False, repr=False)
    _omega_stages: list[np.ndarray] = field(init=False, repr=False)
    _omega_inv_stages: list[np.ndarray] = field(init=False, repr=False)
    _n_inv: int = field(init=False, repr=False)
    _bitrev: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.ring_degree
        q = self.modulus
        if n < 2 or n & (n - 1) != 0:
            raise ParameterError(f"ring degree must be a power of two, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(
                f"modulus {q} is not congruent to 1 mod 2*{n}; NTT unavailable"
            )
        if not is_prime(q):
            raise ParameterError(f"modulus {q} must be prime for the NTT backend")
        g = primitive_root(q)
        psi = pow(g, (q - 1) // (2 * n), q)
        psi_inv = pow(psi, q - 2, q)
        omega = psi * psi % q
        omega_inv = pow(omega, q - 2, q)

        exps = np.arange(n, dtype=object)
        self._psi_powers = np.array(
            [pow(psi, int(e), q) for e in exps], dtype=np.int64
        )
        self._psi_inv_powers = np.array(
            [pow(psi_inv, int(e), q) for e in exps], dtype=np.int64
        )
        self._n_inv = pow(n, q - 2, q)
        self._bitrev = _bit_reverse_indices(n)
        self._omega_stages = self._twiddle_stages(omega)
        self._omega_inv_stages = self._twiddle_stages(omega_inv)

    def _twiddle_stages(self, root: int) -> list[np.ndarray]:
        """Precompute per-stage twiddle factors for the iterative NTT."""
        n = self.ring_degree
        q = self.modulus
        stages = []
        length = 2
        while length <= n:
            base = pow(root, n // length, q)
            tw = np.array(
                [pow(base, i, q) for i in range(length // 2)], dtype=np.int64
            )
            stages.append(tw)
            length *= 2
        return stages

    # -- core transforms ---------------------------------------------------
    def _transform(self, coeffs: np.ndarray, stages: list[np.ndarray]) -> np.ndarray:
        n = self.ring_degree
        q = self.modulus
        a = coeffs[self._bitrev].astype(np.int64).copy()
        length = 2
        for tw in stages:
            half = length // 2
            a = a.reshape(-1, length)
            lo = a[:, :half].copy()
            hi = a[:, half:]
            t = (hi * tw) % q
            a[:, :half] = (lo + t) % q
            a[:, half:] = (lo - t) % q
            a = a.reshape(-1)
            length *= 2
        return a.reshape(n)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT of a coefficient vector."""
        q = self.modulus
        twisted = (np.asarray(coeffs, dtype=np.int64) % q) * self._psi_powers % q
        return self._transform(twisted, self._omega_stages)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT back to coefficients."""
        q = self.modulus
        a = self._transform(np.asarray(values, dtype=np.int64) % q, self._omega_inv_stages)
        a = a * self._n_inv % q
        return a * self._psi_inv_powers % q

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two coefficient vectors mod ``q``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % self.modulus)
