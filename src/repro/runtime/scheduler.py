"""Request queue and batch formation for the batch-serving runtime.

The serving layer accepts many independent private-inference requests and
groups *compatible* ones — same model, same protocol variant, same request
kind — into batches so that they can share the expensive cryptographic
state: one engine (keys, offline HGS/FHGS pre-processing, cached NTT
contexts) per compatibility key, and, for linear requests, shared ciphertext
slot space via the tokens-first layout.

Scheduling policy is FIFO-with-compatibility: the head of the queue always
defines the next batch's key, and the batch is filled with the oldest
compatible requests (in arrival order) up to ``max_batch_size``.  A request
can never be overtaken by a *compatible* later arrival, so per-key service
order is strictly first-come-first-served, and the head request itself is
never starved.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError

__all__ = ["BatchKey", "InferenceRequest", "Batch", "BatchScheduler"]


@dataclass(frozen=True)
class BatchKey:
    """Compatibility key: requests sharing a key may share a batch."""

    kind: str      #: ``"inference"`` (full Primer run) or ``"linear"`` (X @ W)
    model: str     #: registered model or weight-matrix name
    variant: str   #: Primer variant name ("" for linear requests)


@dataclass
class InferenceRequest:
    """One queued serving request.

    ``payload`` is the token-id vector for ``kind == "inference"`` and the
    token-by-feature input matrix for ``kind == "linear"``.
    """

    request_id: str
    key: BatchKey
    payload: Any
    submitted_at: float = field(default_factory=time.perf_counter)
    sequence: int = 0


@dataclass
class Batch:
    """A group of compatible requests scheduled to run together."""

    batch_id: int
    key: BatchKey
    requests: list[InferenceRequest]

    def __len__(self) -> int:
        return len(self.requests)


class BatchScheduler:
    """FIFO queue that groups compatible requests into bounded batches."""

    def __init__(self, max_batch_size: int = 8) -> None:
        if max_batch_size < 1:
            raise ProtocolError("max_batch_size must be at least 1")
        self.max_batch_size = max_batch_size
        self._queue: deque[InferenceRequest] = deque()
        self._sequence = itertools.count()
        self._batch_ids = itertools.count()

    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Enqueue a request, stamping its arrival order."""
        request.sequence = next(self._sequence)
        self._queue.append(request)
        return request

    def pending(self) -> int:
        """Number of queued (not yet batched) requests."""
        return len(self._queue)

    def pending_keys(self) -> list[BatchKey]:
        """Distinct compatibility keys still queued, in arrival order."""
        seen: list[BatchKey] = []
        for request in self._queue:
            if request.key not in seen:
                seen.append(request.key)
        return seen

    def next_batch(self) -> Batch | None:
        """Form the next batch: the queue head plus its oldest compatible peers.

        Requests with other keys keep their queue position, so an
        incompatible burst cannot push an older request backwards.
        """
        if not self._queue:
            return None
        key = self._queue[0].key
        taken: list[InferenceRequest] = []
        remaining: deque[InferenceRequest] = deque()
        while self._queue:
            request = self._queue.popleft()
            if request.key == key and len(taken) < self.max_batch_size:
                taken.append(request)
            else:
                remaining.append(request)
        self._queue = remaining
        return Batch(batch_id=next(self._batch_ids), key=key, requests=taken)

    def drain(self) -> list[Batch]:
        """Form batches until the queue is empty."""
        batches = []
        while True:
            batch = self.next_batch()
            if batch is None:
                return batches
            batches.append(batch)
