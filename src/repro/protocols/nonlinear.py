"""Garbled-circuit evaluation of non-polynomial functions on secret shares.

Primer evaluates SoftMax, GELU, tanh and the LayerNorm division/rsqrt under
garbled circuits so that no polynomial approximation (and therefore no
accuracy loss) is introduced.  The flow for every such function ``F`` is the
one Figure 4 of the paper encapsulates:

1. the two parties feed their additive shares of ``X`` into the circuit,
2. the circuit reconstructs ``X`` by modular addition, evaluates ``F`` in
   fixed point, and subtracts a fresh client mask ``Rc'``,
3. the server learns ``F(X) - Rc'`` and the client keeps ``Rc'``, so the
   output is again additively shared.

This module provides two layers:

* :class:`GCNonlinearEvaluator` -- the functional implementation used inside
  full protocol runs.  Values are computed exactly (reconstruct, evaluate the
  fixed-point function, re-share), while the Boolean-circuit *cost* (AND
  gates, garbled-table bytes, one round of interaction) is charged to the
  channel and tracker.  The gate-count formulas are anchored to the real
  circuits in :mod:`repro.mpc.gc.circuits`, whose sizes the test-suite checks.
* :func:`garbled_share_relu` -- a fully garbled (no simulation boundary)
  share-ReLU used by tests and the worked examples to demonstrate that the
  GC engine really computes step 2 above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..fixedpoint.encoding import DEFAULT_FORMAT, FixedPointFormat, decode, encode
from ..mpc.gc.circuits import CircuitBuilder
from ..mpc.gc.evaluator import GarbledEvaluator
from ..mpc.gc.garbler import LABEL_BYTES, Garbler
from ..mpc.ot import ObliviousTransfer
from ..mpc.sharing import AdditiveSharing, SharedValue
from ..nn.activations import gelu, softmax
from .channel import Channel, Phase

__all__ = [
    "GCCostModel",
    "GCNonlinearEvaluator",
    "garbled_share_relu",
    "build_share_relu_circuit",
]


@dataclass(frozen=True)
class GCCostModel:
    """AND-gate counts for the word-level operations inside GC.

    The primitive counts (add, mux, compare) are exactly what
    :class:`~repro.mpc.gc.circuits.CircuitBuilder` produces for the given
    word size; the composite counts (multiply, divide, exponential, rsqrt)
    use standard circuit constructions (schoolbook multiplier, restoring
    divider, piecewise-polynomial exponential) expressed in those primitives.
    """

    word_bits: int = 15

    @property
    def add_gates(self) -> int:
        """Ripple-carry addition: one AND per bit plus one for the carry chain."""
        return 2 * self.word_bits

    @property
    def mux_gates(self) -> int:
        return self.word_bits

    @property
    def compare_gates(self) -> int:
        """Signed comparison = one subtraction."""
        return self.add_gates

    @property
    def relu_gates(self) -> int:
        """ReLU = sign test (free) + word mux."""
        return self.mux_gates

    @property
    def mul_gates(self) -> int:
        """Truncated fixed-point multiplication.

        Only the upper half of the partial-product triangle contributes to
        the truncated result, which is the standard GC-optimised fixed-point
        multiplier (roughly k*(k+1)/2 AND gates).
        """
        k = self.word_bits
        return k * (k + 1) // 2

    @property
    def div_gates(self) -> int:
        """Division via reciprocal lookup + two Newton iterations."""
        return 4 * self.mul_gates + 2 * self.add_gates

    @property
    def exp_gates(self) -> int:
        """Fixed-point exponential via piecewise-polynomial segments."""
        return self.mul_gates + 2 * self.add_gates + self.compare_gates

    @property
    def rsqrt_gates(self) -> int:
        """Inverse square root via two Newton iterations (3 muls each)."""
        return 2 * (3 * self.mul_gates + self.add_gates)

    # -- per-function totals ----------------------------------------------------
    def softmax_gates(self, vector_length: int) -> int:
        """SoftMax over a length-``L`` vector: L exp, L-1 max/adds, L divisions."""
        L = vector_length
        return (
            L * self.exp_gates
            + (L - 1) * (self.compare_gates + self.mux_gates)  # running max
            + (L - 1) * self.add_gates                          # denominator sum
            + L * self.div_gates
        )

    def gelu_gates(self) -> int:
        """GELU via a three-segment piecewise-polynomial circuit."""
        return self.mul_gates + 2 * self.compare_gates + 2 * self.add_gates + 2 * self.mux_gates

    def tanh_gates(self) -> int:
        """tanh via a three-segment piecewise-polynomial circuit."""
        return self.mul_gates + 2 * self.compare_gates + self.add_gates + 2 * self.mux_gates

    def layernorm_gates(self, dim: int) -> int:
        """LayerNorm over ``dim`` elements.

        The mean and the subtraction are linear and therefore free on secret
        shares; GC pays for the squared deviations, one reciprocal square
        root per row, and the per-element normalisation multiply.
        """
        return (
            dim * self.mul_gates                  # squared deviations
            + (dim - 1) * self.add_gates          # variance sum
            + self.rsqrt_gates
            + dim * self.mul_gates                # normalise (gamma folded in)
            + dim * self.add_gates                # beta shift
        )

    def share_reconstruction_gates(self) -> int:
        """Modular addition of the two input shares (one adder)."""
        return self.add_gates

    def output_masking_gates(self) -> int:
        """Subtraction of the fresh output mask (one adder)."""
        return self.add_gates

    def table_bytes(self, and_gates: int) -> int:
        """Garbled-table size: two rows per AND gate (half-gates garbling)."""
        return and_gates * 2 * LABEL_BYTES

    def input_label_bytes(self, num_input_bits: int) -> int:
        """One label per input bit (plus OT overhead for the evaluator's bits)."""
        return num_input_bits * LABEL_BYTES


class GCNonlinearEvaluator:
    """Evaluates non-polynomial functions on additive shares via (costed) GC."""

    def __init__(
        self,
        sharing: AdditiveSharing,
        channel: Channel,
        *,
        fmt: FixedPointFormat = DEFAULT_FORMAT,
        cost_model: GCCostModel | None = None,
        garble_offline: bool = True,
    ) -> None:
        self.sharing = sharing
        self.channel = channel
        self.fmt = fmt
        self.cost = cost_model if cost_model is not None else GCCostModel(fmt.total_bits)
        #: whether garbling (table transfer) is charged to the offline phase,
        #: as in every HGS-style protocol; Primer-base charges it online.
        self.garble_offline = garble_offline
        #: running count of AND gates evaluated online (for the cost model)
        self.online_and_gates = 0
        self.offline_and_gates = 0

    # -- internals ---------------------------------------------------------------
    def _charge(self, and_gates: int, input_words: int, step: str) -> None:
        """Charge garbling (offline or online) and evaluation (online) costs."""
        table_bytes = self.cost.table_bytes(and_gates)
        label_bytes = self.cost.input_label_bytes(input_words * self.fmt.total_bits)
        garble_phase = Phase.OFFLINE if self.garble_offline else Phase.ONLINE
        # Garbler -> evaluator: the tables (and the garbler's input labels).
        self.channel.send(
            "client", "server", table_bytes,
            description="garbled tables", step=step, phase=garble_phase,
        )
        # Online: evaluator's input labels via OT + the masked output share back.
        self.channel.send(
            "client", "server", label_bytes,
            description="input wire labels (OT)", step=step, phase=Phase.ONLINE,
        )
        self.channel.send(
            "server", "client", input_words * self.fmt.total_bits // 8 + 1,
            description="masked GC output share", step=step, phase=Phase.ONLINE,
        )
        if self.garble_offline:
            self.offline_and_gates += and_gates
        else:
            self.online_and_gates += and_gates
        self.online_and_gates += and_gates  # evaluation work is always online

    def _apply(
        self,
        shared: SharedValue,
        function,
        and_gates: int,
        step: str,
        *,
        input_frac_bits: int | None = None,
    ) -> SharedValue:
        """Reconstruct-inside-GC, evaluate ``function`` in fixed point, re-share.

        ``input_frac_bits`` gives the fractional precision of the incoming
        shares (products of two ``frac_bits`` operands carry ``2*frac_bits``
        fractional bits until truncated); the output is always re-encoded at
        the protocol's canonical ``frac_bits``.
        """
        in_fmt = self.fmt
        if input_frac_bits is not None and input_frac_bits != self.fmt.frac_bits:
            in_fmt = self.fmt.with_frac_bits(input_frac_bits)
        residues = shared.reconstruct()
        real = decode(residues, in_fmt)
        result = function(real)
        requantised = encode(result, self.fmt)
        self._charge(and_gates, input_words=int(np.prod(shared.shape)), step=step)
        return self.sharing.share(requantised)

    # -- public non-linear ops ---------------------------------------------------
    def softmax(
        self,
        shared_logits: SharedValue,
        *,
        step: str = "softmax",
        input_frac_bits: int | None = None,
        scale: float = 1.0,
    ) -> SharedValue:
        """Row-wise SoftMax on a shared matrix of attention scores.

        ``scale`` is the public pre-SoftMax factor (``1/sqrt(d_head)``); since
        it is public it is folded into the circuit's fixed-point evaluation
        rather than requiring a separate shared multiplication.
        """
        if len(shared_logits.shape) < 1:
            raise ShapeError("softmax expects at least a 1-D shared tensor")
        row_length = shared_logits.shape[-1]
        rows = int(np.prod(shared_logits.shape[:-1])) if len(shared_logits.shape) > 1 else 1
        gates = rows * (
            self.cost.softmax_gates(row_length)
            + self.cost.share_reconstruction_gates()
            + self.cost.output_masking_gates()
        )
        return self._apply(
            shared_logits,
            lambda x: softmax(x * scale, axis=-1),
            gates,
            step,
            input_frac_bits=input_frac_bits,
        )

    def gelu(
        self,
        shared: SharedValue,
        *,
        step: str = "gelu",
        input_frac_bits: int | None = None,
    ) -> SharedValue:
        """Element-wise GELU on a shared tensor."""
        elements = int(np.prod(shared.shape))
        gates = elements * (
            self.cost.gelu_gates()
            + self.cost.share_reconstruction_gates()
            + self.cost.output_masking_gates()
        )
        return self._apply(shared, gelu, gates, step, input_frac_bits=input_frac_bits)

    def tanh(
        self,
        shared: SharedValue,
        *,
        step: str = "tanh",
        input_frac_bits: int | None = None,
    ) -> SharedValue:
        """Element-wise tanh (used by the pooler head)."""
        elements = int(np.prod(shared.shape))
        gates = elements * (
            self.cost.tanh_gates()
            + self.cost.share_reconstruction_gates()
            + self.cost.output_masking_gates()
        )
        return self._apply(shared, np.tanh, gates, step, input_frac_bits=input_frac_bits)

    def layer_norm(
        self,
        shared: SharedValue,
        gamma: np.ndarray,
        beta: np.ndarray,
        *,
        eps: float = 1e-5,
        step: str = "layernorm",
        input_frac_bits: int | None = None,
    ) -> SharedValue:
        """Row-wise LayerNorm with public gamma/beta on a shared tensor."""
        dim = shared.shape[-1]
        rows = int(np.prod(shared.shape[:-1])) if len(shared.shape) > 1 else 1
        gates = rows * (
            self.cost.layernorm_gates(dim)
            + self.cost.share_reconstruction_gates()
            + self.cost.output_masking_gates()
        )

        def _ln(x: np.ndarray) -> np.ndarray:
            mean = np.mean(x, axis=-1, keepdims=True)
            var = np.var(x, axis=-1, keepdims=True)
            return gamma * (x - mean) / np.sqrt(var + eps) + beta

        return self._apply(shared, _ln, gates, step, input_frac_bits=input_frac_bits)

    def relu(
        self,
        shared: SharedValue,
        *,
        step: str = "relu",
        input_frac_bits: int | None = None,
    ) -> SharedValue:
        """Element-wise ReLU (provided for completeness / CryptoGRU-style models)."""
        elements = int(np.prod(shared.shape))
        gates = elements * (
            self.cost.relu_gates
            + self.cost.share_reconstruction_gates()
            + self.cost.output_masking_gates()
        )
        return self._apply(
            shared, lambda x: np.maximum(x, 0.0), gates, step,
            input_frac_bits=input_frac_bits,
        )

    def truncate(
        self,
        shared: SharedValue,
        *,
        step: str = "truncate",
        input_frac_bits: int | None = None,
    ) -> SharedValue:
        """Re-truncate a shared tensor back to the canonical fixed point.

        This is the paper's "intermediate results are truncated into 15 bits"
        step; inside GC the arithmetic shift is free, so only the share
        reconstruction and output masking adders are charged.
        """
        elements = int(np.prod(shared.shape))
        gates = elements * (
            self.cost.share_reconstruction_gates() + self.cost.output_masking_gates()
        )
        return self._apply(shared, lambda x: x, gates, step, input_frac_bits=input_frac_bits)


# ---------------------------------------------------------------------------
# Fully garbled share-ReLU (no simulation boundary) for tests and examples.
# ---------------------------------------------------------------------------

def build_share_relu_circuit(word_bits: int) -> tuple[CircuitBuilder, list[int], list[int], list[int]]:
    """Build the Figure-4 circuit: reconstruct shares, ReLU, subtract new mask.

    Inputs (in order): the client share, the server share, and the fresh
    output mask ``Rc'``.  Output: ``ReLU(x_c + x_s) - Rc'`` in the ring.
    """
    builder = CircuitBuilder(word_bits)
    client_share = builder.input_word()
    server_share = builder.input_word()
    fresh_mask = builder.input_word()
    reconstructed = builder.add_words(client_share, server_share)
    activated = builder.relu_word(reconstructed)
    masked = builder.sub_words(activated, fresh_mask)
    builder.mark_output(masked)
    return builder, client_share, server_share, fresh_mask


def garbled_share_relu(
    sharing: AdditiveSharing,
    shared: SharedValue,
    *,
    fmt: FixedPointFormat = DEFAULT_FORMAT,
    seed: int = 0,
) -> tuple[SharedValue, dict[str, int]]:
    """Run a real garbled evaluation of ReLU on every element of a sharing.

    The client garbles, the server evaluates (labels for the server's share
    obtained through the simulated OT), and the output is re-shared with a
    fresh client mask -- the exact module of Figure 4 with ``F = ReLU``.
    Returns the new sharing and statistics (AND gates, table bytes, OTs).
    """
    builder, _, _, _ = build_share_relu_circuit(fmt.total_bits)
    circuit = builder.circuit
    garbler = Garbler(seed=seed)
    garbled = garbler.garble(circuit)
    evaluator = GarbledEvaluator(garbled)
    ot = ObliviousTransfer()

    rng = np.random.default_rng(seed)
    flat_client = shared.client_share.reshape(-1)
    flat_server = shared.server_share.reshape(-1)
    new_client_mask = rng.integers(0, fmt.modulus, size=flat_client.size, dtype=np.int64)
    new_server = np.zeros_like(flat_server)

    label_pairs = garbler.input_label_pairs(circuit)
    word = fmt.total_bits
    for index in range(flat_client.size):
        bits = (
            builder.encode_value(int(flat_client[index]))
            + builder.encode_value(int(flat_server[index]))
            + builder.encode_value(int(new_client_mask[index]))
        )
        labels: dict[int, bytes] = {}
        for wire, bit in enumerate(bits):
            pair = label_pairs[wire]
            # Wires belonging to the server's share travel through OT; the
            # client's own wires are sent directly.
            if word <= wire < 2 * word:
                labels[wire] = ot.transfer(pair[0], pair[1], bit)
            else:
                labels[wire] = pair[bit]
        output_bits = evaluator.evaluate(labels)
        new_server[index] = builder.decode_bits(output_bits)

    result = SharedValue(
        client_share=new_client_mask.reshape(shared.shape),
        server_share=new_server.reshape(shared.shape),
        modulus=fmt.modulus,
    )
    stats = {
        "and_gates": circuit.and_gate_count() * flat_client.size,
        "table_bytes": garbled.table_bytes * flat_client.size,
        "ot_transfers": ot.stats.transfers,
    }
    return result, stats
