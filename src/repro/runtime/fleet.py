"""Client-side fleet router: health-checked placement over socket replicas.

The in-process half of ROADMAP item 1 is
:class:`~repro.runtime.executor.EngineShardMap`; this module is the same
idea across processes.  A :class:`FleetRouter` fronts N
:class:`~repro.runtime.net.ReplicaServer` replicas and gives callers the
exact :meth:`submit` / :meth:`submit_linear` surface of
:class:`~repro.runtime.frontdoor.AsyncServingRuntime` -- handles, typed
errors, synchronous :class:`~repro.errors.OverloadedError` -- while placing
each ``(model, variant)`` key on one replica, least-loaded on first sight
(so engine caches stay hot per replica, exactly like shard workers).

Failover ladder (every rung typed, none silent):

1. **Connection fault before any bytes were written** (``conn_send``
   injection, connect refusal) -- the request provably never reached the
   replica, so the router *re-routes* it to the next healthy replica.
2. **Connection fault after the frame may have been delivered** (ack
   timeout, connection death mid-wait) -- the router re-sends **to the same
   replica only**: the replica's request-id dedupe replays the original ack
   (or the finished result) instead of executing twice.
3. **Replica dead with acked requests unreported** -- on reconnect the
   router *fetches* finished results (never re-executes); if the replica is
   truly gone the affected handles fail typed
   (:class:`~repro.errors.RequestFailed` caused by
   :class:`~repro.errors.ReplicaLost`).  Re-executing elsewhere is never
   automatic: the dead replica may have executed the request already, and
   at-most-once beats guessing.
4. **Heartbeat loss** -- a replica that misses ``failure_threshold``
   consecutive heartbeats is quarantined behind a per-replica
   :class:`~repro.runtime.faults.CircuitBreaker`; after the cooldown the
   next heartbeat is its half-open probe, and one success returns it to
   rotation.
5. **Fleet exhaustion** -- zero placeable replicas falls back to a local
   in-process front door when the router was built with ``local_models``;
   otherwise submission raises :class:`~repro.errors.FleetUnavailable`
   carrying a ``retry_after_seconds`` hint derived from the soonest
   half-open probe.

Determinism: the protocol's logits do not depend on *where* a request
executes (see the front door's equivalence note), so any fault interleaving
that completes a request yields bit-identical logits to a single-process
serial drain -- the chaos tests assert exactly that while SIGKILLing
replicas mid-batch.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import socket
import threading
import time
from concurrent.futures import Future

import numpy as np

from ..errors import (
    FaultError,
    FleetUnavailable,
    OverloadedError,
    ProtocolError,
    ReplicaLost,
    RequestFailed,
)
from ..protocols.primer import PRIMER_FPC, PrimerVariant
from .faults import (
    SITE_REPLICA_CRASH,
    SITE_REPLICA_HEARTBEAT,
    CircuitBreaker,
    maybe_inject,
)
from .frontdoor import AsyncServingRuntime
from .net import (
    KIND_ACK,
    KIND_DRAIN,
    KIND_DRAIN_OK,
    KIND_ERROR,
    KIND_FETCH,
    KIND_HEARTBEAT,
    KIND_HEARTBEAT_OK,
    KIND_HELLO,
    KIND_HELLO_OK,
    KIND_PENDING,
    KIND_RESULT,
    KIND_STATS,
    KIND_STATS_OK,
    KIND_SUBMIT,
    KIND_SUBMIT_LINEAR,
    decode_error,
    recv_frame,
    send_frame,
)
from .serving import ServingStats, summarize

__all__ = [
    "FleetHandle",
    "FleetRouter",
    "BATCH_ID_STRIDE",
    "read_execution_logs",
]

#: disjoint per-replica batch-id ranges: replica ``i`` numbers its batches
#: from ``(i + 1) * BATCH_ID_STRIDE`` (the local fallback keeps 0), so the
#: router-side :func:`~repro.runtime.serving.summarize` counts distinct
#: batches correctly across the whole fleet.
BATCH_ID_STRIDE = 1_000_000


def read_execution_logs(fleet_dir) -> dict[str, list[str]]:
    """Per-replica completed fleet request ids from the shared fleet dir.

    Reads every ``<name>.executed`` log (flushed line by line by the
    replicas, so SIGKILLed processes still contribute) -- the evidence the
    chaos tests use to prove no request executed on two replicas.
    """
    logs: dict[str, list[str]] = {}
    for entry in sorted(os.listdir(str(fleet_dir))):
        if not entry.endswith(".executed"):
            continue
        path = os.path.join(str(fleet_dir), entry)
        with open(path) as handle:
            logs[entry[: -len(".executed")]] = [
                line.strip() for line in handle if line.strip()
            ]
    return logs


class _Unsent(Exception):
    """The request provably never left this router (safe to re-route)."""


class _Ambiguous(Exception):
    """The request may have reached the replica (never re-route)."""


class _Waiter:
    __slots__ = ("event", "kind", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind: int | None = None
        self.payload: dict | None = None
        self.error: Exception | None = None

    def resolve(self, kind: int, payload: dict) -> None:
        self.kind = kind
        self.payload = payload
        self.event.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self.event.set()


class _RouterConn:
    """One live connection to a replica: send lock + tagged-reply receiver.

    Synchronous calls register a :class:`_Waiter` under their frame's
    ``tag`` before sending; the receiver thread resolves waiters by tag and
    hands everything else (server-pushed results, whose tag is the request
    id) to ``on_push``.  Death of the connection fails every waiter and
    fires ``on_lost`` exactly once.
    """

    def __init__(self, sock: socket.socket, on_push, on_lost) -> None:
        self.sock = sock
        self._on_push = on_push
        self._on_lost = on_lost
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._waiters: dict[str, _Waiter] = {}  # guarded_by: _lock
        self._lost = False  # guarded_by: _lock
        self._receiver = threading.Thread(
            target=self._receive_loop, name="fleet-recv", daemon=True
        )
        self._receiver.start()

    @property
    def alive(self) -> bool:
        with self._lock:
            return not self._lost

    def call(self, kind: int, payload: dict, timeout: float):
        """Send one frame and wait for the reply carrying the same tag.

        Raises :class:`_Unsent` when the send itself failed (no bytes
        guaranteed delivered... and for injected faults, provably none) and
        :class:`_Ambiguous` when the frame went out but no reply arrived.
        """
        tag = payload["tag"]
        waiter = _Waiter()
        with self._lock:
            if self._lost:
                raise _Unsent("connection already lost")
            self._waiters[tag] = waiter
        try:
            with self._send_lock:
                send_frame(self.sock, kind, payload)
        except Exception as error:
            with self._lock:
                self._waiters.pop(tag, None)
            self.close()
            raise _Unsent(f"send failed: {error}") from error
        if not waiter.event.wait(timeout):
            with self._lock:
                self._waiters.pop(tag, None)
            raise _Ambiguous(f"no reply within {timeout}s")
        if waiter.error is not None:
            raise _Ambiguous(f"connection lost awaiting reply: {waiter.error}") \
                from waiter.error
        return waiter.kind, waiter.payload

    def _receive_loop(self) -> None:
        error: Exception = ConnectionError("connection closed by peer")
        try:
            while True:
                frame = recv_frame(self.sock)
                if frame is None:
                    break
                kind, payload = frame
                tag = payload.get("tag") if isinstance(payload, dict) else None
                with self._lock:
                    waiter = self._waiters.pop(tag, None) if tag else None
                if waiter is not None:
                    waiter.resolve(kind, payload)
                elif kind in (KIND_RESULT, KIND_ERROR, KIND_PENDING):
                    self._on_push(kind, payload)
        except Exception as exc:  # WireError, OSError: the connection died
            error = exc
        finally:
            self._fail_all(error)

    def _fail_all(self, error: Exception) -> None:
        with self._lock:
            already = self._lost
            self._lost = True
            waiters = list(self._waiters.values())
            self._waiters.clear()
        for waiter in waiters:
            waiter.fail(error)
        try:
            self.sock.close()
        except OSError:
            pass
        if not already:
            self._on_lost()

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._fail_all(ConnectionError("connection closed locally"))


class _ReplicaClient:
    """Router-side view of one replica: connection, breaker, call helpers."""

    def __init__(
        self,
        spec,
        *,
        index: int,
        router_name: str,
        breaker: CircuitBreaker,
        on_push,
        on_lost,
        connect_timeout: float,
        call_timeout: float,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.host = spec.host
        self.port = spec.port
        self.index = index
        self.breaker = breaker
        self.dead = False  # set once the router itself crashed this replica
        self._router_name = router_name
        self._on_push = on_push
        self._on_lost = on_lost
        self._connect_timeout = connect_timeout
        self._call_timeout = call_timeout
        self._conn: _RouterConn | None = None  # guarded_by: _conn_lock
        self._conn_lock = threading.Lock()
        self._tags = itertools.count()

    # -- connection ----------------------------------------------------------
    def _tag(self) -> str:
        return f"{self.name}-t{next(self._tags)}"

    def _ensure_conn(self) -> _RouterConn:
        with self._conn_lock:
            if self._conn is not None and self._conn.alive:
                return self._conn
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self._connect_timeout
                )
            except OSError as error:
                raise _Unsent(f"connect to {self.name} failed: {error}") from error
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            conn = _RouterConn(sock, self._on_push, lambda: self._on_lost(self))
            self._conn = conn
        # HELLO outside the connection lock: assigns this replica its
        # disjoint batch-id range (first connection wins, replicas apply it
        # once) and verifies the wire version end to end.
        kind, _payload = conn.call(
            KIND_HELLO,
            {
                "tag": self._tag(),
                "client": self._router_name,
                "batch_id_base": (self.index + 1) * BATCH_ID_STRIDE,
            },
            timeout=self._call_timeout,
        )
        if kind != KIND_HELLO_OK:
            conn.close()
            raise _Unsent(f"unexpected hello reply kind {kind}")
        return conn

    def call(self, kind: int, payload: dict, timeout: float | None = None):
        conn = self._ensure_conn()
        return conn.call(kind, payload, timeout or self._call_timeout)

    def close(self) -> None:
        with self._conn_lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    # -- protocol helpers ----------------------------------------------------
    def submit_request(self, kind: int, request: dict, *, timeout: float):
        """Send one submission, ack-retrying on the SAME replica only.

        The first attempt may raise :class:`_Unsent` (nothing delivered --
        the router re-routes).  Once bytes may have gone out, reconnect
        re-sends carry the same request id and rely on the replica's dedupe,
        so a slow ack never turns into a second execution; when those also
        fail the submission is :class:`_Ambiguous` and must fail typed.
        """
        try:
            return self.call(kind, dict(request, tag=self._tag()), timeout)
        except _Unsent:
            raise
        except _Ambiguous as error:
            last: Exception = error
            for _attempt in range(2):
                try:
                    return self.call(kind, dict(request, tag=self._tag()), timeout)
                except (_Unsent, _Ambiguous) as retry_error:
                    last = retry_error
            raise _Ambiguous(
                f"replica {self.name} unreachable with submission state unknown"
            ) from last

    def heartbeat(self, timeout: float):
        kind, payload = self.call(
            KIND_HEARTBEAT, {"tag": self._tag()}, timeout
        )
        if kind != KIND_HEARTBEAT_OK:
            raise ProtocolError(f"unexpected heartbeat reply kind {kind}")
        return payload

    def fetch(self, rid: str, timeout: float):
        # tag == rid so the reply resolves this call whether it comes back
        # as a direct answer or as the server's push for that request id.
        return self.call(KIND_FETCH, {"tag": rid, "rid": rid}, timeout)

    def stats(self, timeout: float | None = None) -> dict:
        kind, payload = self.call(KIND_STATS, {"tag": self._tag()}, timeout)
        if kind != KIND_STATS_OK:
            raise ProtocolError(f"unexpected stats reply kind {kind}")
        return payload

    def drain(self, timeout: float | None = None) -> None:
        kind, _payload = self.call(KIND_DRAIN, {"tag": self._tag()}, timeout)
        if kind != KIND_DRAIN_OK:
            raise ProtocolError(f"unexpected drain reply kind {kind}")

    # -- health --------------------------------------------------------------
    @property
    def placeable(self) -> bool:
        """Eligible for new traffic: not router-crashed, breaker closed."""
        return not self.dead and self.breaker.state == CircuitBreaker.CLOSED

    def crash(self) -> None:
        """Kill the underlying replica (``replica_crash`` injection hook)."""
        self.dead = True
        hook = getattr(self.spec, "crash", None) or getattr(self.spec, "kill", None)
        if hook is not None:
            hook()
        self.close()


@dataclasses.dataclass
class _Pending:
    """One in-flight fleet request (owned by the router's lock)."""

    rid: str
    client: _ReplicaClient
    future: Future
    acked: bool = False


class FleetHandle:
    """Future-style handle of one request routed through the fleet.

    Mirrors :class:`~repro.runtime.frontdoor.RequestHandle`; ``replica``
    names where the request was placed (``"local"`` on the fallback rung).
    """

    def __init__(self, request_id: str, replica: str, future: Future) -> None:
        self.request_id = request_id
        self.replica = replica
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None):
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._future.exception(timeout)

    def add_done_callback(self, fn) -> None:
        self._future.add_done_callback(lambda _future: fn(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._future.done() else "pending"
        return f"FleetHandle({self.request_id!r}, {self.replica!r}, {state})"


class FleetRouter:
    """Health-checked request router over socket replicas.

    Parameters
    ----------
    replicas:
        Anything with ``name`` / ``host`` / ``port`` attributes --
        :class:`~repro.runtime.net.ReplicaProcessHandle`,
        a started :class:`~repro.runtime.net.ReplicaServer`, or a bare
        namespace.  An optional ``crash()`` / ``kill()`` attribute is the
        hook the ``replica_crash`` fault site fires.
    local_models / local_runtime_kwargs:
        When given, the zero-replicas-placeable rung of the ladder builds a
        local in-process :class:`AsyncServingRuntime` over these models
        (lazily, on first need) instead of raising
        :class:`~repro.errors.FleetUnavailable`.
    heartbeat_interval_seconds / heartbeat_timeout_seconds:
        Health-monitor cadence and per-probe reply deadline.
    failure_threshold / cooldown_seconds / clock:
        Per-replica :class:`CircuitBreaker` parameters (``clock`` is
        injectable so tests drive quarantine without sleeping).
    start_health_monitor:
        ``False`` leaves heartbeating to the caller (deterministic tests
        call :meth:`probe_replicas` explicitly).
    """

    def __init__(
        self,
        replicas,
        *,
        name: str = "router",
        local_models=None,
        local_runtime_kwargs: dict | None = None,
        heartbeat_interval_seconds: float = 0.25,
        heartbeat_timeout_seconds: float = 2.0,
        failure_threshold: int = 2,
        cooldown_seconds: float = 1.0,
        clock=time.monotonic,
        connect_timeout_seconds: float = 5.0,
        ack_timeout_seconds: float = 30.0,
        result_timeout_seconds: float = 120.0,
        retry_after_seconds: float = 0.05,
        start_health_monitor: bool = True,
    ) -> None:
        if not replicas and local_models is None:
            raise ProtocolError("a fleet needs at least one replica or local models")
        self.name = name
        self.heartbeat_interval_seconds = heartbeat_interval_seconds
        self.heartbeat_timeout_seconds = heartbeat_timeout_seconds
        self.ack_timeout_seconds = ack_timeout_seconds
        self.result_timeout_seconds = result_timeout_seconds
        self.retry_after_seconds = retry_after_seconds
        self._local_models = local_models
        self._local_kwargs = dict(local_runtime_kwargs or {})
        self._local_door: AsyncServingRuntime | None = None  # guarded_by: _lock
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._outstanding: dict[str, _Pending] = {}  # guarded_by: _lock
        self._placements: dict[tuple, _ReplicaClient] = {}  # guarded_by: _lock
        self._loads: dict[str, int] = {}  # guarded_by: _lock
        self._reports: list = []  # guarded_by: _lock
        self._failures: list[tuple[str, BaseException]] = []  # guarded_by: _lock
        self._closing = False  # guarded_by: _lock
        self.requests_submitted = 0  # guarded_by: _lock
        self.reroutes = 0  # guarded_by: _lock
        self.local_submissions = 0  # guarded_by: _lock
        self.replicas_quarantined = 0  # guarded_by: _lock
        self._clients = [
            _ReplicaClient(
                spec,
                index=index,
                router_name=name,
                breaker=CircuitBreaker(
                    failure_threshold=failure_threshold,
                    cooldown_seconds=cooldown_seconds,
                    clock=clock,
                ),
                on_push=self._on_push,
                on_lost=self._on_conn_lost,
                connect_timeout=connect_timeout_seconds,
                call_timeout=ack_timeout_seconds,
            )
            for index, spec in enumerate(replicas)
        ]
        for client in self._clients:
            self._loads[client.name] = 0
        self._monitor_stop = threading.Event()
        self._monitor: threading.Thread | None = None
        if start_health_monitor and self._clients:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name=f"{name}-health", daemon=True
            )
            self._monitor.start()

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        model_name: str,
        token_ids: np.ndarray,
        *,
        variant: PrimerVariant = PRIMER_FPC,
        deadline_seconds: float | None = None,
    ) -> FleetHandle:
        """Route one private-inference request; returns its fleet handle.

        Semantics match :meth:`AsyncServingRuntime.submit`: admission
        shedding raises :class:`~repro.errors.OverloadedError`
        synchronously, everything else resolves through the handle.
        """
        payload = np.asarray(token_ids, dtype=np.int64)
        return self._route(
            KIND_SUBMIT,
            key=("model", model_name, variant.name),
            request={
                "model": model_name,
                "payload": payload,
                "variant": variant,
                "deadline_seconds": deadline_seconds,
            },
        )

    def submit_linear(
        self,
        weights_name: str,
        matrix: np.ndarray,
        *,
        deadline_seconds: float | None = None,
    ) -> FleetHandle:
        """Route one private ``X @ W`` request; returns its fleet handle."""
        payload = np.asarray(matrix, dtype=np.int64)
        return self._route(
            KIND_SUBMIT_LINEAR,
            key=("linear", weights_name),
            request={
                "model": weights_name,
                "payload": payload,
                "deadline_seconds": deadline_seconds,
            },
        )

    def _route(self, kind: int, *, key: tuple, request: dict) -> FleetHandle:
        with self._lock:
            if self._closing:
                raise ProtocolError("the fleet router is closed to new submissions")
        rid = f"fleet-{next(self._ids)}"
        request = dict(request, rid=rid)
        tried: set[str] = set()
        while True:
            client = self._place(key, tried)
            if client is None:
                return self._submit_local(kind, rid, request)
            try:
                maybe_inject(SITE_REPLICA_CRASH, f"{client.name}:{rid}")
            except FaultError:
                self._crash_replica(client)
                with self._lock:
                    self.reroutes += 1
                tried.add(client.name)
                continue
            future: Future = Future()
            with self._lock:
                self._outstanding[rid] = _Pending(rid, client, future)
            try:
                reply_kind, reply = client.submit_request(
                    kind, request, timeout=self.ack_timeout_seconds
                )
            except _Unsent:
                # Rung 1: provably never delivered -- re-route freely.
                with self._lock:
                    self._outstanding.pop(rid, None)
                    self.reroutes += 1
                client.breaker.record_failure()
                self._maybe_abandon(client)
                tried.add(client.name)
                continue
            except _Ambiguous as error:
                # Rung 3: the replica may hold (or have executed) this
                # request; failing typed is the only at-most-once answer.
                client.breaker.record_failure()
                self._maybe_abandon(client)
                self._resolve_lost(rid, client, error)
                with self._lock:
                    self.requests_submitted += 1
                return FleetHandle(rid, client.name, future)
            if reply_kind == KIND_ERROR:
                # Submission rejected at the replica's door (admission shed,
                # unknown model...): surface synchronously, as in-process.
                with self._lock:
                    self._outstanding.pop(rid, None)
                raise decode_error(reply["error"])
            if reply_kind != KIND_ACK:
                with self._lock:
                    self._outstanding.pop(rid, None)
                raise ProtocolError(f"unexpected submission reply kind {reply_kind}")
            with self._lock:
                pending = self._outstanding.get(rid)
                if pending is not None:
                    pending.acked = True
                self.requests_submitted += 1
            return FleetHandle(rid, client.name, future)

    def _place(self, key: tuple, tried: set[str]) -> _ReplicaClient | None:
        """Sticky least-loaded placement over placeable replicas.

        Mirrors :meth:`EngineShardMap.worker_for`: a key keeps its replica
        while that replica stays healthy, so its prepared engine stays hot;
        quarantined or crashed replicas lose their keys to the least-loaded
        survivor.
        """
        with self._lock:
            current = self._placements.get(key)
            if (
                current is not None
                and current.placeable
                and current.name not in tried
            ):
                return current
            candidates = [
                c for c in self._clients if c.placeable and c.name not in tried
            ]
            if not candidates:
                return None
            chosen = min(candidates, key=lambda c: self._loads[c.name])
            if current is not None and current is not chosen:
                self._loads[current.name] = max(0, self._loads[current.name] - 1)
            if current is not chosen:
                self._loads[chosen.name] += 1
            self._placements[key] = chosen
            return chosen

    def _submit_local(self, kind: int, rid: str, request: dict) -> FleetHandle:
        """Rung 5: zero placeable replicas -- local fallback or typed raise."""
        if self._local_models is None:
            hints = [
                c.breaker.retry_after_seconds()
                for c in self._clients
                if not c.dead
            ]
            hints = [h for h in hints if h > 0]
            raise FleetUnavailable(
                "no replica is reachable and the router has no local models",
                retry_after_seconds=min(hints) if hints else self.retry_after_seconds,
            )
        with self._lock:
            if self._local_door is None:
                self._local_door = AsyncServingRuntime(
                    self._local_models, **self._local_kwargs
                )
            door = self._local_door
        if kind == KIND_SUBMIT:
            handle = door.submit(
                request["model"],
                request["payload"],
                variant=request["variant"],
                deadline_seconds=request.get("deadline_seconds"),
            )
        else:
            handle = door.submit_linear(
                request["model"],
                request["payload"],
                deadline_seconds=request.get("deadline_seconds"),
            )
        future: Future = Future()

        def _resolved(local_handle) -> None:
            error = local_handle.exception()
            if error is None:
                report = dataclasses.replace(
                    local_handle.result(), request_id=rid, worker="local"
                )
                with self._lock:
                    self._reports.append(report)
                future.set_result(report)
            else:
                with self._lock:
                    self._failures.append((rid, error))
                future.set_exception(error)

        handle.add_done_callback(_resolved)
        with self._lock:
            self.local_submissions += 1
            self.requests_submitted += 1
        return FleetHandle(rid, "local", future)

    # -- result / failure delivery -------------------------------------------
    def _on_push(self, kind: int, payload: dict) -> None:
        rid = payload.get("rid")
        if kind == KIND_PENDING or rid is None:
            return
        with self._lock:
            pending = self._outstanding.pop(rid, None)
        if pending is None:
            # A late duplicate (result pushed again after a fetch race, or
            # for a request already failed typed): at-most-once delivery to
            # the caller means we drop it, never resolve a handle twice.
            return
        if kind == KIND_RESULT:
            report = payload["report"]
            with self._lock:
                self._reports.append(report)
            pending.future.set_result(report)
        else:
            error = decode_error(payload["error"])
            if payload.get("known") is False:
                # The replica restarted without this request: state lost.
                self._resolve_lost_pending(pending, error)
                return
            if not isinstance(error, RequestFailed):
                wrapped = RequestFailed(
                    f"request {rid!r} failed at replica "
                    f"{pending.client.name}: {error}",
                    request_id=rid,
                    attempts=getattr(error, "attempts", 1),
                    site=getattr(error, "site", ""),
                )
                wrapped.__cause__ = error
                error = wrapped
            with self._lock:
                self._failures.append((rid, error))
            pending.future.set_exception(error)

    def _resolve_lost(self, rid: str, client: _ReplicaClient, cause: Exception) -> None:
        with self._lock:
            pending = self._outstanding.pop(rid, None)
        if pending is not None:
            self._resolve_lost_pending(pending, cause)

    def _resolve_lost_pending(self, pending: _Pending, cause: Exception) -> None:
        lost = ReplicaLost(
            f"replica {pending.client.name} lost with request "
            f"{pending.rid!r} in an unknown state; not re-executing elsewhere",
            site=SITE_REPLICA_CRASH,
        )
        lost.__cause__ = cause if isinstance(cause, BaseException) else None
        failure = RequestFailed(
            f"request {pending.rid!r} failed after 1 attempt(s): {lost}",
            request_id=pending.rid,
            attempts=1,
            site=SITE_REPLICA_CRASH,
        )
        failure.__cause__ = lost
        with self._lock:
            self._failures.append((pending.rid, failure))
        pending.future.set_exception(failure)

    # -- health / failover ---------------------------------------------------
    def _on_conn_lost(self, client: _ReplicaClient) -> None:
        """A replica connection died: re-fetch acked requests, never re-run.

        Runs on the dead connection's receiver thread.  Every acked request
        outstanding on the replica is FETCHed over a fresh connection --
        finished results come back verbatim, unfinished ones re-subscribe
        for push delivery.  Only when reconnection itself fails does the
        breaker advance toward quarantine (and the requests toward their
        typed :class:`ReplicaLost` failure).
        """
        with self._lock:
            if self._closing:
                return
            acked = [
                p for p in self._outstanding.values()
                if p.client is client and p.acked
            ]
        if not acked or client.dead:
            if client.dead:
                self._abandon(client)
            return
        for pending in acked:
            try:
                kind, payload = client.fetch(
                    pending.rid, timeout=self.heartbeat_timeout_seconds
                )
            except (_Unsent, _Ambiguous):
                client.breaker.record_failure()
                self._maybe_abandon(client)
                return
            if kind != KIND_PENDING:
                self._on_push(kind, payload)

    def probe_replicas(self) -> None:
        """One heartbeat sweep (the monitor's body; callable from tests).

        Closed breakers get a liveness heartbeat; open breakers past their
        cooldown get their half-open probe (one success returns the replica
        to rotation).  The ``replica_heartbeat`` fault site fires on the
        probe send, so injected heartbeat loss exercises the quarantine
        rung deterministically.
        """
        for client in self._clients:
            if client.dead:
                self._abandon(client)
                continue
            if not client.breaker.allow():
                continue
            try:
                maybe_inject(SITE_REPLICA_HEARTBEAT, client.name)
                client.heartbeat(self.heartbeat_timeout_seconds)
            except Exception:
                before = client.breaker.state
                client.breaker.record_failure()
                if (
                    client.breaker.state == CircuitBreaker.OPEN
                    and before != CircuitBreaker.OPEN
                ):
                    with self._lock:
                        self.replicas_quarantined += 1
                self._maybe_abandon(client)
            else:
                client.breaker.record_success()

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.heartbeat_interval_seconds):
            self.probe_replicas()

    def _crash_replica(self, client: _ReplicaClient) -> None:
        """``replica_crash`` injection fired: hard-kill the chosen replica."""
        client.crash()
        client.breaker.record_failure()
        self._abandon(client)

    def _maybe_abandon(self, client: _ReplicaClient) -> None:
        if client.dead or client.breaker.state == CircuitBreaker.OPEN:
            self._abandon(client)

    def _abandon(self, client: _ReplicaClient) -> None:
        """Fail the quarantined/dead replica's acked requests typed.

        Only *acked* pendings: a submission mid-flight is resolved by its
        own ``_route`` call (exactly one owner pops each pending, so no
        handle resolves twice).
        """
        with self._lock:
            lost = [
                rid for rid, p in self._outstanding.items()
                if p.client is client and p.acked
            ]
            pendings = [self._outstanding.pop(rid) for rid in lost]
        for pending in pendings:
            self._resolve_lost_pending(
                pending, ConnectionError(f"replica {client.name} unreachable")
            )

    # -- observability -------------------------------------------------------
    def outstanding_count(self) -> int:
        with self._lock:
            return len(self._outstanding)

    def reports(self) -> list:
        """Successful reports collected so far (fleet request ids)."""
        with self._lock:
            return list(self._reports)

    def typed_failures(self) -> list[tuple[str, BaseException]]:
        with self._lock:
            return list(self._failures)

    def stats(self, wall_seconds: float | None = None) -> ServingStats:
        """Router-side aggregate over every successful report.

        Replica batch-id ranges are disjoint (see :data:`BATCH_ID_STRIDE`),
        so ``num_batches`` here equals the sum of the replicas' own counts
        -- the exact-equality the stats test asserts.
        """
        return summarize(self.reports(), wall_seconds)

    def conservation(self) -> dict[str, int]:
        """The lossless-failover ledger: gap must be zero at all times.

        ``submitted`` counts handles actually issued (synchronously shed
        submissions raised instead); every one of them must end as exactly
        one success or one typed failure.
        """
        with self._lock:
            completed = len(self._reports)
            failed = len(self._failures)
            submitted = self.requests_submitted
            outstanding = len(self._outstanding)
        return {
            "submitted": submitted,
            "completed": completed,
            "typed_failed": failed,
            "outstanding": outstanding,
            "gap": submitted - completed - failed - outstanding,
        }

    def replica_stats(self) -> list[dict]:
        """Live replicas' own counters (the wire ``stats`` frame)."""
        payloads = []
        for client in self._clients:
            if client.dead:
                continue
            try:
                payloads.append(client.stats())
            except (_Unsent, _Ambiguous):
                continue
        return payloads

    @property
    def local_door(self) -> AsyncServingRuntime | None:
        with self._lock:
            return self._local_door

    def replica_names(self) -> list[str]:
        return [client.name for client in self._clients]

    # -- lifecycle -----------------------------------------------------------
    def drain_replicas(self) -> list[str]:
        """Gracefully drain every reachable replica; returns who complied."""
        drained = []
        for client in self._clients:
            if client.dead:
                continue
            try:
                client.drain()
                drained.append(client.name)
            except (_Unsent, _Ambiguous):
                continue
        return drained

    def close(self, timeout: float | None = None) -> None:
        """Stop the monitor, wait for outstanding results, drop connections.

        Requests still unresolved when the wait expires fail typed (never
        silently abandoned), preserving the conservation ledger.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.heartbeat_timeout_seconds + 1.0)
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.result_timeout_seconds
        )
        while time.monotonic() < deadline:
            with self._lock:
                if not self._outstanding:
                    break
            time.sleep(0.01)
        with self._lock:
            leftovers = list(self._outstanding.values())
            self._outstanding.clear()
        for pending in leftovers:
            self._resolve_lost_pending(
                pending, TimeoutError("router closed before the result arrived")
            )
        for client in self._clients:
            client.close()
        with self._lock:
            door, self._local_door = self._local_door, None
        if door is not None:
            door.close()

    def __enter__(self) -> FleetRouter:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
