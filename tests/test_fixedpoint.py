"""Unit and property tests for the fixed-point encoding layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError, ParameterError
from repro.fixedpoint import (
    DEFAULT_FORMAT,
    FixedPointFormat,
    FixedTensor,
    decode,
    encode,
    fixed_matmul,
    fixed_mul,
    to_signed,
    truncate,
)


class TestFixedPointFormat:
    def test_default_is_paper_15_bit(self):
        assert DEFAULT_FORMAT.total_bits == 15
        assert DEFAULT_FORMAT.modulus == 1 << 15

    def test_resolution(self):
        fmt = FixedPointFormat(total_bits=15, frac_bits=7)
        assert fmt.resolution == pytest.approx(1 / 128)

    def test_invalid_total_bits_rejected(self):
        with pytest.raises(ParameterError):
            FixedPointFormat(total_bits=1, frac_bits=0)

    def test_invalid_frac_bits_rejected(self):
        with pytest.raises(ParameterError):
            FixedPointFormat(total_bits=8, frac_bits=8)

    def test_range_bounds(self):
        fmt = FixedPointFormat(total_bits=15, frac_bits=7)
        assert fmt.max_value == pytest.approx((2 ** 14 - 1) / 128)
        assert fmt.min_value == pytest.approx(-(2 ** 14) / 128)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        values = np.array([0.0, 1.0, -1.0, 3.5, -2.25])
        assert np.allclose(decode(encode(values)), values)

    def test_clamping(self):
        encoded = encode(np.array([1e6]))
        assert decode(encoded)[0] == pytest.approx(DEFAULT_FORMAT.max_value)

    def test_no_clamp_raises(self):
        with pytest.raises(EncodingError):
            encode(np.array([1e6]), clamp=False)

    def test_signed_mapping(self):
        fmt = DEFAULT_FORMAT
        assert to_signed(np.array([fmt.modulus - 1]), fmt)[0] == -1

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_bounded(self, values):
        arr = np.array(values)
        error = np.max(np.abs(decode(encode(arr)) - arr))
        assert error <= DEFAULT_FORMAT.resolution / 2 + 1e-12

    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_fixed_mul_close_to_real(self, a, b):
        ea, eb = encode(np.array([a])), encode(np.array([b]))
        got = decode(fixed_mul(ea, eb))[0]
        assert abs(got - a * b) <= 0.25


class TestTruncate:
    def test_truncate_halves_scale(self):
        fmt = DEFAULT_FORMAT
        # 0.5 represented at 2*frac bits, truncated back to frac bits.
        wide = np.array([int(0.5 * fmt.scale * fmt.scale) % fmt.modulus])
        assert decode(truncate(wide, fmt), fmt)[0] == pytest.approx(0.5)


class TestFixedMatmul:
    def test_matches_float_matmul(self, rng):
        a = rng.normal(0, 1, size=(4, 5))
        b = rng.normal(0, 1, size=(5, 3))
        got = decode(fixed_matmul(encode(a), encode(b)))
        assert np.max(np.abs(got - a @ b)) < 0.2


class TestFixedTensor:
    def test_add_sub_roundtrip(self, rng):
        a = rng.normal(0, 1, size=(3, 3))
        b = rng.normal(0, 1, size=(3, 3))
        ta, tb = FixedTensor.from_float(a), FixedTensor.from_float(b)
        assert np.allclose((ta + tb).to_float(), a + b, atol=0.02)
        assert np.allclose((ta - tb).to_float(), a - b, atol=0.02)

    def test_matmul(self, rng):
        a = rng.normal(0, 1, size=(3, 4))
        b = rng.normal(0, 1, size=(4, 2))
        got = FixedTensor.from_float(a).matmul(FixedTensor.from_float(b)).to_float()
        assert np.max(np.abs(got - a @ b)) < 0.2

    def test_format_mismatch_raises(self):
        from repro.errors import ShapeError
        a = FixedTensor.from_float(np.ones((2, 2)))
        b = FixedTensor.from_float(np.ones((2, 2)), FixedPointFormat(15, 4))
        with pytest.raises(ShapeError):
            _ = a + b

    def test_neg_and_zeros(self):
        a = FixedTensor.from_float(np.array([1.5, -2.0]))
        assert np.allclose((-a).to_float(), [-1.5, 2.0])
        assert np.all(FixedTensor.zeros((2, 2)).to_float() == 0)
