"""Tests for the persistent plan store and engine-cache warm start.

The acceptance bar from the issue: a warm-started engine produces
bit-identical logits to a cold-built one, and its tracker shows **zero
offline HE operations** -- the whole offline exchange is replaced by reading
the stored :class:`~repro.protocols.plan.OfflinePlan` from disk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.he import SimulatedHEBackend
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import (
    PRIMER_F,
    PRIMER_FPC,
    Phase,
    PlanStore,
    PrivateTransformerInference,
    model_fingerprint,
    plan_nbytes,
    protocol_he_parameters,
)
from repro.runtime import ServingRuntime


@pytest.fixture(scope="module")
def small_model() -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=3)


@pytest.fixture(scope="module")
def other_model() -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=4)


@pytest.fixture
def token_ids() -> np.ndarray:
    return np.array([4, 7, 12, 20, 33, 5])


class TestKeying:
    def test_model_fingerprint_is_content_stable(self, small_model, other_model):
        assert model_fingerprint(small_model) == model_fingerprint(small_model)
        assert model_fingerprint(small_model) != model_fingerprint(other_model)

    def test_key_components_all_matter(self, tmp_path, small_model, other_model):
        store = PlanStore(tmp_path)
        base = store.key_for(small_model, "primer-fpc", 0, 1)
        assert base == store.key_for(small_model, "primer-fpc", 0, 1)
        variations = [
            store.key_for(other_model, "primer-fpc", 0, 1),
            store.key_for(small_model, "primer-f", 0, 1),
            store.key_for(small_model, "primer-fpc", 1, 1),
            store.key_for(small_model, "primer-fpc", 0, 4),
        ]
        digests = {base.digest()} | {key.digest() for key in variations}
        assert len(digests) == 5  # every component changes the digest


class TestPersistence:
    def test_round_trip_serves_a_sibling_engine(self, tmp_path, small_model, token_ids):
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        plan = producer.prepare()
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        path = store.store(key, plan)
        assert path.exists()
        assert store.contains(key)
        assert store.entry_bytes(key) == path.stat().st_size

        revived = store.load(key)
        assert revived is not None
        assert revived.module_names() == plan.module_names()

        consumer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        consumer.install(revived)
        baseline = PrivateTransformerInference(small_model, PRIMER_FPC, seed=99)
        baseline.offline()
        assert np.array_equal(
            consumer.run(token_ids).logits, baseline.run(token_ids).logits
        )

    def test_missing_entry_is_a_miss(self, tmp_path, small_model):
        store = PlanStore(tmp_path)
        assert store.load(store.key_for(small_model, "primer-fpc", 0, 1)) is None

    def test_corrupted_payload_is_a_miss_and_discarded(
        self, tmp_path, small_model
    ):
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        path = store.store(key, producer.prepare())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(blob))
        assert store.load(key) is None
        assert not path.exists()  # the corrupt entry was deleted

    def test_truncated_entry_is_a_miss(self, tmp_path, small_model):
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        path = store.store(key, producer.prepare())
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.load(key) is None

    @pytest.mark.parametrize(
        "stale_magic", [b"REPRO-PLAN1\n", b"REPRO-PLAN2\n"], ids=["v1", "v2"]
    )
    def test_previous_format_version_is_a_miss(self, tmp_path, small_model, stale_magic):
        """v1 (pre-residency) and v2 (pre-RNS) entries must never install."""
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        path = store.store(key, producer.prepare())
        blob = path.read_bytes()
        path.write_bytes(blob.replace(b"REPRO-PLAN3\n", stale_magic, 1))
        assert store.load(key) is None
        assert not path.exists()  # discarded, falls back to a cold build

    def test_key_metadata_mismatch_is_a_miss(self, tmp_path, small_model):
        """An entry renamed onto another key's path fails header validation."""
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        other = store.key_for(small_model, "primer-fpc", 18, 1)
        store.path_for(other).write_bytes(
            store.store(key, producer.prepare()).read_bytes()
        )
        assert store.load(other) is None

    def test_store_rejects_non_plans(self, tmp_path, small_model):
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 0, 1)
        with pytest.raises(ProtocolError):
            store.store(key, {"not": "a plan"})

    def test_clear_and_counters(self, tmp_path, small_model):
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        store = PlanStore(tmp_path)
        store.store(store.key_for(small_model, "primer-fpc", 17, 1), producer.prepare())
        assert store.entry_count() == 1
        assert store.total_bytes() > 0
        assert store.clear() == 1
        assert store.entry_count() == 0


class TestEngineCacheWarmStart:
    def test_warm_start_skips_the_offline_phase_entirely(
        self, tmp_path, small_model, token_ids
    ):
        cold_runtime = ServingRuntime({"tiny": small_model}, plan_store=tmp_path, seed=7)
        cold_engine = cold_runtime.engine_for("tiny")
        cold_stats = cold_runtime.engine_cache.stats()
        assert cold_stats.cold_builds == 1 and cold_stats.warm_starts == 0
        store = cold_runtime.engine_cache.plan_store
        assert store is not None and store.entry_count() == 1

        # A freshly started process: new runtime, same store directory.
        warm_runtime = ServingRuntime({"tiny": small_model}, plan_store=tmp_path, seed=7)
        warm_engine = warm_runtime.engine_for("tiny")
        warm_stats = warm_runtime.engine_cache.stats()
        assert warm_stats.warm_starts == 1 and warm_stats.cold_builds == 0

        # Zero offline HE operations and zero offline traffic on the warm
        # engine: the offline phase was read from disk, not re-run.
        assert warm_engine.tracker.phase_snapshot(Phase.OFFLINE.value) == {}
        assert warm_engine.channel.total_bytes(Phase.OFFLINE) == 0

        # Bit-identical logits.
        assert np.array_equal(
            warm_engine.run(token_ids).logits, cold_engine.run(token_ids).logits
        )

    def test_warm_started_serving_end_to_end(self, tmp_path, small_model):
        rng = np.random.default_rng(23)
        tokens = [rng.integers(0, 40, size=6) for _ in range(4)]
        cold = ServingRuntime({"tiny": small_model}, plan_store=tmp_path, seed=7)
        for t in tokens:
            cold.submit("tiny", t)
        cold_reports = cold.run_pending()

        warm = ServingRuntime({"tiny": small_model}, plan_store=tmp_path, seed=7)
        for t in tokens:
            warm.submit("tiny", t)
        warm_reports = warm.run_pending()
        assert warm.engine_cache.stats().warm_starts == 1
        for cold_report, warm_report in zip(cold_reports, warm_reports, strict=True):
            assert np.array_equal(cold_report.result, warm_report.result)

    def test_variant_and_prepare_seconds_reflect_warm_start(
        self, tmp_path, small_model
    ):
        from repro.runtime import BatchKey

        ServingRuntime(
            {"tiny": small_model}, plan_store=tmp_path, seed=7
        ).engine_for("tiny", PRIMER_F)
        warm = ServingRuntime({"tiny": small_model}, plan_store=tmp_path, seed=7)
        warm.engine_for("tiny", PRIMER_F)
        entry = warm.engine_cache.entry(
            BatchKey(kind="inference", model="tiny", variant="primer-f")
        )
        assert entry.warm_start is True
        assert entry.prepare_seconds == 0.0
        assert entry.plan_bytes > 0
        assert entry.plan_bytes == entry.engine.offline_plan.approx_nbytes()

    def test_replaced_model_misses_the_store(self, tmp_path, small_model, other_model):
        runtime = ServingRuntime({"tiny": small_model}, plan_store=tmp_path, seed=7)
        runtime.engine_for("tiny")
        # Replacing the model changes the content fingerprint: the old plan
        # can never warm-start the new model.
        runtime.register_model("tiny", other_model)
        engine = runtime.engine_for("tiny")
        assert engine.model is other_model
        stats = runtime.engine_cache.stats()
        assert stats.cold_builds == 2 and stats.warm_starts == 0
        assert runtime.engine_cache.plan_store.entry_count() == 2

    def test_custom_backend_disables_persistence(self, tmp_path, small_model):
        """Backend-specific handles must not be revived across processes."""
        runtime = ServingRuntime(
            {"tiny": small_model},
            plan_store=tmp_path,
            backend_factory=lambda: SimulatedHEBackend(protocol_he_parameters()),
            seed=7,
        )
        runtime.engine_for("tiny")
        assert runtime.engine_cache.plan_store.entry_count() == 0


class TestGarbageCollection:
    def test_entry_budget_prunes_oldest_first(self, tmp_path, small_model):
        """Over-budget stores evict by recency (mtime), never the new entry."""
        import os

        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        plan = producer.prepare()
        store = PlanStore(tmp_path, max_entries=2)
        keys = [store.key_for(small_model, "primer-fpc", seed, 1) for seed in range(3)]
        for age, key in enumerate(keys):
            path = store.store(key, plan)
            # Separate the mtimes deterministically (same-second writes).
            os.utime(path, (path.stat().st_atime, 1_000_000 + age))
        assert store.entry_count() == 2
        assert not store.contains(keys[0])      # the oldest entry aged out
        assert store.contains(keys[1]) and store.contains(keys[2])
        assert store.stats().prunes == 1

    def test_byte_budget_and_protected_fresh_entry(self, tmp_path, small_model):
        """A single over-budget entry survives: evicting it would thrash."""
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        plan = producer.prepare()
        store = PlanStore(tmp_path, max_bytes=1)  # everything is over budget
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        store.store(key, plan)
        assert store.contains(key)
        # The next store prunes the previous entry but protects itself.
        other = store.key_for(small_model, "primer-fpc", 18, 1)
        store.store(other, plan)
        assert store.contains(other) and not store.contains(key)

    def test_warm_start_still_hits_after_pruning_cold_entries(
        self, tmp_path, small_model, other_model, token_ids
    ):
        """The GC'd store keeps serving warm starts for the surviving plan."""
        import os

        store = PlanStore(tmp_path, max_entries=1)
        cold = ServingRuntime({"a": small_model, "b": other_model},
                              plan_store=store, seed=7)
        a_engine = cold.engine_for("a")
        # Age model a's entry so model b's build deterministically prunes it.
        a_path = store.path_for(
            store.key_for(small_model, "primer-fpc", 7, a_engine.slot_sharing)
        )
        os.utime(a_path, (a_path.stat().st_atime, 1_000_000))
        cold_engine = cold.engine_for("b")
        assert store.entry_count() == 1
        assert store.stats().prunes == 1

        warm = ServingRuntime({"a": small_model, "b": other_model},
                              plan_store=store, seed=7)
        warm_engine = warm.engine_for("b")       # survives the GC: warm start
        assert warm.engine_cache.stats().warm_starts == 1
        assert np.array_equal(
            warm_engine.run(token_ids).logits, cold_engine.run(token_ids).logits
        )
        warm.engine_for("a")                      # pruned: cold rebuild, no error
        assert warm.engine_cache.stats().cold_builds == 1

    def test_load_refreshes_recency(self, tmp_path, small_model):
        """A hit protects its entry from the next prune (LRU, not FIFO)."""
        import os

        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        plan = producer.prepare()
        store = PlanStore(tmp_path, max_entries=2)
        first = store.key_for(small_model, "primer-fpc", 0, 1)
        second = store.key_for(small_model, "primer-fpc", 1, 1)
        for age, key in enumerate((first, second)):
            path = store.store(key, plan)
            os.utime(path, (path.stat().st_atime, 1_000_000 + age))
        assert store.load(first) is not None      # refreshes first's mtime
        third = store.key_for(small_model, "primer-fpc", 2, 1)
        store.store(third, plan)
        assert store.contains(first) and store.contains(third)
        assert not store.contains(second)         # now the LRU victim

    def test_stats_counters(self, tmp_path, small_model):
        producer = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        store = PlanStore(tmp_path)
        key = store.key_for(small_model, "primer-fpc", 17, 1)
        assert store.load(key) is None
        store.store(key, producer.prepare())
        assert store.load(key) is not None
        stats = store.stats()
        assert stats.entries == 1 and stats.total_bytes > 0
        assert stats.hits == 1 and stats.misses == 1
        assert stats.stores == 1 and stats.prunes == 0

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ProtocolError):
            PlanStore(tmp_path, max_entries=0)
        with pytest.raises(ProtocolError):
            PlanStore(tmp_path, max_bytes=0)


class TestPlanNbytes:
    def test_counts_the_arrays_a_plan_holds(self, small_model):
        engine = PrivateTransformerInference(small_model, PRIMER_FPC, seed=17)
        plan = engine.prepare()
        total = plan.approx_nbytes()
        assert total > 0
        # The embedding module's masks alone are a strict lower bound.
        embedding = plan.module("embedding")
        assert total > plan_nbytes(embedding) > 0
        # Shared arrays are only counted once.
        assert plan_nbytes([embedding, embedding]) == plan_nbytes(embedding)
