"""Figure 2 -- latency (offline + online) and accuracy of THE-X, GCFormer,
Primer-base and Primer-F on MNLI-m with BERT-base.

The figure's bar data (hours of offline/online latency per scheme, plus an
accuracy line) is regenerated as a printed series.
"""

from __future__ import annotations

import pytest

from repro.costmodel import format_table
from repro.nn import BERT_BASE
from repro.protocols import PRIMER_BASE, PRIMER_F
from repro.runtime import scheme_latencies

PAPER_FIGURE2 = {
    # scheme: (total latency hours, accuracy %)
    "THE-X": (1.3, 77.3),
    "GCFormer": (4.8, 85.1),
    "primer-base": (1.8, 84.6),
    "primer-f": (1.8, 84.6),
}


def test_figure2_series(latency_model):
    rows = {
        row.scheme: row
        for row in scheme_latencies(BERT_BASE, model=latency_model,
                                    variants=[PRIMER_BASE, PRIMER_F])
    }
    table = []
    for scheme, (paper_hours, paper_acc) in PAPER_FIGURE2.items():
        row = rows[scheme]
        table.append([
            scheme,
            f"{row.offline_seconds / 3600:.2f}",
            f"{row.online_seconds / 3600:.2f}",
            f"{row.total_seconds / 3600:.2f} (paper {paper_hours:.1f})",
            "approx" if scheme == "THE-X" else "exact",
        ])
    print("\nFigure 2 -- latency/accuracy comparison (hours)\n")
    print(format_table(
        ["Scheme", "Offline (h)", "Online (h)", "Total (h) (paper)", "Non-linearities"],
        table,
    ))

    # Shape: THE-X and Primer-base are online-dominated; Primer-F moves the
    # work offline; GCFormer is the slowest overall.
    assert rows["primer-base"].offline_seconds < rows["primer-base"].online_seconds
    assert rows["primer-f"].online_seconds < rows["primer-f"].offline_seconds
    assert rows["GCFormer"].total_seconds == max(r.total_seconds for r in rows.values())


@pytest.mark.benchmark(group="figure2")
def test_bench_figure2(benchmark, latency_model):
    result = benchmark(
        lambda: scheme_latencies(BERT_BASE, model=latency_model,
                                 variants=[PRIMER_BASE, PRIMER_F])
    )
    assert len(result) == 4
