"""Latency and communication cost model (calibrated against Table II)."""

from .constants import DEFAULT_COSTS, CostConstants, calibrate
from .latency import LatencyModel, PhaseLatency, StepLatency
from .report import format_seconds, format_table

__all__ = [
    "CostConstants",
    "DEFAULT_COSTS",
    "LatencyModel",
    "PhaseLatency",
    "StepLatency",
    "calibrate",
    "format_seconds",
    "format_table",
]
