"""Evaluation of garbled circuits.

The evaluator receives the garbled tables, one label per input wire (its own
labels via OT, the garbler's directly), and walks the gate list: XOR gates
are label XORs, NOT gates pass the label through (the garbler swapped the
pair), AND gates decrypt exactly one row selected by the colour bits.
Finally the colour bits of the output labels are compared against the
decoding table to recover the plaintext output bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import CircuitError
from .circuits import GateType
from .garbler import GarbledCircuit, _kdf, _xor_bytes

__all__ = ["GarbledEvaluator"]


@dataclass
class GarbledEvaluator:
    """Evaluates a garbled circuit given one label per input wire."""

    garbled: GarbledCircuit

    def evaluate(self, input_labels: dict[int, bytes]) -> list[int]:
        """Run the garbled evaluation and decode the output bits."""
        circuit = self.garbled.circuit
        labels: dict[int, bytes] = dict(self.garbled.constant_labels)
        labels.update(input_labels)
        for wire in range(circuit.num_inputs):
            if wire not in labels:
                raise CircuitError(f"missing label for input wire {wire}")

        for gate_id, gate in enumerate(circuit.gates):
            label_a = labels.get(gate.input_a)
            if label_a is None:
                raise CircuitError(f"gate {gate_id} reads unlabelled wire {gate.input_a}")
            if gate.gate_type is GateType.NOT:
                labels[gate.output] = label_a
                continue
            label_b = labels.get(gate.input_b)
            if label_b is None:
                raise CircuitError(f"gate {gate_id} reads unlabelled wire {gate.input_b}")
            if gate.gate_type is GateType.XOR:
                labels[gate.output] = _xor_bytes(label_a, label_b)
            elif gate.gate_type is GateType.AND:
                garbled_gate = self.garbled.garbled_gates.get(gate_id)
                if garbled_gate is None:
                    raise CircuitError(f"missing garbled table for AND gate {gate_id}")
                row_index = ((label_a[-1] & 1) << 1) | (label_b[-1] & 1)
                key = _kdf(label_a, label_b, gate_id)
                labels[gate.output] = _xor_bytes(key, garbled_gate.rows[row_index])
            else:  # pragma: no cover - enum exhaustive
                raise CircuitError(f"unsupported gate type {gate.gate_type}")

        output_bits = []
        for wire in circuit.outputs:
            label = labels.get(wire)
            if label is None:
                raise CircuitError(f"output wire {wire} was never labelled")
            colour = label[-1] & 1
            output_bits.append(colour ^ self.garbled.output_decoding[wire] ^ 0)
        return output_bits
