"""Evaluation harness and batch-serving runtime.

Ties models, protocols, cost model and data together for the paper-table
experiments (:mod:`repro.runtime.evaluation`) and serves many concurrent
inference requests over shared cryptographic state — batch formation under
pluggable policies (:mod:`repro.runtime.scheduler`), serial and pipelined
execution (:mod:`repro.runtime.executor`), and the
:class:`~repro.runtime.serving.ServingRuntime` façade over both.
"""

from .evaluation import (
    AccuracyReport,
    SchemeLatency,
    calibrated_latency_model,
    evaluate_accuracy,
    scheme_latencies,
)
from .executor import (
    BatchExecutor,
    EngineCache,
    EngineShardMap,
    PipelinedExecutor,
    RequestReport,
)
from .scheduler import (
    Batch,
    BatchKey,
    BatchScheduler,
    DeadlinePolicy,
    FifoPolicy,
    InferenceRequest,
    SchedulingPolicy,
    SizeAwarePolicy,
)
from .serving import (
    ServingRuntime,
    ServingStats,
    run_sequential_baseline,
    summarize,
)

__all__ = [
    "AccuracyReport",
    "Batch",
    "BatchExecutor",
    "BatchKey",
    "BatchScheduler",
    "DeadlinePolicy",
    "EngineCache",
    "EngineShardMap",
    "FifoPolicy",
    "InferenceRequest",
    "PipelinedExecutor",
    "RequestReport",
    "SchedulingPolicy",
    "SchemeLatency",
    "ServingRuntime",
    "ServingStats",
    "SizeAwarePolicy",
    "calibrated_latency_model",
    "evaluate_accuracy",
    "run_sequential_baseline",
    "scheme_latencies",
    "summarize",
]
