"""Operation accounting shared by the HE backends and the cost model.

Every homomorphic operation executed by either backend (exact BFV or the
functional simulator) is recorded here.  The latency and communication models
in :mod:`repro.costmodel` convert these counts into seconds and bytes using
per-operation constants calibrated against the paper's Table II.

The serving runtime multiplexes many inference requests over one shared
backend, so the tracker additionally supports *per-request attribution*: when
a request id is set (see :meth:`OperationTracker.set_request` /
:meth:`OperationTracker.attribute`), every recorded operation is charged both
to the global multiset and to that request's own counter.  Operations
recorded with no request set (key generation, shared offline pre-processing)
stay unattributed, so ``sum(per-request) + unattributed == totals`` always
holds -- the invariant the serving tests assert.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator

__all__ = ["OperationTracker", "NTT_FORWARD", "NTT_INVERSE"]

#: Operation names under which NTT domain crossings are recorded.  Both HE
#: backends charge one count per *limb polynomial* transformed (a ciphertext
#: is two polynomials of ``params.limb_count`` RNS limbs each, and a
#: double-CRT scheme runs one NTT per limb), so the counters are directly
#: comparable to the closed forms in
#: :func:`repro.he.packing.bsgs_transform_count` (which scale by the same
#: ``limbs`` factor) and between the exact backend (which executes the
#: transforms) and the simulator (which models the transforms the deployed
#: scheme would execute).
NTT_FORWARD = "ntt_forward"
NTT_INVERSE = "ntt_inverse"


@dataclass
class OperationTracker:
    """Counts cryptographic operations and bytes moved.

    The tracker is deliberately dumb: it is a named multiset (plus one
    multiset per serving request).  Interpretation (which operations dominate
    latency, what a ciphertext costs on the wire) lives in
    :mod:`repro.costmodel`.
    """

    counts: Counter = field(default_factory=Counter)
    bytes_moved: int = 0
    request_counts: dict[str, Counter] = field(default_factory=dict)
    request_bytes: dict[str, int] = field(default_factory=dict)
    #: per-phase attribution ("offline"/"online"), set by the protocol engine
    phase_counts: dict[str, Counter] = field(default_factory=dict)
    #: per-worker attribution ("worker-0", ...), set by the serving executor
    worker_counts: dict[str, Counter] = field(default_factory=dict)
    _current_request: str | None = field(default=None, repr=False)
    _current_phase: str | None = field(default=None, repr=False)
    _current_worker: str | None = field(default=None, repr=False)

    def record(self, operation: str, *, count: int = 1, bytes_moved: int = 0) -> None:
        """Record ``count`` occurrences of ``operation``."""
        self.counts[operation] += count
        self.bytes_moved += bytes_moved
        if self._current_request is not None:
            per_request = self.request_counts.setdefault(self._current_request, Counter())
            per_request[operation] += count
            self.request_bytes[self._current_request] = (
                self.request_bytes.get(self._current_request, 0) + bytes_moved
            )
        if self._current_phase is not None:
            self.phase_counts.setdefault(self._current_phase, Counter())[operation] += count
        if self._current_worker is not None:
            self.worker_counts.setdefault(self._current_worker, Counter())[operation] += count

    def count(self, operation: str) -> int:
        """Number of recorded occurrences of ``operation``."""
        return self.counts.get(operation, 0)

    # -- NTT transform accounting ------------------------------------------
    def record_transforms(self, *, forward: int = 0, inverse: int = 0) -> None:
        """Charge NTT domain crossings (per transformed polynomial).

        Flows through :meth:`record`, so transforms inherit the active
        request/phase/worker attribution like every other operation -- the
        evaluation-domain residency win is attributable per request and per
        phase from the same counters.
        """
        if forward:
            self.record(NTT_FORWARD, count=forward)
        if inverse:
            self.record(NTT_INVERSE, count=inverse)

    def transform_counts(self, *, phase: str | None = None) -> dict[str, int]:
        """Forward/inverse transform counts, totals or for one phase."""
        source = self.phase_counts.get(phase, Counter()) if phase else self.counts
        return {
            NTT_FORWARD: source.get(NTT_FORWARD, 0),
            NTT_INVERSE: source.get(NTT_INVERSE, 0),
        }

    def transforms(self, *, phase: str | None = None) -> int:
        """Total NTT transforms (forward + inverse), optionally per phase."""
        return sum(self.transform_counts(phase=phase).values())

    # -- per-request attribution -------------------------------------------
    def set_request(self, request_id: str | None) -> None:
        """Attribute subsequent operations to ``request_id`` (None to stop)."""
        self._current_request = request_id

    @contextmanager
    def attribute(self, request_id: str) -> Iterator[None]:
        """Scope-style request attribution; restores the previous id on exit."""
        previous = self._current_request
        self._current_request = request_id
        try:
            yield
        finally:
            self._current_request = previous

    def request_snapshot(self, request_id: str) -> dict[str, int]:
        """Plain-dict copy of one request's operation counts."""
        return dict(self.request_counts.get(request_id, Counter()))

    # -- per-phase / per-worker attribution --------------------------------
    def set_phase(self, phase: str | None) -> None:
        """Attribute subsequent operations to a protocol phase (None to stop).

        The phase is a plain string (``"offline"`` / ``"online"``) so this
        module stays free of protocol-layer imports; the engine passes
        ``Phase.X.value``.
        """
        self._current_phase = phase

    def set_worker(self, worker: str | None) -> None:
        """Attribute subsequent operations to a serving worker (None to stop)."""
        self._current_worker = worker

    def phase_snapshot(self, phase: str) -> dict[str, int]:
        """Plain-dict copy of one phase's operation counts."""
        return dict(self.phase_counts.get(phase, Counter()))

    def worker_snapshot(self, worker: str) -> dict[str, int]:
        """Plain-dict copy of one worker's operation counts."""
        return dict(self.worker_counts.get(worker, Counter()))

    def workers(self) -> list[str]:
        """Worker ids that have operations attributed to them."""
        return list(self.worker_counts)

    def requests(self) -> list[str]:
        """Request ids that have operations attributed to them."""
        return list(self.request_counts)

    def unattributed(self) -> dict[str, int]:
        """Counts not charged to any request (keygen, shared pre-processing)."""
        shared = Counter(self.counts)
        for per_request in self.request_counts.values():
            shared.subtract(per_request)
        return {op: count for op, count in shared.items() if count}

    # -- bookkeeping ---------------------------------------------------------
    def merge(self, other: OperationTracker) -> None:
        """Fold another tracker's counts into this one."""
        self.counts.update(other.counts)
        self.bytes_moved += other.bytes_moved
        for request_id, per_request in other.request_counts.items():
            self.request_counts.setdefault(request_id, Counter()).update(per_request)
            self.request_bytes[request_id] = (
                self.request_bytes.get(request_id, 0)
                + other.request_bytes.get(request_id, 0)
            )
        for phase, per_phase in other.phase_counts.items():
            self.phase_counts.setdefault(phase, Counter()).update(per_phase)
        for worker, per_worker in other.worker_counts.items():
            self.worker_counts.setdefault(worker, Counter()).update(per_worker)

    def reset(self) -> None:
        """Clear all recorded counts."""
        self.counts.clear()
        self.bytes_moved = 0
        self.request_counts.clear()
        self.request_bytes.clear()
        self.phase_counts.clear()
        self.worker_counts.clear()

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counts (stable for assertions/reports)."""
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OperationTracker({parts}, bytes={self.bytes_moved})"
