"""Plaintext Transformer layers (numpy).

These layers are the *reference semantics* of the models Primer encrypts.
Every private protocol in :mod:`repro.protocols` is tested against the
corresponding layer here: the reconstructed secret shares must match the
plaintext layer output to within fixed-point tolerance.

The implementation is intentionally framework-free (plain numpy, explicit
shapes) because the cryptographic layers need direct access to the weight
matrices and because determinism matters more than training speed -- the
weights are generated, not learned (see DESIGN.md's accuracy-methodology
substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .activations import gelu, layer_norm

__all__ = ["Linear", "LayerNorm", "Embedding", "FeedForward"]


@dataclass
class Linear:
    """Affine layer ``y = x @ W + b`` with weights of shape (in, out)."""

    weight: np.ndarray
    bias: np.ndarray

    @classmethod
    def initialise(
        cls, in_dim: int, out_dim: int, rng: np.random.Generator, *, scale: float | None = None
    ) -> Linear:
        """Xavier-style initialisation (deterministic given the generator)."""
        if scale is None:
            scale = float(np.sqrt(2.0 / (in_dim + out_dim)))
        weight = rng.normal(0.0, scale, size=(in_dim, out_dim))
        bias = np.zeros(out_dim)
        return cls(weight=weight, bias=bias)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.weight.shape[0]:
            raise ShapeError(
                f"linear layer expects input dim {self.weight.shape[0]}, got {x.shape[-1]}"
            )
        return x @ self.weight + self.bias


@dataclass
class LayerNorm:
    """LayerNorm with learned scale and shift."""

    gamma: np.ndarray
    beta: np.ndarray
    eps: float = 1e-5

    @classmethod
    def initialise(cls, dim: int) -> LayerNorm:
        return cls(gamma=np.ones(dim), beta=np.zeros(dim))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return layer_norm(x, self.gamma, self.beta, eps=self.eps)


@dataclass
class Embedding:
    """Word + positional embeddings.

    The paper describes the embedding as ``X[0] @ W_E * delta + lambda`` where
    ``X[0]`` is the one-hot token matrix, ``W_E`` the WordPiece embedding
    table, ``delta`` a positional coefficient and ``lambda`` the positional
    bias.  ``__call__`` takes integer token ids and performs the equivalent
    lookup; :meth:`one_hot_matmul` exposes the explicit one-hot matrix product
    that the encrypted embedding layer must reproduce.
    """

    word_embeddings: np.ndarray        # (vocab, d)
    positional_embeddings: np.ndarray  # (seq_len, d)
    positional_scale: float = 1.0

    @classmethod
    def initialise(
        cls, vocab_size: int, seq_len: int, dim: int, rng: np.random.Generator
    ) -> Embedding:
        word = rng.normal(0.0, 0.02, size=(vocab_size, dim))
        positional = rng.normal(0.0, 0.02, size=(seq_len, dim))
        return cls(word_embeddings=word, positional_embeddings=positional)

    def one_hot(self, token_ids: np.ndarray) -> np.ndarray:
        """Explicit one-hot encoding of a token-id sequence."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        matrix = np.zeros((token_ids.size, self.word_embeddings.shape[0]))
        matrix[np.arange(token_ids.size), token_ids] = 1.0
        return matrix

    def one_hot_matmul(self, token_ids: np.ndarray) -> np.ndarray:
        """The embedding as the paper writes it: one-hot matrix times table."""
        return self.one_hot(token_ids) @ self.word_embeddings

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ShapeError("embedding expects a 1-D sequence of token ids")
        if token_ids.size > self.positional_embeddings.shape[0]:
            raise ShapeError(
                f"sequence length {token_ids.size} exceeds maximum "
                f"{self.positional_embeddings.shape[0]}"
            )
        word = self.word_embeddings[token_ids]
        positional = self.positional_embeddings[: token_ids.size]
        return self.positional_scale * word + positional


@dataclass
class FeedForward:
    """The position-wise feed-forward block: Linear -> GELU -> Linear."""

    intermediate: Linear
    output: Linear

    @classmethod
    def initialise(cls, dim: int, hidden_dim: int, rng: np.random.Generator) -> FeedForward:
        return cls(
            intermediate=Linear.initialise(dim, hidden_dim, rng),
            output=Linear.initialise(hidden_dim, dim, rng),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.output(gelu(self.intermediate(x)))
