"""Project-invariant static analysis (``python -m repro.analysis``).

The serving stack rests on invariants that are otherwise enforced only
dynamically -- COEFF/EVAL domain alignment, the lazy-reduction NTT bound,
scheduler state touched only under its lock, tracker charges paired with
every transform site, seeded-RNG hygiene, registered fault-site names,
fork-safe worker pools, and limb-major array discipline.  This package
makes violations *provable bugs at lint time*: an AST-based checker
framework (:mod:`repro.analysis.core`) plus one rule per invariant
(:mod:`repro.analysis.rules`), with inline
``# repro-lint: disable=RULE(reason)`` suppressions that are themselves
counted and budgeted, and a committed baseline file enforcing "no new
findings" in CI.
"""

from .core import (
    AnalysisResult,
    Baseline,
    Finding,
    ParsedModule,
    Rule,
    all_rules,
    analyze,
    default_roots,
    register,
    tree_stats,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "ParsedModule",
    "Rule",
    "all_rules",
    "analyze",
    "default_roots",
    "register",
    "tree_stats",
]
