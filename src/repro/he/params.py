"""Parameter sets for the BFV-style additive HE layer.

The paper uses SEAL with parameters providing a 128-bit security level, only
additive operations, ciphertext-plaintext multiplications and rotations.  The
exact Python backend in :mod:`repro.he.bfv` cannot realistically run with a
4096-slot / 109-bit modulus on test workloads, so we provide two classes of
parameter sets:

* ``toy``/``test`` parameters (N = 64 … 1024) used by the unit tests and the
  small worked examples — these exercise every code path of the scheme
  bit-exactly;
* ``paper`` parameters (N = 4096, matching Gazelle/Delphi-era PAHE settings
  at 128-bit security), used by the functional simulated backend and by the
  cost model to compute slot counts, ciphertext sizes and rotation counts
  exactly as the real SEAL deployment would.

Security estimation uses the standard homomorphic-encryption-standard table
of (ring dimension → maximum log q) for 128-bit classical security; it is a
table lookup, not an LWE estimator, and is only intended to sanity-check the
``paper`` parameter choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .ntt import find_ntt_prime

__all__ = [
    "BFVParameters",
    "toy_parameters",
    "test_parameters",
    "serving_parameters",
    "paper_parameters",
]


# Homomorphic Encryption Standard (2018), classical 128-bit security:
# maximum size of log2(q) for a given ring dimension.
_HE_STANDARD_128 = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}


@dataclass(frozen=True)
class BFVParameters:
    """Parameters of the BFV additive-HE scheme.

    Attributes
    ----------
    ring_degree:
        Polynomial ring dimension ``N`` (also the number of SIMD slots
        available to the packing layer when the plaintext modulus supports
        batching; this reproduction packs coefficient-wise, so the slot count
        equals ``N``).
    ciphertext_modulus:
        Prime ``q`` (coefficient modulus).
    plaintext_modulus:
        Plaintext modulus ``t``; fixed-point residues must fit below ``t``.
    error_stddev:
        Standard deviation of the discrete Gaussian error distribution.
    security_bits:
        Claimed classical security (informational; checked against the HE
        standard table when the ring degree is listed there).
    """

    ring_degree: int
    ciphertext_modulus: int
    plaintext_modulus: int
    error_stddev: float = 3.2
    security_bits: int = 128
    #: Coefficient-modulus size of the *deployed* scheme (e.g. 60 bits for a
    #: Gazelle-style SEAL instantiation).  The exact Python backend runs with
    #: the NTT-friendly ``ciphertext_modulus`` above, but wire sizes, the
    #: security check and the simulated noise budget use this value when set.
    deployed_modulus_bits: int | None = None

    def __post_init__(self) -> None:
        n = self.ring_degree
        if n < 4 or n & (n - 1) != 0:
            raise ParameterError(f"ring_degree must be a power of two >= 4, got {n}")
        if self.plaintext_modulus >= self.ciphertext_modulus:
            raise ParameterError(
                "plaintext modulus must be smaller than the ciphertext modulus"
            )
        if self.plaintext_modulus < 2:
            raise ParameterError("plaintext modulus must be at least 2")

    @property
    def slot_count(self) -> int:
        """Number of packing slots per ciphertext."""
        return self.ring_degree

    @property
    def delta(self) -> int:
        """The BFV scaling factor ``floor(q / t)``."""
        return self.ciphertext_modulus // self.plaintext_modulus

    @property
    def log_q(self) -> float:
        """Bit-size of the ciphertext modulus."""
        return float(self.ciphertext_modulus.bit_length())

    @property
    def deployed_log_q(self) -> int:
        """Coefficient-modulus bit size used for wire-size and noise modelling."""
        if self.deployed_modulus_bits is not None:
            return self.deployed_modulus_bits
        return self.ciphertext_modulus.bit_length()

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of a (c0, c1) ciphertext pair in bytes."""
        bytes_per_coeff = (self.deployed_log_q + 7) // 8
        return 2 * self.ring_degree * bytes_per_coeff

    @property
    def plaintext_bytes(self) -> int:
        """Serialized size of a packed plaintext in bytes."""
        bytes_per_coeff = (self.plaintext_modulus.bit_length() + 7) // 8
        return self.ring_degree * bytes_per_coeff

    def meets_security_target(self) -> bool:
        """Check the parameters against the HE-standard 128-bit table.

        Ring degrees not present in the table (the toy test sizes) are
        reported as *not* meeting the target, which is accurate: they are for
        correctness testing only.
        """
        max_log_q = _HE_STANDARD_128.get(self.ring_degree)
        if max_log_q is None:
            return False
        return self.deployed_log_q <= max_log_q


def toy_parameters(ring_degree: int = 64) -> BFVParameters:
    """Very small parameters for fast property-based tests."""
    modulus = find_ntt_prime(28, ring_degree)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 15,
        error_stddev=1.0,
        security_bits=0,
        deployed_modulus_bits=60,
    )


def test_parameters(ring_degree: int = 256) -> BFVParameters:
    """Medium parameters used by integration tests and the worked examples."""
    modulus = find_ntt_prime(29, ring_degree)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 15,
        error_stddev=2.0,
        security_bits=0,
        deployed_modulus_bits=60,
    )


def serving_parameters(ring_degree: int = 256) -> BFVParameters:
    """Exact-backend parameters for the batched linear serving path.

    Slot-sharing batches accumulate one scalar product per input feature in a
    single ciphertext, so they need more noise headroom than the toy sets: an
    8-bit plaintext modulus under the largest NTT-friendly 30-bit prime gives
    ``q / 2t ~ 2**21`` of budget, enough for several hundred accumulated
    ciphertext-scalar products at test scale.
    """
    modulus = find_ntt_prime(30, ring_degree)
    return BFVParameters(
        ring_degree=ring_degree,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 8,
        error_stddev=1.0,
        security_bits=0,
        deployed_modulus_bits=60,
    )


def paper_parameters() -> BFVParameters:
    """Gazelle/Delphi-era PAHE parameters at 128-bit security.

    N = 4096 with a ~60-bit coefficient modulus (the HE standard allows up to
    109 bits at this dimension) and a 15-bit-compatible plaintext modulus.
    These parameters are used by the simulated backend and by the cost model;
    the exact backend accepts them but would be slow for full BERT layers.
    """
    # A 2N-friendly ~29-bit prime keeps the exact backend usable if someone
    # instantiates it with paper parameters; the *cost model* uses the
    # serialized sizes below which correspond to a 60-bit modulus as deployed
    # in Gazelle-style PAHE.
    modulus = find_ntt_prime(29, 4096)
    return BFVParameters(
        ring_degree=4096,
        ciphertext_modulus=modulus,
        plaintext_modulus=1 << 15,
        error_stddev=3.2,
        security_bits=128,
        deployed_modulus_bits=60,
    )
