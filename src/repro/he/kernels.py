"""Runtime-selectable HE kernel tiers: reference, compiled, multicore, numba.

PR 5/PR 6 made the hot path algorithmically minimal -- transform and rotation
counts equal their closed forms exactly -- so the remaining wall clock lives
in raw kernel throughput: the Harvey/Shoup butterflies of
:mod:`repro.he.ntt` are vectorized numpy but execute one ufunc pass per
butterfly stage, and the limb-major ``(L, B, N)`` RNS layout of
:mod:`repro.he.rns` is an embarrassingly parallel axis nothing exploits.
This module is the drop-in kernel substitution layer (SEAL's HEXL pattern):
a :class:`KernelTier` interface over the batch forward/inverse NTT, the
pointwise product and the fused multiply-accumulate, with four
implementations selected at runtime and each proven bit-identical to
``reference`` by the property-test harness:

``reference``
    The existing numpy kernels, behavior-identical by construction (it *is*
    the numpy code path in :class:`~repro.he.ntt.NTTContext`).
``compiled``
    A small C kernel (the same lazy-reduction Shoup butterflies, one
    polynomial per inner loop instead of one ufunc pass per stage) compiled
    on first use with the system C compiler and loaded through ``ctypes`` --
    no third-party dependency.  Unavailable environments (no compiler) skip
    it cleanly.
``multicore``
    The compiled kernels chunked over limbs x batch on a shared thread
    pool.  ``ctypes`` releases the GIL for the duration of each C call, so
    the chunks genuinely run in parallel; on a single-core host this
    measures within noise of ``compiled`` and the self-calibration picks
    accordingly.
``numba``
    Optionally, jitted butterflies -- auto-detected, skipped cleanly when
    the ``numba`` import fails (it is not a project dependency).

Bit-identity argument: every tier consumes the *same* precomputed Shoup
twiddle tables and performs the same sequence of exact modular operations;
the lazy interval bookkeeping ([0, 4q) with one conditional subtraction per
stage) only changes *when* reductions happen, and the single final ``% q``
makes the output canonical.  The parametrized tier tests assert equality
against ``reference`` for every available tier across all project moduli.

Selection: explicit argument > :func:`tier_scope` > :func:`set_kernel_tier`
> the ``REPRO_KERNEL_TIER`` environment variable > ``auto``.  ``auto``
self-calibrates once per process: each available tier is timed on a small
stacked transform and the fastest wins; the measured per-kernel costs are
exposed through :func:`calibration_snapshot` for serving stats and bench
metadata.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
import time
from contextlib import contextmanager

import numpy as np

from ..errors import ParameterError

__all__ = [
    "KernelTier",
    "available_tiers",
    "active_tier",
    "active_tier_name",
    "set_kernel_tier",
    "get_kernel_tier",
    "tier_scope",
    "stacked_ntt",
    "ntt_batch",
    "warm_tier",
    "calibration_snapshot",
    "fastest_tier_name",
    "clear_kernel_state",
    "kernel_fallback",
]

#: Shoup shift shared with :mod:`repro.he.ntt` (tables are built there).
_SHOUP_SHIFT = 32

_C_SOURCE = r"""
#include <stdint.h>

typedef uint64_t u64;
typedef int64_t i64;

/* Canonical residue of an arbitrary int64 input (numpy `%` semantics).
   Inputs on the hot path are already reduced, so the division is skipped
   for them; the guard keeps the kernel bit-identical to the numpy
   reference for *any* int64 input. */
static inline u64 reduce_input(i64 v, u64 q)
{
    if ((u64)v < q)
        return (u64)v;
    i64 r = v % (i64)q;
    if (r < 0)
        r += (i64)q;
    return (u64)r;
}

/* Forward negacyclic NTT of `batch` rows of length n, matching the numpy
   reference bit for bit: psi twist folded into the bit-reverse gather,
   Harvey/Shoup butterflies in the lazy interval [0, 4q) with one
   conditional subtraction per stage, and a single final reduction.
   twist_w/twist_ws: psi twist Shoup tables (length n).
   stage_w/stage_ws: concatenated per-stage twiddles (total n - 1).
   work: caller-provided scratch of length n (one per thread). */
void ntt_forward_batch(const i64 *coeffs, i64 *out, i64 batch, i64 n, u64 q,
                       const u64 *twist_w, const u64 *twist_ws,
                       const u64 *stage_w, const u64 *stage_ws,
                       const i64 *bitrev, u64 *work)
{
    const u64 two_q = 2 * q;
    for (i64 r = 0; r < batch; ++r) {
        const i64 *row = coeffs + r * n;
        i64 *orow = out + r * n;
        for (i64 i = 0; i < n; ++i) {
            i64 s = bitrev[i];
            u64 a = reduce_input(row[s], q);
            u64 quot = (a * twist_ws[s]) >> 32;
            work[i] = a * twist_w[s] - quot * q;   /* [0, 2q) */
        }
        i64 toff = 0;
        for (i64 length = 2; length <= n; length <<= 1) {
            i64 half = length >> 1;
            const u64 *w = stage_w + toff;
            const u64 *ws = stage_ws + toff;
            for (i64 blk = 0; blk < n; blk += length) {
                u64 *lo = work + blk;
                u64 *hi = work + blk + half;
                for (i64 j = 0; j < half; ++j) {
                    u64 a = lo[j];
                    if (a >= two_q) a -= two_q;
                    u64 b = hi[j];
                    u64 quot = (b * ws[j]) >> 32;
                    u64 t = b * w[j] - quot * q;   /* [0, 2q) */
                    lo[j] = a + t;                 /* [0, 4q) */
                    hi[j] = a + two_q - t;         /* [0, 4q) */
                }
            }
            toff += half;
        }
        for (i64 i = 0; i < n; ++i)
            orow[i] = (i64)(work[i] % q);
    }
}

/* Inverse negacyclic NTT: bit-reverse gather, the same stage structure
   with inverse twiddles, then the fused psi^-i * n^-1 Shoup multiply
   (scale_w/scale_ws) with its single conditional correction. */
void ntt_inverse_batch(const i64 *values, i64 *out, i64 batch, i64 n, u64 q,
                       const u64 *scale_w, const u64 *scale_ws,
                       const u64 *stage_w, const u64 *stage_ws,
                       const i64 *bitrev, u64 *work)
{
    const u64 two_q = 2 * q;
    for (i64 r = 0; r < batch; ++r) {
        const i64 *row = values + r * n;
        i64 *orow = out + r * n;
        for (i64 i = 0; i < n; ++i)
            work[i] = reduce_input(row[bitrev[i]], q);
        i64 toff = 0;
        for (i64 length = 2; length <= n; length <<= 1) {
            i64 half = length >> 1;
            const u64 *w = stage_w + toff;
            const u64 *ws = stage_ws + toff;
            for (i64 blk = 0; blk < n; blk += length) {
                u64 *lo = work + blk;
                u64 *hi = work + blk + half;
                for (i64 j = 0; j < half; ++j) {
                    u64 a = lo[j];
                    if (a >= two_q) a -= two_q;
                    u64 b = hi[j];
                    u64 quot = (b * ws[j]) >> 32;
                    u64 t = b * w[j] - quot * q;
                    lo[j] = a + t;
                    hi[j] = a + two_q - t;
                }
            }
            toff += half;
        }
        for (i64 i = 0; i < n; ++i) {
            u64 a = work[i] % q;
            u64 quot = (a * scale_ws[i]) >> 32;
            u64 t = a * scale_w[i] - quot * q;
            if (t >= q) t -= q;
            out[r * n + i] = (i64)t;
        }
    }
}

/* Pointwise a * b mod q over canonical residues (a, b in [0, q), q < 2^30,
   so the product fits u64) with a Barrett reduction: magic = floor(2^64/q)
   precomputed in Python, correction loop exact for any operand. */
void pointwise_mulmod(const i64 *a, const i64 *b, i64 *out, i64 count,
                      u64 q, u64 magic)
{
    for (i64 i = 0; i < count; ++i) {
        u64 x = (u64)a[i] * (u64)b[i];
        u64 quot = (u64)(((__uint128_t)x * magic) >> 64);
        u64 r = x - quot * q;
        while (r >= q)
            r -= q;
        out[i] = (i64)r;
    }
}
"""


# -- compilation + loading ---------------------------------------------------

_lib_lock = threading.Lock()
_lib: ctypes.CDLL | None | bool = None  # None = not tried, False = failed
_lib_error: str | None = None


def _source_digest() -> str:
    return hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]


def _build_dir() -> str:
    # Per-user, per-source-version cache so one compile serves every process.
    tag = f"repro-kernels-{os.getuid()}-{_source_digest()}"
    return os.path.join(tempfile.gettempdir(), tag)


def _compile_library() -> ctypes.CDLL | None:
    """Compile and load the C kernels; None (with a reason) when impossible."""
    global _lib_error
    build = _build_dir()
    so_path = os.path.join(build, "libreprokernels.so")
    try:
        if not os.path.exists(so_path):
            os.makedirs(build, exist_ok=True)
            src_path = os.path.join(build, "kernels.c")
            with open(src_path, "w") as handle:
                handle.write(_C_SOURCE)
            compiler = None
            for candidate in ("cc", "gcc", "clang"):
                from shutil import which

                if which(candidate):
                    compiler = candidate
                    break
            if compiler is None:
                _lib_error = "no C compiler (cc/gcc/clang) on PATH"
                return None
            tmp_out = so_path + f".tmp-{os.getpid()}"
            result = subprocess.run(
                [
                    compiler, "-O3", "-march=native", "-funroll-loops",
                    "-shared", "-fPIC", src_path, "-o", tmp_out,
                ],
                capture_output=True, text=True, timeout=120,
            )
            if result.returncode != 0:
                _lib_error = f"{compiler} failed: {result.stderr.strip()[:400]}"
                return None
            os.replace(tmp_out, so_path)  # atomic vs concurrent builders
        lib = ctypes.CDLL(so_path)
    except Exception as error:  # pragma: no cover - environment-specific
        _lib_error = f"{type(error).__name__}: {error}"
        return None
    void_p = ctypes.c_void_p
    for name in ("ntt_forward_batch", "ntt_inverse_batch"):
        fn = getattr(lib, name)
        fn.restype = None
        fn.argtypes = [
            void_p, void_p, ctypes.c_int64, ctypes.c_int64, ctypes.c_uint64,
            void_p, void_p, void_p, void_p, void_p, void_p,
        ]
    lib.pointwise_mulmod.restype = None
    lib.pointwise_mulmod.argtypes = [
        void_p, void_p, void_p, ctypes.c_int64, ctypes.c_uint64, ctypes.c_uint64,
    ]
    return lib


def _compiled_lib() -> ctypes.CDLL | None:
    global _lib
    with _lib_lock:
        if _lib is None:
            loaded = _compile_library()
            _lib = loaded if loaded is not None else False
        return _lib if _lib is not False else None


# -- packed twiddle tables ---------------------------------------------------

class _PackedTables:
    """The NTT context's Shoup tables, contiguous and concatenated for C.

    The numpy reference keeps one ``(twiddle, shoup)`` pair per butterfly
    stage; the C/numba kernels index one flat table per direction with a
    running stage offset, so the per-stage arrays are concatenated once per
    context (``n - 1`` entries total) and every array is made C-contiguous
    (``forward_batch`` outputs, in particular, carry non-trivial strides).
    """

    __slots__ = (
        "n", "q", "magic", "twist_w", "twist_ws", "scale_w", "scale_ws",
        "stage_w", "stage_ws", "istage_w", "istage_ws", "bitrev",
    )

    def __init__(self, ctx) -> None:
        contig = np.ascontiguousarray
        self.n = ctx.ring_degree
        self.q = ctx.modulus
        self.magic = (1 << 64) // ctx.modulus
        self.twist_w = contig(ctx._psi_twist[0])
        self.twist_ws = contig(ctx._psi_twist[1])
        self.scale_w = contig(ctx._psi_inv_scaled[0])
        self.scale_ws = contig(ctx._psi_inv_scaled[1])
        self.stage_w = contig(np.concatenate([s[0] for s in ctx._omega_stages]))
        self.stage_ws = contig(np.concatenate([s[1] for s in ctx._omega_stages]))
        self.istage_w = contig(np.concatenate([s[0] for s in ctx._omega_inv_stages]))
        self.istage_ws = contig(np.concatenate([s[1] for s in ctx._omega_inv_stages]))
        self.bitrev = contig(ctx._bitrev.astype(np.int64))


_tables_lock = threading.Lock()


def _packed_tables(ctx) -> _PackedTables:
    tables = getattr(ctx, "_kernel_tables", None)
    if tables is None:
        with _tables_lock:
            tables = getattr(ctx, "_kernel_tables", None)
            if tables is None:
                tables = _PackedTables(ctx)
                ctx._kernel_tables = tables
    return tables


def _ptr(array: np.ndarray) -> int:
    return array.ctypes.data


# -- tier implementations ----------------------------------------------------

class KernelTier:
    """One implementation of the batch NTT / pointwise / fused kernels.

    ``fused`` gates the fused multiply-accumulate paths on the backends
    (tensordot accumulation instead of per-term intermediates); it is off
    for ``reference`` so that tier's behaviour -- including the exact
    sequence of numpy operations -- matches the historical code path.
    """

    name = "reference"
    fused = False

    @property
    def available(self) -> bool:
        return True

    def unavailable_reason(self) -> str | None:
        return None

    def warm(self, ctx) -> None:
        """Pre-build any per-context state (worker-pool initialisers)."""

    # ``arr`` is a validated (B, N) int64 array; returns canonical residues.
    def ntt_batch(self, ctx, arr: np.ndarray, inverse: bool) -> np.ndarray:
        if inverse:
            return ctx._inverse_batch_numpy(arr)
        return ctx._forward_batch_numpy(arr)

    def stacked_ntt(self, contexts, polys: np.ndarray, inverse: bool) -> np.ndarray:
        """Limb-wise transform of a stacked ``(L, B, N)`` batch."""
        return np.stack(
            [
                self.ntt_batch(ctx, polys[i], inverse)
                for i, ctx in enumerate(contexts)
            ]
        )

    def mul_eval(self, a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
        """Pointwise product of canonical residue arrays mod ``moduli``."""
        return a * b % moduli

    def fused_accumulate(
        self, weights: np.ndarray, stacked: np.ndarray, moduli
    ) -> np.ndarray:
        """``sum_k weights[k, j] * stacked[k]`` mod ``moduli``, all ``j`` at once.

        ``weights`` is ``(C, O)`` centered int64, ``stacked`` ``(C, ...)``;
        the contraction runs over the shared leading axis in one tensordot
        instead of ``C`` scaled copies and ``C - 1`` additions, and the
        single final reduction is bit-identical to reducing after every
        step (callers guard the int64 overflow bound).
        """
        return np.tensordot(weights, stacked, axes=(0, 0)) % moduli


class _ReferenceTier(KernelTier):
    name = "reference"
    fused = False


class _CompiledTier(KernelTier):
    """C kernels through ctypes; compiled once per machine, cached on disk."""

    name = "compiled"
    fused = True

    @property
    def available(self) -> bool:
        return _compiled_lib() is not None

    def unavailable_reason(self) -> str | None:
        return None if self.available else (_lib_error or "compile failed")

    def warm(self, ctx) -> None:
        _compiled_lib()
        _packed_tables(ctx)

    def _call(
        self, lib, tables: _PackedTables, arr: np.ndarray, out: np.ndarray,
        work: np.ndarray, inverse: bool,
    ) -> None:
        if inverse:
            lib.ntt_inverse_batch(
                _ptr(arr), _ptr(out), arr.shape[0], tables.n, tables.q,
                _ptr(tables.scale_w), _ptr(tables.scale_ws),
                _ptr(tables.istage_w), _ptr(tables.istage_ws),
                _ptr(tables.bitrev), _ptr(work),
            )
        else:
            lib.ntt_forward_batch(
                _ptr(arr), _ptr(out), arr.shape[0], tables.n, tables.q,
                _ptr(tables.twist_w), _ptr(tables.twist_ws),
                _ptr(tables.stage_w), _ptr(tables.stage_ws),
                _ptr(tables.bitrev), _ptr(work),
            )

    def ntt_batch(self, ctx, arr: np.ndarray, inverse: bool) -> np.ndarray:
        lib = _compiled_lib()
        tables = _packed_tables(ctx)
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        out = np.empty_like(arr)
        work = np.empty(tables.n, dtype=np.uint64)
        self._call(lib, tables, arr, out, work, inverse)
        return out

    def mul_eval(self, a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
        # The C path needs same-shape limb-major operands; broadcasting
        # shapes fall back to numpy (bit-identical either way).
        if (
            a.shape != b.shape
            or a.ndim < 2
            or not isinstance(moduli, np.ndarray)
            or moduli.shape[0] != a.shape[0]
        ):
            return a * b % moduli
        lib = _compiled_lib()
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        out = np.empty_like(a)
        count = a[0].size
        flat_moduli = moduli.reshape(-1)
        for i in range(a.shape[0]):
            q = int(flat_moduli[i])
            lib.pointwise_mulmod(
                _ptr(a[i]), _ptr(b[i]), _ptr(out[i]), count, q, (1 << 64) // q
            )
        return out


#: Row-chunk floor for the multicore tier: below this many rows per limb the
#: pool overhead outweighs the parallelism and one task takes the whole limb.
_MIN_CHUNK_ROWS = 4

_pool_lock = threading.Lock()
_pool = None
_pool_pid = None


def _worker_pool():
    global _pool, _pool_pid
    with _pool_lock:
        # The pid check makes the pool fork-safe: a forked worker process
        # (the pipelined drain's offline-prepare pool) inherits ``_pool``
        # non-None but none of its threads, so submitting to it would hang
        # forever.  A child therefore builds its own fresh pool.
        if _pool is None or _pool_pid != os.getpid():
            from concurrent.futures import ThreadPoolExecutor

            _pool = ThreadPoolExecutor(
                max_workers=max(1, os.cpu_count() or 1),
                thread_name_prefix="repro-kernel",
            )
            _pool_pid = os.getpid()
        return _pool


class _MulticoreTier(_CompiledTier):
    """Compiled kernels chunked over limbs x batch on a shared thread pool.

    ``ctypes`` drops the GIL for the duration of each C call, so chunks run
    concurrently on real cores; every task owns its scratch buffer and
    writes a disjoint row range of the preallocated output.
    """

    name = "multicore"
    fused = True

    def _chunks(self, limbs: int, rows: int) -> list[tuple[int, int, int]]:
        workers = max(1, os.cpu_count() or 1)
        per_limb = max(1, min(workers, rows // _MIN_CHUNK_ROWS) or 1)
        step = -(-rows // per_limb)
        return [
            (limb, start, min(rows, start + step))
            for limb in range(limbs)
            for start in range(0, rows, step)
        ]

    def stacked_ntt(self, contexts, polys: np.ndarray, inverse: bool) -> np.ndarray:
        lib = _compiled_lib()
        tables = [_packed_tables(ctx) for ctx in contexts]
        polys = np.ascontiguousarray(polys, dtype=np.int64)
        out = np.empty_like(polys)
        rows = polys.shape[1]
        tasks = self._chunks(len(contexts), rows)
        if len(tasks) <= 1:
            work = np.empty(polys.shape[2], dtype=np.uint64)
            for limb in range(len(contexts)):
                self._call(lib, tables[limb], polys[limb], out[limb], work, inverse)
            return out

        def run(task: tuple[int, int, int]) -> None:
            limb, start, stop = task
            work = np.empty(polys.shape[2], dtype=np.uint64)
            self._call(
                lib, tables[limb], polys[limb, start:stop], out[limb, start:stop],
                work, inverse,
            )

        futures = [_worker_pool().submit(run, task) for task in tasks]
        for future in futures:
            future.result()
        return out

    def ntt_batch(self, ctx, arr: np.ndarray, inverse: bool) -> np.ndarray:
        return self.stacked_ntt([ctx], arr[None, ...], inverse)[0]


class _NumbaTier(KernelTier):
    """Jitted butterflies -- auto-detected, skipped cleanly without numba."""

    name = "numba"
    fused = True

    def __init__(self) -> None:
        self._kernels = None
        self._error: str | None = None
        self._lock = threading.Lock()

    def _ensure(self):
        with self._lock:
            if self._kernels is None and self._error is None:
                try:
                    self._kernels = _build_numba_kernels()
                except Exception as error:
                    self._error = f"{type(error).__name__}: {error}"
            return self._kernels

    @property
    def available(self) -> bool:
        return self._ensure() is not None

    def unavailable_reason(self) -> str | None:
        self._ensure()
        return self._error

    def warm(self, ctx) -> None:
        if self._ensure() is not None:
            _packed_tables(ctx)
            probe = np.zeros((1, ctx.ring_degree), dtype=np.int64)
            self.ntt_batch(ctx, probe, inverse=False)  # trigger the jit

    def ntt_batch(self, ctx, arr: np.ndarray, inverse: bool) -> np.ndarray:
        forward_jit, inverse_jit = self._ensure()
        tables = _packed_tables(ctx)
        q = np.uint64(tables.q)
        reduced = np.ascontiguousarray(arr % tables.q).astype(np.uint64)
        out = np.empty(arr.shape, dtype=np.int64)
        work = np.empty(tables.n, dtype=np.uint64)
        if inverse:
            inverse_jit(
                reduced, out, tables.n, q, tables.scale_w, tables.scale_ws,
                tables.istage_w, tables.istage_ws, tables.bitrev, work,
            )
        else:
            forward_jit(
                reduced, out, tables.n, q, tables.twist_w, tables.twist_ws,
                tables.stage_w, tables.stage_ws, tables.bitrev, work,
            )
        return out


def _build_numba_kernels():
    import numba

    shift = np.uint64(_SHOUP_SHIFT)

    @numba.njit(nogil=True, cache=False)
    def forward(reduced, out, n, q, twist_w, twist_ws, stage_w, stage_ws,
                bitrev, work):
        two_q = q + q
        for r in range(reduced.shape[0]):
            for i in range(n):
                s = bitrev[i]
                a = reduced[r, s]
                quot = (a * twist_ws[s]) >> shift
                work[i] = a * twist_w[s] - quot * q
            length = 2
            toff = 0
            while length <= n:
                half = length // 2
                blk = 0
                while blk < n:
                    for j in range(half):
                        a = work[blk + j]
                        if a >= two_q:
                            a -= two_q
                        b = work[blk + half + j]
                        quot = (b * stage_ws[toff + j]) >> shift
                        t = b * stage_w[toff + j] - quot * q
                        work[blk + j] = a + t
                        work[blk + half + j] = a + two_q - t
                    blk += length
                toff += half
                length *= 2
            for i in range(n):
                out[r, i] = np.int64(work[i] % q)

    @numba.njit(nogil=True, cache=False)
    def inverse(reduced, out, n, q, scale_w, scale_ws, stage_w, stage_ws,
                bitrev, work):
        two_q = q + q
        for r in range(reduced.shape[0]):
            for i in range(n):
                work[i] = reduced[r, bitrev[i]]
            length = 2
            toff = 0
            while length <= n:
                half = length // 2
                blk = 0
                while blk < n:
                    for j in range(half):
                        a = work[blk + j]
                        if a >= two_q:
                            a -= two_q
                        b = work[blk + half + j]
                        quot = (b * stage_ws[toff + j]) >> shift
                        t = b * stage_w[toff + j] - quot * q
                        work[blk + j] = a + t
                        work[blk + half + j] = a + two_q - t
                    blk += length
                toff += half
                length *= 2
            for i in range(n):
                a = work[i] % q
                quot = (a * scale_ws[i]) >> shift
                t = a * scale_w[i] - quot * q
                if t >= q:
                    t -= q
                out[r, i] = np.int64(t)

    return forward, inverse


# -- registry + selection ----------------------------------------------------

_TIERS: dict[str, KernelTier] = {
    "reference": _ReferenceTier(),
    "compiled": _CompiledTier(),
    "multicore": _MulticoreTier(),
    "numba": _NumbaTier(),
}

#: env var consulted on every resolution (so tests can monkeypatch it).
ENV_VAR = "REPRO_KERNEL_TIER"

_state_lock = threading.Lock()
_global_tier: str | None = None
_auto_tier: str | None = None
_calibration: dict[str, dict[str, float]] = {}
_tls = threading.local()

#: degradation pin: a kernel fault at dispatch demotes the whole process to
#: the ``reference`` tier (``(failed tier, reason)``; see :func:`kernel_fallback`).
#: Checked *before* every other selection mechanism -- a process that just
#: produced a kernel failure must not re-enter the failing tier through an
#: explicit argument or scope.
_fallback: tuple[str, str] | None = None

#: fault-injection hook, installed by :mod:`repro.runtime.faults` on import
#: (dependency inversion: the HE layer never imports the runtime).  While
#: absent -- any process that never imports the fault layer -- dispatch pays
#: one ``None`` check.
_fault_hook = None

#: the registered fault-site name of the NTT dispatch entry points
FAULT_SITE = "kernel_dispatch"


def available_tiers() -> list[str]:
    """Names of the tiers usable in this environment, reference first."""
    return [name for name, tier in _TIERS.items() if tier.available]


def set_kernel_tier(name: str | None) -> None:
    """Pin the process-wide tier (None restores env/auto resolution)."""
    global _global_tier
    if name is not None:
        _validate(name)
    _global_tier = name


def get_kernel_tier() -> str | None:
    """The explicitly pinned process-wide tier name, if any."""
    return _global_tier


@contextmanager
def tier_scope(name: str | None):
    """Thread-local tier override for a ``with`` block (None = no-op)."""
    if name is None:
        yield
        return
    _validate(name)
    previous = getattr(_tls, "override", None)
    _tls.override = name
    try:
        yield
    finally:
        _tls.override = previous


def _validate(name: str) -> None:
    if name == "auto":
        return
    tier = _TIERS.get(name)
    if tier is None:
        raise ParameterError(
            f"unknown kernel tier {name!r}; expected one of "
            f"{sorted(_TIERS)} or 'auto'"
        )
    if not tier.available:
        raise ParameterError(
            f"kernel tier {name!r} is unavailable here: "
            f"{tier.unavailable_reason()}"
        )


def active_tier_name(explicit: str | None = None) -> str:
    """Resolve the tier in effect: fallback pin > explicit > scope > global >
    env > auto (the pin exists only after a kernel fault, see
    :func:`kernel_fallback`)."""
    if _fallback is not None:
        return "reference"
    name = (
        explicit
        or getattr(_tls, "override", None)
        or _global_tier
        or os.environ.get(ENV_VAR)
        or "auto"
    )
    _validate(name)
    if name == "auto":
        return fastest_tier_name()
    return name


def active_tier(explicit: str | None = None) -> KernelTier:
    """The :class:`KernelTier` in effect (see :func:`active_tier_name`)."""
    return _TIERS[active_tier_name(explicit)]


def fastest_tier_name() -> str:
    """The self-calibrated fastest available tier (measured once per process)."""
    global _auto_tier
    if _auto_tier is None:
        with _state_lock:
            if _auto_tier is None:
                _auto_tier = _calibrate()
    return _auto_tier


def calibration_snapshot() -> dict[str, dict[str, float]]:
    """Measured per-tier kernel costs from the last self-calibration."""
    fastest_tier_name()  # ensure the measurement ran
    return {name: dict(costs) for name, costs in _calibration.items()}


def clear_kernel_state() -> None:
    """Reset selection + calibration + fallback state (tests)."""
    global _global_tier, _auto_tier, _fallback
    with _state_lock:
        _global_tier = None
        _auto_tier = None
        _fallback = None
        _calibration.clear()
        _tls.override = None


def kernel_fallback() -> tuple[str, str] | None:
    """The ``(failed tier, reason)`` of an active reference pin, or ``None``.

    A non-``reference`` tier that raises at dispatch demotes the whole
    process to ``reference`` (the degradation ladder's last kernel rung):
    the failed call re-runs on the reference kernels and every later
    resolution returns ``reference`` regardless of explicit arguments,
    scopes or the environment, until :func:`clear_kernel_state`.
    """
    return _fallback


def _pin_reference_fallback(tier_name: str, reason: str) -> None:
    global _fallback
    with _state_lock:
        if _fallback is None:
            _fallback = (tier_name, reason)


#: Calibration workload: two limbs of a small ring, a handful of rows --
#: big enough that per-call overhead does not dominate, small enough that
#: first use costs milliseconds.
_CALIBRATION_DEGREE = 1024
_CALIBRATION_ROWS = 8
_CALIBRATION_REPEATS = 3


def _calibrate() -> str:
    from .ntt import find_rns_primes, get_ntt_context

    n = _CALIBRATION_DEGREE
    primes = find_rns_primes(28, n, 2)
    contexts = [get_ntt_context(n, q) for q in primes]
    rng_free = (
        np.arange(len(primes) * _CALIBRATION_ROWS * n, dtype=np.int64)
        .reshape(len(primes), _CALIBRATION_ROWS, n)
    )
    polys = rng_free % np.array(primes, dtype=np.int64)[:, None, None]
    moduli = np.array(primes, dtype=np.int64)[:, None, None]
    reference = None
    best_name, best_seconds = "reference", float("inf")
    for name, tier in _TIERS.items():
        if not tier.available:
            continue
        for ctx in contexts:
            tier.warm(ctx)
        ntt_seconds = float("inf")
        mul_seconds = float("inf")
        forward = None
        for _ in range(_CALIBRATION_REPEATS):
            start = time.perf_counter()
            forward = tier.stacked_ntt(contexts, polys, inverse=False)
            tier.stacked_ntt(contexts, forward, inverse=True)
            ntt_seconds = min(ntt_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            tier.mul_eval(forward, forward, moduli)
            mul_seconds = min(mul_seconds, time.perf_counter() - start)
        if reference is None:
            reference = forward
        elif not np.array_equal(forward, reference):  # pragma: no cover
            # A miscompiled kernel must never win selection silently.
            continue
        _calibration[name] = {
            "ntt_seconds": ntt_seconds,
            "mul_eval_seconds": mul_seconds,
        }
        if ntt_seconds < best_seconds:
            best_name, best_seconds = name, ntt_seconds
    return best_name


# -- module-level kernel entry points ---------------------------------------

def _guarded_dispatch(tier_name: str, op: str, run):
    """Run ``run(tier)`` under the kernel-dispatch fault site.

    A failure in a non-``reference`` tier -- injected or real (miscompiled
    library, thread-pool breakage) -- pins the process to ``reference``
    (:func:`kernel_fallback`) and re-runs the call there, so the caller
    still gets its bit-identical result; ``reference`` failures and
    validation errors propagate.
    """
    try:
        if _fault_hook is not None:
            _fault_hook(FAULT_SITE, f"{op}:{tier_name}")
        return run(_TIERS[tier_name])
    except ParameterError:
        raise
    except Exception as exc:  # noqa: BLE001 - demoted to reference below
        if tier_name == "reference":
            raise
        _pin_reference_fallback(tier_name, f"{op}: {exc!r}")
        return run(_TIERS["reference"])


def stacked_ntt(
    contexts, polys: np.ndarray, *, inverse: bool, kernel_tier: str | None = None
) -> np.ndarray:
    """Transform a limb-major ``(L, B, N)`` batch under the active tier.

    One call covers every limb -- the single stacked kernel invocation the
    RNS layer hands to the tier, which chunks it over limbs x batch as it
    sees fit (``multicore``) or loops limbs natively (others).
    """
    polys = np.asarray(polys, dtype=np.int64)
    if polys.ndim != 3 or polys.shape[0] != len(contexts):
        raise ParameterError(
            f"stacked NTT expects shape ({len(contexts)}, batch, N), "
            f"got {polys.shape}"
        )
    for ctx in contexts:
        if polys.shape[2] != ctx.ring_degree:
            raise ParameterError(
                f"stacked NTT expects ring degree {ctx.ring_degree}, "
                f"got {polys.shape[2]}"
            )
    tier_name = active_tier_name(kernel_tier)
    return _guarded_dispatch(
        tier_name, "stacked_ntt",
        lambda tier: tier.stacked_ntt(contexts, polys, inverse),
    )


def ntt_batch(
    ctx, rows: np.ndarray, *, inverse: bool, kernel_tier: str | None = None
) -> np.ndarray:
    """Single-context batch NTT under the active tier (fault-guarded).

    The dispatch entry :class:`~repro.he.ntt.NTTContext` uses for its
    ``forward_batch``/``inverse_batch``, sharing :func:`stacked_ntt`'s
    kernel-dispatch fault site and reference fallback pin.
    """
    tier_name = active_tier_name(kernel_tier)
    return _guarded_dispatch(
        tier_name, "ntt_batch",
        lambda tier: tier.ntt_batch(ctx, rows, inverse=inverse),
    )


def warm_tier(ctx, kernel_tier: str | None = None) -> None:
    """Warm the active tier's per-context state (tables, compiled library)."""
    active_tier(kernel_tier).warm(ctx)
