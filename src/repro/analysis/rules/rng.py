"""RL004 -- RNG hygiene.

Everything in the project threads explicit seeded
``np.random.Generator`` objects: bit-identical replay is what makes the
kernel-tier cross-checks, the fault-injection determinism, and the
one-limb == historical-ciphertext equivalences provable.  Hidden global
RNG state breaks all of that silently, so this rule bans:

* ``import random`` / ``from random import ...`` (the stdlib global RNG);
* legacy global numpy RNG calls -- ``np.random.seed``, ``np.random.rand``,
  ``np.random.randint``, ... (anything but ``default_rng``/``Generator``
  attribute access);
* **unseeded** ``np.random.default_rng()`` (zero arguments).

``np.random.default_rng(seed)`` with an explicit seed and
``np.random.Generator`` annotations are the sanctioned idiom.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..core import Finding, ParsedModule, Rule, register

#: np.random attributes that are fine: the modern generator entry point
#: and type names used in annotations/isinstance checks.
_ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}


def _is_np_random(node: ast.expr) -> bool:
    """Matches ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@register
class RngHygieneRule(Rule):
    rule_id = "RL004"
    summary = "no global/legacy RNG; explicit seeded Generators only"
    fix_hint = (
        "thread an explicit np.random.default_rng(seed) Generator through "
        "the call instead of global RNG state"
    )

    def applies_to(self, module: ParsedModule) -> bool:
        # src/repro plus the runnable trees; tests may deliberately scramble
        # the global stream to prove the code under test ignores it.
        return not module.in_package("tests")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node.lineno,
                            "stdlib 'random' module imported (global RNG state)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module, node.lineno,
                        "stdlib 'random' functions imported (global RNG state)",
                    )
            elif isinstance(node, ast.Attribute) and _is_np_random(node.value):
                if node.attr in _ALLOWED_NP_RANDOM:
                    continue
                yield self.finding(
                    module, node.lineno,
                    f"legacy global numpy RNG 'np.random.{node.attr}' used",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "default_rng"
                    and _is_np_random(func.value)
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        module, node.lineno,
                        "unseeded np.random.default_rng() (non-reproducible stream)",
                    )
