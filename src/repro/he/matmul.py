"""Encrypted matrix products on top of an :class:`~repro.he.backend.HEBackend`.

Two families of routines live here:

1. :class:`PackedMatrix` and the additive products ``Enc(X) @ W`` /
   ``A @ Enc(B)`` used by the HGS/FHGS/CHGS protocols.  These pack one matrix
   *column* (or row) per ciphertext, so only ciphertext-scalar products and
   ciphertext additions are required -- exactly the "additive HE operations"
   regime the paper runs SEAL in.

2. :func:`encrypted_packed_matmul` -- the rotation-based product following the
   paper's Figure 6 pseudo-code, parameterised by the packing layout
   (feature-based vs tokens-first, plus the rotation-minimal BSGS diagonal
   kernel of :mod:`repro.he.bsgs`).  It is used by the packing experiments
   to demonstrate the rotation-count reduction with measured (not just
   closed-form) counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ParameterError, ShapeError
from .backend import HEBackend
from .bsgs import BSGSCosts, BSGSMatmulPlan, bsgs_batch_matmul, bsgs_geometry, bsgs_matmul
from .packing import PackedInput, PackingLayout, pack_matrix

__all__ = [
    "PackedMatrix",
    "encrypt_matrix_columns",
    "encrypt_matrix_rows",
    "enc_times_plain",
    "plain_times_enc",
    "decrypt_matrix",
    "repack_columns_to_rows",
    "tile_packed",
    "encrypted_packed_matmul",
    "bsgs_kernel_fits",
    "encrypted_batch_matmul",
]


@dataclass
class PackedMatrix:
    """An encrypted matrix packed one column (or row) per ciphertext.

    ``axis`` names which matrix axis varies *within* a ciphertext's slots:

    * ``axis == "columns"`` means ciphertext ``j`` encrypts column ``j`` and
      its slots run over the rows;
    * ``axis == "rows"`` means ciphertext ``i`` encrypts row ``i`` and its
      slots run over the columns.
    """

    handles: list[Any]
    shape: tuple[int, int]
    axis: str

    def __post_init__(self) -> None:
        if self.axis not in ("columns", "rows"):
            raise ParameterError(f"axis must be 'columns' or 'rows', got {self.axis!r}")
        expected = self.shape[1] if self.axis == "columns" else self.shape[0]
        if len(self.handles) != expected:
            raise ShapeError(
                f"packed matrix with shape {self.shape} and axis {self.axis} "
                f"needs {expected} ciphertexts, got {len(self.handles)}"
            )


def encrypt_matrix_columns(backend: HEBackend, matrix: np.ndarray) -> PackedMatrix:
    """Encrypt a matrix column-wise (ciphertext ``j`` holds column ``j``)."""
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise ShapeError("expected a 2-D matrix")
    if matrix.shape[0] > backend.slot_count:
        raise ParameterError(
            f"column length {matrix.shape[0]} exceeds slot count {backend.slot_count}"
        )
    handles = backend.encrypt_batch([matrix[:, j] for j in range(matrix.shape[1])])
    return PackedMatrix(handles=handles, shape=matrix.shape, axis="columns")


def encrypt_matrix_rows(backend: HEBackend, matrix: np.ndarray) -> PackedMatrix:
    """Encrypt a matrix row-wise (ciphertext ``i`` holds row ``i``)."""
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise ShapeError("expected a 2-D matrix")
    if matrix.shape[1] > backend.slot_count:
        raise ParameterError(
            f"row length {matrix.shape[1]} exceeds slot count {backend.slot_count}"
        )
    handles = backend.encrypt_batch([matrix[i, :] for i in range(matrix.shape[0])])
    return PackedMatrix(handles=handles, shape=matrix.shape, axis="rows")


def decrypt_matrix(backend: HEBackend, packed: PackedMatrix) -> np.ndarray:
    """Decrypt a :class:`PackedMatrix` back into a dense residue matrix."""
    rows, cols = packed.shape
    result = np.zeros((rows, cols), dtype=np.int64)
    decrypted = backend.decrypt_batch(packed.handles)
    if packed.axis == "columns":
        for j, values in enumerate(decrypted):
            result[:, j] = values[:rows]
    else:
        for i, values in enumerate(decrypted):
            result[i, :] = values[:cols]
    return result


def enc_times_plain(
    backend: HEBackend, packed_x: PackedMatrix, weights: np.ndarray
) -> PackedMatrix:
    """Compute ``Enc(X) @ W`` where ``X`` is column-packed and ``W`` is plaintext.

    Output column ``j`` is the linear combination
    ``sum_k Enc(X[:, k]) * W[k, j]``, which uses only ciphertext-scalar
    multiplications and ciphertext additions.  The result is column-packed.
    """
    weights = np.asarray(weights, dtype=np.int64)
    if packed_x.axis != "columns":
        raise ParameterError("enc_times_plain expects a column-packed left operand")
    n, d = packed_x.shape
    if weights.shape[0] != d:
        raise ShapeError(f"cannot multiply {packed_x.shape} by {weights.shape}")
    combined = backend.linear_combine_batch(packed_x.handles, weights)
    out_cols = [acc if acc is not None else backend.zero(n) for acc in combined]
    return PackedMatrix(handles=out_cols, shape=(n, weights.shape[1]), axis="columns")


def plain_times_enc(
    backend: HEBackend, matrix: np.ndarray, packed_b: PackedMatrix
) -> PackedMatrix:
    """Compute ``A @ Enc(B)`` where ``A`` is plaintext and ``B`` is row-packed.

    Output row ``i`` is ``sum_k A[i, k] * Enc(B[k, :])``; only scalar products
    and additions are needed.  The result is row-packed.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if packed_b.axis != "rows":
        raise ParameterError("plain_times_enc expects a row-packed right operand")
    b_rows, b_cols = packed_b.shape
    if matrix.shape[1] != b_rows:
        raise ShapeError(f"cannot multiply {matrix.shape} by {packed_b.shape}")
    # Row ``i`` of the result is the linear combination with scalar column
    # ``matrix[i, :]`` -- i.e. the batch combine against ``matrix.T``.
    combined = backend.linear_combine_batch(packed_b.handles, matrix.T)
    out_rows = [acc if acc is not None else backend.zero(b_cols) for acc in combined]
    return PackedMatrix(
        handles=out_rows, shape=(matrix.shape[0], b_cols), axis="rows"
    )


def repack_columns_to_rows(backend: HEBackend, packed: PackedMatrix) -> PackedMatrix:
    """Convert a column-packed encrypted matrix into a row-packed one.

    Real SEAL deployments perform this slot re-arrangement with masking
    plaintext multiplications and Galois rotations; that is where most of the
    homomorphic rotations of the attention pipeline come from.  The loop below
    performs exactly those operations on the backend (one ``mul_plain`` and
    one ``rotate`` per matrix element, plus the accumulating additions) so the
    tracker counts them faithfully.  Requires slot-wise plaintext products, so
    it runs on the simulated backend only.
    """
    if packed.axis != "columns":
        raise ParameterError("repack_columns_to_rows expects a column-packed matrix")
    rows, cols = packed.shape
    # The row selectors are static, so on an evaluation-resident backend each
    # is pre-transformed once per row and reused across every column -- one
    # forward transform per row instead of one per matrix element.
    encode = (
        backend.encode_plain_eval
        if getattr(backend, "eval_resident", False)
        and getattr(backend, "supports_slotwise_plain", False)
        else None
    )
    row_handles = []
    for i in range(rows):
        acc = None
        selector = np.zeros(backend.slot_count, dtype=np.int64)
        selector[i] = 1
        if encode is not None:
            selector = encode(selector)
        for j, column_handle in enumerate(packed.handles):
            masked = backend.mul_plain(column_handle, selector)
            # Move the element at slot i (row index) to slot j (column index).
            aligned = masked if i == j else backend.rotate(masked, i - j)
            acc = aligned if acc is None else backend.add(acc, aligned)
        row_handles.append(acc if acc is not None else backend.zero(cols))
    return PackedMatrix(handles=row_handles, shape=(rows, cols), axis="rows")


def tile_packed(backend: HEBackend, packed: PackedMatrix, copies: int) -> PackedMatrix:
    """Replicate every ciphertext's packed vector ``copies`` times in-slot.

    Used by the FHGS slot-sharing path to tile *server-computed* packings
    (e.g. the repacked ``Enc(RcR @ W)`` rows) across the block-diagonal
    request slots: each handle's occupied run of ``stride`` slots is copied
    to slot offsets ``r * stride`` with one zero-extension addition plus
    ``copies - 1`` rotations and additions -- all chargeable to the offline
    phase.  Client-held packings are tiled for free at encryption time
    instead (``np.tile`` before encrypting).
    """
    if copies < 2:
        return packed
    stride = packed.shape[0] if packed.axis == "columns" else packed.shape[1]
    tiled_handles = []
    for handle in packed.handles:
        padded = backend.add(backend.zero(copies * stride), handle)
        acc = padded
        for r in range(1, copies):
            acc = backend.add(acc, backend.rotate(padded, -(r * stride)))
        tiled_handles.append(acc)
    shape = (
        (packed.shape[0] * copies, packed.shape[1])
        if packed.axis == "columns"
        else (packed.shape[0], packed.shape[1] * copies)
    )
    return PackedMatrix(handles=tiled_handles, shape=shape, axis=packed.axis)


def encrypted_packed_matmul(
    backend: HEBackend,
    matrix: np.ndarray,
    weights: np.ndarray,
    layout: PackingLayout,
) -> np.ndarray:
    """Rotation-based encrypted ``X @ W`` following the paper's Figure 6.

    The input ``X`` (tokens by features) is packed with ``layout``, encrypted,
    and multiplied by the plaintext ``W`` (features by output dims) using the
    rotate / multiply-by-plaintext / accumulate loop of the paper's
    pseudo-code.  The number of ``he_rotate`` operations recorded on the
    backend's tracker realises the closed-form counts in
    :func:`repro.he.packing.rotation_count`.

    Returns the decrypted result matrix (tokens by output dims) so tests can
    check correctness against a plaintext product.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    n_tokens, n_features = matrix.shape
    if weights.shape[0] != n_features:
        raise ShapeError(f"cannot multiply {matrix.shape} by {weights.shape}")
    if layout is PackingLayout.BSGS_DIAGONAL:
        return bsgs_matmul(backend, matrix, weights)
    d_out = weights.shape[1]
    t = backend.plaintext_modulus

    packed: PackedInput = pack_matrix(matrix, backend.slot_count, layout)
    ciphertexts = [backend.encrypt(plain) for plain in packed.plaintexts]

    # Invert the slot map per ciphertext: slot -> (token, feature).
    per_ct_slots: list[dict[int, tuple[int, int]]] = [
        {} for _ in range(packed.num_ciphertexts)
    ]
    for (token, feature), (ct_index, slot) in packed.slot_map.items():
        per_ct_slots[ct_index][slot] = (token, feature)

    # Accumulators: one ciphertext per output column, token ``tok`` at slot ``tok``.
    accumulators: list[Any | None] = [None] * d_out

    for ct_index, ciphertext in enumerate(ciphertexts):
        slots = per_ct_slots[ct_index]
        if not slots:
            continue
        # Group occupied slots by the rotation offset that aligns each entry's
        # token to slot index == token.
        offsets: dict[int, list[tuple[int, int, int]]] = {}
        for slot, (token, feature) in slots.items():
            offset = slot - token
            offsets.setdefault(offset, []).append((slot, token, feature))
        for offset in sorted(offsets):
            rotated = ciphertext if offset == 0 else backend.rotate(ciphertext, offset)
            entries = offsets[offset]
            # One fancy-index pass builds every output column's mask for this
            # offset group: tokens are unique within a group (distinct slots
            # map to distinct tokens), so direct assignment is exact.
            tokens = np.fromiter((e[1] for e in entries), dtype=np.int64)
            features = np.fromiter((e[2] for e in entries), dtype=np.int64)
            group_weights = np.mod(weights[features, :], t)       # (entries, d_out)
            masks = np.zeros((d_out, backend.slot_count), dtype=np.int64)
            masks[:, tokens] = group_weights.T
            for g in np.flatnonzero(group_weights.any(axis=0)):
                term = backend.mul_plain(rotated, masks[g])
                if accumulators[g] is None:
                    accumulators[g] = term
                else:
                    accumulators[g] = backend.add(accumulators[g], term)

    result = np.zeros((n_tokens, d_out), dtype=np.int64)
    occupied = [g for g in range(d_out) if accumulators[g] is not None]
    decrypted = backend.decrypt_batch([accumulators[g] for g in occupied])
    for g, values in zip(occupied, decrypted, strict=True):
        result[:, g] = values[:n_tokens]
    return np.mod(result, t)


def bsgs_kernel_fits(
    backend: HEBackend, total_tokens: int, n_features: int, n_outputs: int
) -> bool:
    """Whether the BSGS diagonal kernel can serve this batch on ``backend``.

    Requires slot-wise plaintext products plus cyclic rotations (the
    functional backend) and enough slots for the padded block geometry.
    """
    if not getattr(backend, "supports_slotwise_plain", False):
        return False
    try:
        bsgs_geometry(total_tokens, n_features, n_outputs, backend.slot_count)
    except ParameterError:
        return False
    return True


def encrypted_batch_matmul(
    backend: HEBackend,
    matrices: list[np.ndarray],
    weights: np.ndarray,
    *,
    kernel: str = "columns",
    bsgs_plan: BSGSMatmulPlan | None = None,
    bsgs_costs: BSGSCosts | None = None,
) -> list[np.ndarray]:
    """Serve many ``X_i @ W`` requests from *shared* ciphertext slot space.

    The batch's token matrices are stacked along the token axis and packed
    tokens-first: each ciphertext holds one feature of **every** request's
    tokens, so the whole batch needs the same number of ciphertexts -- and the
    same number of homomorphic multiplications and additions -- as a single
    request would.  This is the cross-request generalisation of the paper's
    tokens-first layout (Fig. 6): the contiguous token run in each slot
    vector simply spans all requests in the batch.

    Two kernels realise the product:

    * ``"columns"`` (default) -- one ciphertext per input feature, only
      ciphertext-scalar products and additions; runs unmodified on the
      exact BFV backend.
    * ``"bsgs"`` -- the rotation-minimal diagonal kernel of
      :mod:`repro.he.bsgs`: the whole batch shares one set of hoisted
      baby-step rotations, so both ciphertext and HE-multiplication counts
      drop from ``O(d_in)`` per output column to ``O(d_in)`` total.
      Requires a backend with slot-wise plaintext products (the simulator);
      check :func:`bsgs_kernel_fits` first.

    ``bsgs_plan`` hands the BSGS kernel a cached
    :class:`~repro.he.bsgs.BSGSMatmulPlan` (pre-transformed NTT-form
    diagonals, built once per weight bank by the serving layer) and
    ``bsgs_costs`` a measured cost model for the baby/giant split.

    Returns one decrypted result matrix per request, ``(X_i @ W) mod t`` --
    bit-identical between the two kernels.
    """
    weights = np.asarray(weights, dtype=np.int64)
    arrays = [np.asarray(m, dtype=np.int64) for m in matrices]
    if not arrays:
        return []
    n_features = arrays[0].shape[1] if arrays[0].ndim == 2 else -1
    for m in arrays:
        if m.ndim != 2 or m.shape[1] != n_features:
            raise ShapeError(
                "batched matmul requires 2-D inputs with a common feature dim"
            )
    if weights.shape[0] != n_features:
        raise ShapeError(f"cannot multiply {arrays[0].shape} by {weights.shape}")
    if kernel == "bsgs":
        return bsgs_batch_matmul(
            backend, arrays, weights, plan=bsgs_plan, costs=bsgs_costs
        )
    if kernel != "columns":
        raise ParameterError(f"unknown matmul kernel {kernel!r}")
    stacked = np.vstack(arrays)
    total_tokens = stacked.shape[0]
    if total_tokens > backend.slot_count:
        raise ParameterError(
            f"batch of {total_tokens} total tokens exceeds the "
            f"{backend.slot_count} slots of one ciphertext; split the batch"
        )
    packed = encrypt_matrix_columns(backend, stacked)
    product = enc_times_plain(backend, packed, weights)
    result = decrypt_matrix(backend, product)
    splits: list[np.ndarray] = []
    offset = 0
    for m in arrays:
        splits.append(result[offset: offset + m.shape[0]])
        offset += m.shape[0]
    return splits
