"""Exception hierarchy for the Primer reproduction library.

Every subsystem raises subclasses of :class:`PrimerError` so that callers can
catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class PrimerError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(PrimerError):
    """Raised when a cryptographic or model parameter set is invalid."""


class EncodingError(PrimerError):
    """Raised when a value cannot be represented in the requested encoding."""


class NoiseBudgetExhausted(PrimerError):
    """Raised when an HE ciphertext no longer decrypts correctly.

    The exact BFV backend tracks an invariant-noise budget; once it reaches
    zero the plaintext is unrecoverable and continuing would silently produce
    garbage, so we fail loudly instead.
    """


class ProtocolError(PrimerError):
    """Raised when a two-party protocol is driven out of order."""


class CircuitError(PrimerError):
    """Raised when a Boolean circuit is malformed or evaluated incorrectly."""


class ShapeError(PrimerError):
    """Raised when tensor shapes passed to a layer or protocol disagree."""


class FaultError(PrimerError):
    """Base class of faults raised at the runtime's registered fault sites.

    ``site`` names the injection point that raised (see
    :mod:`repro.runtime.faults`); ``retryable`` drives the serving retry
    policy's default classification.
    """

    retryable = False

    def __init__(self, message: str = "", *, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class TransientFault(FaultError):
    """A fault expected to succeed on retry (the retryable kind)."""

    retryable = True


class RequestFailed(PrimerError):
    """A serving request failed; carries its id, attempts and fault site.

    Raised from :meth:`~repro.runtime.frontdoor.RequestHandle.result` instead
    of the raw executor exception, so callers always get the request context
    (the originating error is chained as ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        *,
        request_id: str = "",
        attempts: int = 1,
        site: str = "",
    ) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.attempts = attempts
        self.site = site


class OverloadedError(PrimerError):
    """The front door shed a request under admission control.

    ``retry_after_seconds`` is the client retry hint: resubmitting sooner
    will very likely be shed again.
    """

    def __init__(self, message: str, *, retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class EngineQuarantined(PrimerError):
    """An engine key's builds are circuit-broken after repeated failures.

    Carries the same ``retry_after_seconds`` hint as
    :class:`OverloadedError`: the breaker half-opens for a probe build once
    the cooldown elapses.
    """

    def __init__(self, message: str, *, retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class WireError(TransientFault):
    """A wire frame failed to encode, frame, or verify (bad magic/CRC/size).

    Retryable by construction: a torn read or corrupted frame says nothing
    about the request itself, only about this connection attempt, so the
    fleet router treats it like any other transient connection fault.
    """


class ReplicaLost(FaultError):
    """A replica died (or became unreachable) with a request's state unknown.

    Raised as the ``__cause__`` of the :class:`RequestFailed` that resolves
    requests which were *acknowledged* by a replica that then crashed before
    reporting.  Deliberately **not** retryable: the replica may have executed
    the request before dying, so an automatic re-execution elsewhere would
    break the fleet's at-most-once guarantee.  Callers that know their
    workload is idempotent can resubmit explicitly.
    """


class FleetUnavailable(PrimerError):
    """Every replica in the fleet is dead or quarantined (and no local fallback).

    The fleet-wide rung of the degradation ladder: carries the same
    ``retry_after_seconds`` hint as :class:`OverloadedError`, derived from
    the soonest replica circuit-breaker half-open probe.
    """

    def __init__(self, message: str, *, retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class ShutdownTimeout(PrimerError):
    """``close(timeout=...)`` expired with work still in flight.

    ``outstanding`` lists the request ids whose handles were failed (not
    abandoned) when the drain loop refused to stop in time.
    """

    def __init__(self, message: str, *, outstanding: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.outstanding = outstanding
