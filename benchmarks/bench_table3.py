"""Table III -- Primer across BERT-tiny/small/base/medium/large.

Regenerates the offline/online latency, throughput (tokens/s) and message
size columns for the five model sizes, and checks the monotone scaling the
paper reports (larger models are slower, throughput falls, messages grow).
"""

from __future__ import annotations

import pytest

from repro.costmodel import format_table
from repro.nn import PAPER_MODELS
from repro.protocols import PRIMER_FPC, count_operations

PAPER_TABLE3 = {
    # model: (offline s, online s, tokens/s, message GB)
    "bert-tiny": (318.5, 10.6, 2.83, 0.9),
    "bert-small": (345.2, 18.9, 1.59, 1.8),
    "bert-base": (399.4, 35.4, 0.85, 3.6),
    "bert-medium": (452.8, 45.1, 0.67, 3.9),
    "bert-large": (586.4, 91.6, 0.33, 7.9),
}


def _rows(latency_model):
    rows = {}
    for name, config in PAPER_MODELS.items():
        account = count_operations(config, PRIMER_FPC)
        rows[name] = {
            "offline": latency_model.offline_seconds(account),
            "online": latency_model.online_seconds(account),
            "throughput": latency_model.throughput_tokens_per_second(account),
            "message_gb": latency_model.message_gigabytes(account),
        }
    return rows


def test_table3_report(latency_model):
    rows = _rows(latency_model)
    table = []
    for name, paper in PAPER_TABLE3.items():
        row = rows[name]
        table.append([
            name,
            f"{row['offline']:.0f} ({paper[0]:.0f})",
            f"{row['online']:.1f} ({paper[1]:.1f})",
            f"{row['throughput']:.2f} ({paper[2]:.2f})",
            f"{row['message_gb']:.1f} ({paper[3]:.1f})",
        ])
    print("\nTable III -- Primer over BERT model sizes (measured (paper))\n")
    print(format_table(
        ["Model", "Offline(s)", "Online(s)", "Tokens/s", "Message GB"], table
    ))

    # Shape: latency grows and throughput falls monotonically with model size.
    order = ["bert-tiny", "bert-small", "bert-base", "bert-medium", "bert-large"]
    onlines = [rows[m]["online"] for m in order]
    assert onlines == sorted(onlines)
    throughputs = [rows[m]["throughput"] for m in order]
    assert throughputs == sorted(throughputs, reverse=True)
    messages = [rows[m]["message_gb"] for m in order]
    assert messages[0] < messages[-1]
    # Rough factor: BERT-large online is 3-15x BERT-tiny online (paper: ~8.6x).
    assert 3 < onlines[-1] / onlines[0] < 15


@pytest.mark.benchmark(group="table3")
def test_bench_table3_accounting(benchmark, latency_model):
    result = benchmark(lambda: _rows(latency_model))
    assert len(result) == 5
