"""Quickstart: private sentiment classification of one sentence.

Runs the full Primer (FPC variant) two-party protocol end to end on a
scaled-down BERT: the client tokenises a sentence, the parties run the
offline pre-processing, then the online phase produces the encrypted
prediction that only the client can decrypt.  The result is checked against
the plaintext model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.nn import BERT_BASE, TransformerEncoder, WordPieceTokenizer, scaled_config
from repro.protocols import PRIMER_FPC, PrivateTransformerInference


def main() -> None:
    # A dimension-reduced BERT so the exact protocol run finishes in seconds.
    config = scaled_config(
        BERT_BASE, embed_dim=32, num_heads=4, seq_len=16, vocab_size=400,
        num_blocks=2, num_labels=2,
    )
    model = TransformerEncoder.initialise(config, seed=42)
    tokenizer = WordPieceTokenizer(vocab_size=config.vocab_size, max_length=config.seq_len)

    sentence = "the movie was great and the review is good"
    token_ids = np.array(tokenizer.encode(sentence))
    print(f"Client sentence : {sentence!r}")
    print(f"Token ids       : {token_ids.tolist()}")

    # Plaintext reference (what a non-private deployment would return).
    plain_logits = model.logits(token_ids)
    print(f"Plaintext logits: {np.round(plain_logits, 3)}")

    # Private inference under Primer-FPC (tokens-first packing + CHGS).
    engine = PrivateTransformerInference(model, PRIMER_FPC, seed=7)
    print(f"\nVariant         : {PRIMER_FPC.describe()}")
    print("Running offline pre-processing ...")
    engine.offline()
    print("Running online private inference ...")
    result = engine.run(token_ids)

    print(f"Private logits  : {np.round(result.logits, 3)}")
    print(f"Prediction      : class {result.prediction} "
          f"(plaintext: class {int(np.argmax(plain_logits))})")
    summary = result.summary()
    print(f"Online rounds   : {summary['online_rounds']}")
    print(f"Online traffic  : {summary['online_megabytes']:.1f} MB")
    print(f"Offline traffic : {summary['offline_megabytes']:.1f} MB")
    print(f"HE operations   : {summary['he_operations']:,}")


if __name__ == "__main__":
    main()
