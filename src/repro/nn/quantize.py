"""Fixed-point (and approximation-aware) model execution.

The accuracy columns of the paper's tables come down to two effects:

1. running the Transformer in 15-bit fixed point (all private protocols pay
   this; the paper reports it costs essentially nothing), and
2. replacing SoftMax/GELU/tanh by polynomials (only the FHE-only baseline
   THE-X pays this; the paper reports a ~7-8 point drop).

:class:`QuantizedExecutor` runs a plaintext :class:`TransformerEncoder` under
either regime so the accuracy experiments can measure both effects on the
same weights and the same synthetic tasks.  Quantisation is simulated by a
round-trip through the fixed-point encoding after every operation that the
cryptographic pipeline would truncate (linear layers, attention products,
activation outputs), which is exactly where Primer's protocols truncate to 15
bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fixedpoint.encoding import DEFAULT_FORMAT, FixedPointFormat, decode, encode
from .activations import gelu, gelu_poly, softmax, softmax_poly, tanh_poly
from .transformer import TransformerEncoder

__all__ = ["ExecutionMode", "QuantizedExecutor"]


@dataclass(frozen=True)
class ExecutionMode:
    """How the model is executed.

    Attributes
    ----------
    quantize:
        Round every intermediate to the fixed-point grid (all private
        protocols).
    polynomial_activations:
        Replace SoftMax/GELU/tanh with polynomial substitutes (THE-X-style
        FHE-only execution).
    """

    quantize: bool = True
    polynomial_activations: bool = False
    fmt: FixedPointFormat = DEFAULT_FORMAT

    @classmethod
    def plaintext(cls) -> ExecutionMode:
        """Full-precision floating point (the fine-tuned reference model)."""
        return cls(quantize=False, polynomial_activations=False)

    @classmethod
    def primer(cls, fmt: FixedPointFormat = DEFAULT_FORMAT) -> ExecutionMode:
        """15-bit fixed point with exact non-linearities (Primer's regime)."""
        return cls(quantize=True, polynomial_activations=False, fmt=fmt)

    @classmethod
    def fhe_only(cls, fmt: FixedPointFormat = DEFAULT_FORMAT) -> ExecutionMode:
        """Fixed point plus polynomial activations (THE-X's regime)."""
        return cls(quantize=True, polynomial_activations=True, fmt=fmt)


class QuantizedExecutor:
    """Executes a plaintext model under a given :class:`ExecutionMode`."""

    def __init__(self, model: TransformerEncoder, mode: ExecutionMode):
        self.model = model
        self.mode = mode

    # -- helpers -------------------------------------------------------------
    def _q(self, x: np.ndarray) -> np.ndarray:
        """Round to the fixed-point grid when quantisation is enabled."""
        if not self.mode.quantize:
            return x
        return decode(encode(x, self.mode.fmt), self.mode.fmt)

    def _softmax(self, x: np.ndarray) -> np.ndarray:
        fn = softmax_poly if self.mode.polynomial_activations else softmax
        return self._q(fn(x, axis=-1))

    def _gelu(self, x: np.ndarray) -> np.ndarray:
        fn = gelu_poly if self.mode.polynomial_activations else gelu
        return self._q(fn(x))

    def _tanh(self, x: np.ndarray) -> np.ndarray:
        fn = tanh_poly if self.mode.polynomial_activations else np.tanh
        return self._q(fn(x))

    def _layer_norm(self, norm, x: np.ndarray) -> np.ndarray:
        return self._q(norm(x))

    # -- forward pass ----------------------------------------------------------
    def logits(self, token_ids: np.ndarray) -> np.ndarray:
        """Classification logits under the configured execution mode."""
        model = self.model
        hidden = self._q(model.embedding(np.asarray(token_ids, dtype=np.int64)))

        for block in model.blocks:
            attn = block.attention
            queries = self._q(attn.weights.query(hidden))
            keys = self._q(attn.weights.key(hidden))
            values = self._q(attn.weights.value(hidden))

            q_heads = attn._split_heads(queries)
            k_heads = attn._split_heads(keys)
            v_heads = attn._split_heads(values)

            scale = 1.0 / np.sqrt(q_heads.shape[-1])
            scores = self._q(np.einsum("hqd,hkd->hqk", q_heads, k_heads) * scale)
            attention = self._softmax(scores)
            context = self._q(np.einsum("hqk,hkd->hqd", attention, v_heads))
            merged = attn._merge_heads(context)
            attn_out = self._q(attn.weights.output(merged))

            hidden = self._layer_norm(block.attention_norm, hidden + attn_out)
            ffn_hidden = self._gelu(block.feed_forward.intermediate(hidden))
            ffn_out = self._q(block.feed_forward.output(ffn_hidden))
            hidden = self._layer_norm(block.output_norm, hidden + ffn_out)

        pooled = self._tanh(self._q(self.model.head.pooler(hidden[0])))
        return self._q(self.model.head.classifier(pooled))

    def predict(self, token_ids: np.ndarray) -> int:
        """Predicted class label under the configured execution mode."""
        return int(np.argmax(self.logits(token_ids)))
