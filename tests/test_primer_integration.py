"""Integration tests: full private inference of a tiny Transformer under every
Primer variant, plus the accounting/cost-model layers that generate the
paper-scale tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GCFormerBaseline, THEXBaseline
from repro.errors import ProtocolError
from repro.nn import BERT_BASE, BERT_TINY, PAPER_MODELS
from repro.protocols import (
    ALL_VARIANTS,
    PRIMER_BASE,
    PRIMER_F,
    PRIMER_FP,
    PRIMER_FPC,
    PrivateTransformerInference,
    count_operations,
)
from repro.runtime import calibrated_latency_model, scheme_latencies


@pytest.fixture(scope="module")
def variant_results(tiny_model, tiny_token_ids):
    """Run the full private inference once per variant (shared across tests)."""
    results = {}
    for variant in ALL_VARIANTS:
        engine = PrivateTransformerInference(tiny_model, variant, seed=11)
        engine.offline()
        results[variant.name] = engine.run(tiny_token_ids)
    return results


class TestPrivateInference:
    def test_predictions_match_plaintext(self, variant_results, tiny_model, tiny_token_ids):
        expected = int(np.argmax(tiny_model.logits(tiny_token_ids)))
        for name, result in variant_results.items():
            assert result.prediction == expected, name

    def test_logits_close_to_plaintext(self, variant_results, tiny_model, tiny_token_ids):
        plain = tiny_model.logits(tiny_token_ids)
        for name, result in variant_results.items():
            assert np.max(np.abs(result.logits - plain)) < 1.0, name

    def test_variants_agree_with_each_other(self, variant_results):
        reference = variant_results["primer-f"].logits
        for name, result in variant_results.items():
            assert np.max(np.abs(result.logits - reference)) < 0.5, name

    def test_variant_equivalence_regression(self, variant_results):
        """All four variants decode the same output on the seeded input.

        The F and P optimisations only move work offline / repack slots, so
        primer-base, primer-f and primer-fp must produce bit-identical
        logits.  CHGS merges adjacent products (its intermediates carry 3f
        fractional bits before truncation), so primer-fpc is held to the
        fixed-point resolution instead -- and the decoded prediction must
        agree across all four.
        """
        predictions = {name: r.prediction for name, r in variant_results.items()}
        assert len(set(predictions.values())) == 1, predictions
        reference = variant_results["primer-base"].logits
        for name in ("primer-f", "primer-fp"):
            assert np.array_equal(variant_results[name].logits, reference), name
        assert np.max(np.abs(variant_results["primer-fpc"].logits - reference)) < 0.05

    def test_primer_base_has_no_offline_traffic(self, variant_results):
        assert variant_results["primer-base"].offline_bytes == 0
        assert variant_results["primer-base"].offline_rounds == 0

    def test_primer_f_moves_work_offline(self, variant_results):
        base = variant_results["primer-base"]
        primer_f = variant_results["primer-f"]
        assert primer_f.offline_bytes > 0
        assert primer_f.online_bytes < base.online_bytes / 5

    def test_chgs_reduces_online_rounds(self, variant_results):
        assert (
            variant_results["primer-fpc"].online_rounds
            < variant_results["primer-f"].online_rounds
        )

    def test_run_before_offline_raises(self, tiny_model, tiny_token_ids):
        engine = PrivateTransformerInference(tiny_model, PRIMER_F, seed=1)
        with pytest.raises(ProtocolError):
            engine.run(tiny_token_ids)

    def test_wrong_sequence_length_raises(self, tiny_model):
        engine = PrivateTransformerInference(tiny_model, PRIMER_F, seed=1)
        engine.offline()
        with pytest.raises(ProtocolError):
            engine.run(np.arange(3))

    def test_summary_fields(self, variant_results):
        summary = variant_results["primer-fpc"].summary()
        assert summary["variant"] == "primer-fpc"
        assert summary["he_operations"] > 0


class TestAccounting:
    def test_primer_base_is_online_heavy(self):
        account = count_operations(BERT_BASE, PRIMER_BASE)
        totals = account.totals()
        assert totals.online.he_mults > 0
        assert totals.offline.he_mults == 0

    def test_primer_f_moves_he_offline(self):
        account = count_operations(BERT_BASE, PRIMER_F)
        totals = account.totals()
        assert totals.offline.he_mults > 0
        assert totals.online.he_mults < totals.offline.he_mults / 10

    def test_packing_reduces_rotations(self):
        f = count_operations(BERT_BASE, PRIMER_F).totals().offline.he_rotations
        fp = count_operations(BERT_BASE, PRIMER_FP).totals().offline.he_rotations
        assert fp < f / 5

    def test_chgs_removes_embed_and_qkv(self):
        account = count_operations(BERT_BASE, PRIMER_FPC)
        assert account.steps["embedding"].offline.he_mults == 0
        assert account.steps["qkv"].offline.he_mults == 0
        assert account.steps["qk_product"].offline.he_mults > 0

    def test_larger_models_cost_more(self):
        tiny = count_operations(BERT_TINY, PRIMER_FPC).totals()
        base = count_operations(BERT_BASE, PRIMER_FPC).totals()
        assert base.offline.he_mults > tiny.offline.he_mults
        assert base.online.gc_and_gates > tiny.online.gc_and_gates


class TestCostModel:
    @pytest.fixture(scope="class")
    def latency_model(self):
        return calibrated_latency_model(BERT_BASE)

    def test_calibration_hits_anchor_cells(self, latency_model):
        account = count_operations(BERT_BASE, PRIMER_BASE)
        breakdown = latency_model.breakdown(account)
        # The embedding anchor is reproduced tightly; the "others" step keeps
        # the right order of magnitude (its rotation/multiplication mix in
        # this reproduction differs from the paper's implementation, see
        # EXPERIMENTS.md).
        assert breakdown["embedding"].online.total_seconds == pytest.approx(3094.4, rel=0.05)
        others = breakdown["others"].online.compute_seconds
        assert 3224.5 * 0.5 < others < 3224.5 * 3.0

    def test_table1_ordering(self, latency_model):
        rows = {row.scheme: row for row in scheme_latencies(BERT_BASE, model=latency_model)}
        # Who wins: Primer-FPC has the lowest total; GCFormer the highest.
        assert rows["primer-fpc"].total_seconds < rows["THE-X"].total_seconds
        assert rows["primer-fpc"].total_seconds < rows["primer-f"].total_seconds
        assert rows["GCFormer"].total_seconds > rows["THE-X"].total_seconds
        # Online latency of every offline-preprocessed Primer variant is tiny.
        assert rows["primer-f"].online_seconds < 100
        assert rows["primer-fpc"].online_seconds < 100

    def test_online_latency_reduction_over_base(self, latency_model):
        rows = {row.scheme: row for row in scheme_latencies(BERT_BASE, model=latency_model)}
        reduction = 1 - rows["primer-fpc"].online_seconds / rows["primer-base"].online_seconds
        assert reduction > 0.9  # the paper reports 90.6% - 97.5%

    def test_table3_scaling_across_models(self, latency_model):
        online = []
        for name in ("bert-tiny", "bert-small", "bert-base", "bert-medium", "bert-large"):
            account = count_operations(PAPER_MODELS[name], PRIMER_FPC)
            online.append(latency_model.online_seconds(account))
        assert online == sorted(online)  # deeper/wider models are slower

    def test_throughput_metric(self, latency_model):
        account = count_operations(BERT_TINY, PRIMER_FPC)
        assert latency_model.throughput_tokens_per_second(account) > 0


class TestBaselines:
    def test_thex_has_no_offline(self):
        assert THEXBaseline(BERT_BASE).offline_seconds() == 0.0

    def test_thex_online_dominates_primer_online(self):
        latency = calibrated_latency_model(BERT_BASE)
        thex = THEXBaseline(BERT_BASE, constants=latency.constants)
        fpc_online = latency.online_seconds(count_operations(BERT_BASE, PRIMER_FPC))
        assert thex.online_seconds() > 50 * fpc_online

    def test_gcformer_gate_count_scales_with_model(self):
        assert (
            GCFormerBaseline(BERT_BASE).and_gate_count()
            > GCFormerBaseline(BERT_TINY).and_gate_count()
        )

    def test_gcformer_is_accurate_but_slow(self):
        latency = calibrated_latency_model(BERT_BASE)
        gcformer = GCFormerBaseline(BERT_BASE, constants=latency.constants)
        thex = THEXBaseline(BERT_BASE, constants=latency.constants)
        assert gcformer.total_seconds() > thex.total_seconds()
