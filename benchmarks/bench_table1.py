"""Table I -- comparison with prior works on private BERT-base inference.

Regenerates the offline/online/total latency and accuracy columns for THE-X,
GCFormer, Primer-F and Primer-FPC (MNLI-m, BERT-base).  Paper values are
printed alongside the model's predictions so the shape (who wins, by what
factor) can be checked directly.
"""

from __future__ import annotations

import pytest

from repro.costmodel import format_table
from repro.nn import BERT_BASE
from repro.protocols import PRIMER_F, PRIMER_FPC
from repro.runtime import scheme_latencies

PAPER_TABLE1 = {
    "THE-X": (0.0, 4700.0, 4700.0, 77.3),
    "GCFormer": (7500.0, 9800.0, 17300.0, 85.1),
    "primer-f": (6500.0, 40.0, 6540.0, 84.6),
    "primer-fpc": (400.0, 40.0, 440.0, 84.6),
}

# Accuracy columns: exact non-linearities keep the fine-tuned accuracy,
# polynomial approximation costs ~7 points (measured by bench_accuracy.py).
MEASURED_ACCURACY = {"THE-X": "approx (drops)", "GCFormer": "exact",
                     "primer-f": "exact", "primer-fpc": "exact"}


def _rows(latency_model):
    rows = scheme_latencies(
        BERT_BASE, model=latency_model, variants=[PRIMER_F, PRIMER_FPC]
    )
    return {row.scheme: row for row in rows}


def test_table1_report(latency_model):
    """Print the regenerated Table I and check the headline orderings."""
    rows = _rows(latency_model)
    table = []
    for scheme, (p_off, p_on, p_tot, p_acc) in PAPER_TABLE1.items():
        row = rows[scheme]
        table.append([
            scheme,
            f"{row.offline_seconds:.0f} (paper {p_off:.0f})",
            f"{row.online_seconds:.0f} (paper {p_on:.0f})",
            f"{row.total_seconds:.0f} (paper {p_tot:.0f})",
            f"{MEASURED_ACCURACY[scheme]} (paper {p_acc}%)",
        ])
    print("\nTable I -- private BERT-base inference\n")
    print(format_table(["Scheme", "Offline(s)", "Online(s)", "Total(s)", "Accuracy"], table))

    # Shape assertions: Primer wins, GCFormer is the slowest, online latency
    # of the pre-processed variants is small.
    assert rows["primer-fpc"].total_seconds < rows["THE-X"].total_seconds
    assert rows["primer-fpc"].total_seconds < rows["primer-f"].total_seconds
    assert rows["GCFormer"].total_seconds > rows["THE-X"].total_seconds
    assert rows["primer-fpc"].online_seconds < 100


@pytest.mark.benchmark(group="table1")
def test_bench_table1_accounting(benchmark, latency_model):
    """Benchmark the operation-accounting + cost-model pipeline itself."""
    def run():
        return scheme_latencies(BERT_BASE, model=latency_model,
                                variants=[PRIMER_F, PRIMER_FPC])
    result = benchmark(run)
    assert len(result) == 4
