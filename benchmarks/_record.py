"""Machine-readable benchmark records.

Benchmarks historically printed their tables and exited; nothing tracked the
performance trajectory across PRs.  This helper gives every benchmark module
one call to persist its headline numbers:

    from _record import record
    record("serving", "pipelined_executor", {"speedup": 1.5, ...})

appends/overwrites one *section* of ``BENCH_<name>.json`` at the repository
root.  The file is committed so the trajectory lives in history, and CI
uploads it as a workflow artifact from the tier-2 benchmark job.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

__all__ = ["REPO_ROOT", "latency_percentiles", "record"]

REPO_ROOT = Path(__file__).resolve().parents[1]


def latency_percentiles(latencies_seconds: list[float]) -> dict[str, float]:
    """p50/p95/p99 of a latency sample, in milliseconds."""
    values = np.asarray(latencies_seconds, dtype=float) * 1e3
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p95_ms": float(np.percentile(values, 95)),
        "p99_ms": float(np.percentile(values, 99)),
    }


def record(bench: str, section: str, payload: dict) -> Path:
    """Merge ``payload`` under ``section`` of ``BENCH_<bench>.json``."""
    path = REPO_ROOT / f"BENCH_{bench}.json"
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"benchmark": bench, "sections": {}}
    data.setdefault("sections", {})[section] = payload
    data["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    data["python"] = platform.python_version()
    try:
        from repro.he import kernels

        data["kernel_tier"] = kernels.active_tier_name()
        data["kernel_calibration"] = {
            tier: {metric: float(seconds) for metric, seconds in costs.items()}
            for tier, costs in sorted(kernels.calibration_snapshot().items())
        }
    except ImportError:
        pass
    try:
        from repro.analysis import tree_stats

        data["analysis"] = tree_stats()
    except ImportError:
        pass
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
