"""Batch-serving runtime for private Transformer inference.

The paper evaluates the hybrid HE+GC protocol one sequence at a time; this
module turns the reproduction into a *serving system*: a
:class:`ServingRuntime` accepts many independent requests, groups compatible
ones through the :class:`~repro.runtime.scheduler.BatchScheduler`, and
executes each batch while amortising the expensive cryptographic state:

* **full inference requests** run through a cached
  :class:`~repro.protocols.primer.PrivateTransformerInference` engine per
  ``(model, variant)`` — key generation, the HGS/FHGS offline
  pre-processing, and the NTT twiddle tables are paid once per engine
  instead of once per request;
* **linear requests** (private ``X @ W`` evaluations, the HGS building
  block) are packed into *shared* ciphertext slot space via the
  tokens-first layout (:func:`repro.he.matmul.encrypted_batch_matmul`): one
  ciphertext carries one feature of every request in the batch, so the whole
  batch costs as many homomorphic operations as a single request.

Every request gets its own accounting: wall-clock latency, queue wait, and
the exact communication/operation breakdown attributed to it on the shared
channel and tracker (see ``Channel.set_request`` /
``OperationTracker.attribute``).  Batched execution is *functionally
identical* to running each request alone — the test-suite asserts
bit-identical logits — because the protocol's outputs are deterministic
functions of the inputs regardless of the sharing randomness.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ProtocolError
from ..he.backend import HEBackend
from ..he.matmul import encrypted_batch_matmul
from ..he.simulated import SimulatedHEBackend
from ..nn.transformer import TransformerEncoder
from ..protocols.channel import Channel, Phase
from ..protocols.formats import protocol_he_parameters
from ..protocols.primer import (
    ALL_VARIANTS,
    PRIMER_FPC,
    PrimerVariant,
    PrivateTransformerInference,
)
from .scheduler import Batch, BatchKey, BatchScheduler, InferenceRequest

__all__ = [
    "RequestReport",
    "ServingStats",
    "ServingRuntime",
    "run_sequential_baseline",
    "summarize",
]

#: step label used for the linear serving path's wire accounting
STEP_LINEAR = "linear_serving"


@dataclass
class RequestReport:
    """Per-request outcome with latency and communication breakdowns."""

    request_id: str
    kind: str
    model: str
    variant: str
    batch_id: int
    batch_size: int
    result: np.ndarray
    prediction: int | None
    queue_seconds: float
    latency_seconds: float
    online_bytes: int
    online_rounds: int
    offline_bytes: int
    he_operations: dict[str, int]
    #: linear batches share ciphertexts, so ``he_operations`` / latency are
    #: joint figures for the whole slot-sharing group, not per-request sums.
    shared_slot_batch: bool = False

    def summary(self) -> dict[str, float | int | str]:
        return {
            "request": self.request_id,
            "model": self.model,
            "variant": self.variant,
            "batch": self.batch_id,
            "batch_size": self.batch_size,
            "latency_ms": self.latency_seconds * 1e3,
            "queue_ms": self.queue_seconds * 1e3,
            "online_kilobytes": self.online_bytes / 1e3,
            "he_operations": sum(self.he_operations.values()),
        }


@dataclass(frozen=True)
class ServingStats:
    """Aggregate view over a set of request reports."""

    num_requests: int
    num_batches: int
    total_seconds: float
    requests_per_second: float
    mean_latency_seconds: float
    mean_queue_seconds: float


def summarize(reports: list[RequestReport], wall_seconds: float | None = None) -> ServingStats:
    """Aggregate throughput/latency statistics for a serving run."""
    if not reports:
        return ServingStats(0, 0, 0.0, 0.0, 0.0, 0.0)
    total = (
        wall_seconds
        if wall_seconds is not None
        else sum(r.latency_seconds for r in reports if not r.shared_slot_batch)
        + sum(
            r.latency_seconds / max(1, r.batch_size)
            for r in reports
            if r.shared_slot_batch
        )
    )
    return ServingStats(
        num_requests=len(reports),
        num_batches=len({r.batch_id for r in reports}),
        total_seconds=total,
        requests_per_second=len(reports) / total if total > 0 else float("inf"),
        mean_latency_seconds=float(np.mean([r.latency_seconds for r in reports])),
        mean_queue_seconds=float(np.mean([r.queue_seconds for r in reports])),
    )


@dataclass
class _EngineEntry:
    engine: PrivateTransformerInference
    build_seconds: float


class ServingRuntime:
    """Queue → batcher → protocol runner → per-request reports.

    Parameters
    ----------
    models:
        Named models served for full-inference requests.
    max_batch_size:
        Upper bound on requests per batch (see :class:`BatchScheduler`).
    backend_factory:
        Optional zero-argument callable returning a fresh
        :class:`~repro.he.backend.HEBackend` (with its own tracker) for each
        engine and for the linear path; defaults to the simulated backend at
        protocol-scale parameters.
    seed:
        Seed handed to every engine (results are seed-independent; the seed
        only fixes the sharing randomness).
    """

    def __init__(
        self,
        models: dict[str, TransformerEncoder] | None = None,
        *,
        max_batch_size: int = 8,
        backend_factory: Callable[[], HEBackend] | None = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = BatchScheduler(max_batch_size=max_batch_size)
        self._models: dict[str, TransformerEncoder] = dict(models or {})
        self._weight_banks: dict[str, np.ndarray] = {}
        self._backend_factory = backend_factory
        self._seed = seed
        self._engines: dict[BatchKey, _EngineEntry] = {}
        self._variants: dict[str, PrimerVariant] = {v.name: v for v in ALL_VARIANTS}
        self._linear_backend: HEBackend | None = None
        self._linear_channel = Channel()
        self._request_ids = itertools.count()
        self._completed: dict[str, RequestReport] = {}

    # -- registration --------------------------------------------------------
    def register_model(self, name: str, model: TransformerEncoder) -> None:
        """Register (or replace) a model served under ``name``."""
        self._models[name] = model
        # Engines built for an older model under this name are stale.
        for key in [k for k in self._engines if k.model == name]:
            del self._engines[key]

    def register_weights(self, name: str, weights: np.ndarray) -> None:
        """Register a plaintext weight matrix for the linear serving path."""
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2:
            raise ProtocolError("linear serving weights must be a 2-D matrix")
        self._weight_banks[name] = weights

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        model_name: str,
        token_ids: np.ndarray,
        *,
        variant: PrimerVariant = PRIMER_FPC,
    ) -> str:
        """Queue one full private-inference request; returns its request id."""
        if model_name not in self._models:
            raise ProtocolError(f"unknown model {model_name!r}")
        self._variants.setdefault(variant.name, variant)
        request = InferenceRequest(
            request_id=f"req-{next(self._request_ids)}",
            key=BatchKey(kind="inference", model=model_name, variant=variant.name),
            payload=np.asarray(token_ids, dtype=np.int64),
        )
        self.scheduler.submit(request)
        return request.request_id

    def submit_linear(self, weights_name: str, matrix: np.ndarray) -> str:
        """Queue one private ``X @ W`` request against a registered bank."""
        if weights_name not in self._weight_banks:
            raise ProtocolError(f"unknown weight bank {weights_name!r}")
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != self._weight_banks[weights_name].shape[0]:
            raise ProtocolError(
                f"linear request shape {matrix.shape} incompatible with "
                f"bank {weights_name!r} of shape {self._weight_banks[weights_name].shape}"
            )
        slot_count = self._linear_backend_instance().slot_count
        if matrix.shape[0] > slot_count:
            raise ProtocolError(
                f"linear request of {matrix.shape[0]} rows exceeds the "
                f"{slot_count}-slot ciphertext capacity"
            )
        request = InferenceRequest(
            request_id=f"req-{next(self._request_ids)}",
            key=BatchKey(kind="linear", model=weights_name, variant=""),
            payload=matrix,
        )
        self.scheduler.submit(request)
        return request.request_id

    # -- execution -----------------------------------------------------------
    def run_pending(self) -> list[RequestReport]:
        """Drain the queue, executing batch after batch; returns all reports."""
        reports: list[RequestReport] = []
        while True:
            batch = self.scheduler.next_batch()
            if batch is None:
                break
            if batch.key.kind == "inference":
                batch_reports = self._run_inference_batch(batch)
            else:
                batch_reports = self._run_linear_batch(batch)
            # Register completions batch by batch so an error in a later
            # batch cannot lose the results of batches that already ran.
            for report in batch_reports:
                self._completed[report.request_id] = report
            reports.extend(batch_reports)
        return reports

    def result(self, request_id: str) -> RequestReport:
        """Report of a completed request."""
        if request_id not in self._completed:
            raise ProtocolError(f"request {request_id!r} has not completed")
        return self._completed[request_id]

    # -- engine cache --------------------------------------------------------
    def engine_for(self, model_name: str, variant: PrimerVariant = PRIMER_FPC) -> PrivateTransformerInference:
        """The cached engine serving ``(model, variant)``, building it if needed."""
        self._variants.setdefault(variant.name, variant)
        key = BatchKey(kind="inference", model=model_name, variant=variant.name)
        return self._engine(key).engine

    def _engine(self, key: BatchKey) -> _EngineEntry:
        entry = self._engines.get(key)
        if entry is None:
            if key.model not in self._models:
                raise ProtocolError(f"unknown model {key.model!r}")
            model = self._models[key.model]
            variant = self._variants[key.variant]
            backend = self._backend_factory() if self._backend_factory else None
            start = time.perf_counter()
            engine = PrivateTransformerInference(
                model, variant, backend=backend, seed=self._seed
            )
            engine.offline()
            entry = _EngineEntry(engine=engine, build_seconds=time.perf_counter() - start)
            self._engines[key] = entry
        return entry

    def _run_inference_batch(self, batch: Batch) -> list[RequestReport]:
        entry = self._engine(batch.key)
        engine = entry.engine
        reports: list[RequestReport] = []
        for request in batch.requests:
            start = time.perf_counter()
            engine.tracker.set_request(request.request_id)
            engine.channel.set_request(request.request_id)
            try:
                result = engine.run(request.payload)
            finally:
                engine.tracker.set_request(None)
                engine.channel.set_request(None)
            elapsed = time.perf_counter() - start
            reports.append(
                RequestReport(
                    request_id=request.request_id,
                    kind="inference",
                    model=batch.key.model,
                    variant=batch.key.variant,
                    batch_id=batch.batch_id,
                    batch_size=len(batch),
                    result=result.logits,
                    prediction=result.prediction,
                    queue_seconds=start - request.submitted_at,
                    latency_seconds=elapsed,
                    online_bytes=engine.channel.total_bytes(
                        Phase.ONLINE, request=request.request_id
                    ),
                    online_rounds=engine.channel.round_count(
                        Phase.ONLINE, request=request.request_id
                    ),
                    offline_bytes=engine.channel.total_bytes(
                        Phase.OFFLINE, request=request.request_id
                    ),
                    he_operations=engine.tracker.request_snapshot(request.request_id),
                )
            )
        return reports

    def _linear_backend_instance(self) -> HEBackend:
        if self._linear_backend is None:
            if self._backend_factory is not None:
                self._linear_backend = self._backend_factory()
            else:
                self._linear_backend = SimulatedHEBackend(protocol_he_parameters())
        return self._linear_backend

    def _run_linear_batch(self, batch: Batch) -> list[RequestReport]:
        """Run a slot-sharing linear batch, chunked to the ciphertext capacity."""
        backend = self._linear_backend_instance()
        weights = self._weight_banks[batch.key.model]
        reports: list[RequestReport] = []
        slot_count = backend.slot_count
        chunk: list[InferenceRequest] = []
        chunk_index = 0
        rows = 0
        for request in batch.requests + [None]:  # None flushes the last chunk
            if request is not None and rows + request.payload.shape[0] <= slot_count:
                chunk.append(request)
                rows += request.payload.shape[0]
                continue
            if chunk:
                reports.extend(
                    self._run_linear_chunk(batch, chunk_index, chunk, backend, weights)
                )
                chunk_index += 1
            if request is not None:
                # Per-request capacity was validated at submit time.
                chunk = [request]
                rows = request.payload.shape[0]
        return reports

    def _run_linear_chunk(
        self,
        batch: Batch,
        chunk_index: int,
        chunk: list[InferenceRequest],
        backend: HEBackend,
        weights: np.ndarray,
    ) -> list[RequestReport]:
        # One tag per slot-sharing chunk: a batch may split into several
        # chunks, and reusing one tag would double-count earlier chunks'
        # operations in later chunks' reports.
        tag = f"batch-{batch.batch_id}-chunk-{chunk_index}"
        start = time.perf_counter()
        with backend.tracker.attribute(tag):
            results = encrypted_batch_matmul(
                backend, [request.payload for request in chunk], weights
            )
        elapsed = time.perf_counter() - start
        ops = backend.tracker.request_snapshot(tag)
        # Wire accounting: the batch's input features travel as one shared
        # ciphertext per feature; the results come back one per output column.
        self._linear_channel.set_request(tag)
        self._linear_channel.send(
            "client", "server", weights.shape[0] * backend.ciphertext_bytes,
            description="Enc(stacked inputs)", step=STEP_LINEAR, phase=Phase.ONLINE,
        )
        self._linear_channel.send(
            "server", "client", weights.shape[1] * backend.ciphertext_bytes,
            description="Enc(stacked results)", step=STEP_LINEAR, phase=Phase.ONLINE,
        )
        self._linear_channel.set_request(None)
        online_bytes = self._linear_channel.total_bytes(Phase.ONLINE, request=tag)
        return [
            RequestReport(
                request_id=request.request_id,
                kind="linear",
                model=batch.key.model,
                variant="",
                batch_id=batch.batch_id,
                batch_size=len(chunk),
                result=result,
                prediction=None,
                queue_seconds=start - request.submitted_at,
                latency_seconds=elapsed,
                online_bytes=online_bytes,
                online_rounds=2,
                offline_bytes=0,
                he_operations=dict(ops),
                shared_slot_batch=True,
            )
            for request, result in zip(chunk, results)
        ]


def run_sequential_baseline(
    model: TransformerEncoder,
    token_ids_list: list[np.ndarray],
    *,
    variant: PrimerVariant = PRIMER_FPC,
    backend_factory: Callable[[], HEBackend] | None = None,
    seed: int = 0,
) -> tuple[list[np.ndarray], float]:
    """Serve requests the pre-runtime way: a fresh engine per request.

    This is exactly what the paper-style evaluation does (key generation and
    the full offline phase repeated for every sequence); it is the baseline
    the serving benchmark compares batched throughput against.  Returns the
    per-request logits and the total wall-clock seconds.
    """
    logits: list[np.ndarray] = []
    start = time.perf_counter()
    for token_ids in token_ids_list:
        backend = backend_factory() if backend_factory else None
        engine = PrivateTransformerInference(model, variant, backend=backend, seed=seed)
        engine.offline()
        logits.append(engine.run(np.asarray(token_ids, dtype=np.int64)).logits)
    return logits, time.perf_counter() - start
