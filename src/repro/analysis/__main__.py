"""``python -m repro.analysis`` -- run the project-invariant checker.

Exit status: 0 when the tree is clean (or clean modulo the committed
baseline and within its suppression budget), 1 on violations, 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core import Baseline, all_rules, analyze, default_roots


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static checker (rules RL001-RL007).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to check (default: src, benchmarks, examples)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--stats", action="store_true",
        help="print summary stats (findings per rule, suppression count) as JSON",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="committed baseline file; fail only on findings not in it "
        "or on suppressions over its budget",
    )
    parser.add_argument(
        "--write-baseline", type=Path, default=None,
        help="write the current findings out as the new baseline and exit 0",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="directory findings paths are reported relative to",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths = args.paths if args.paths else default_roots()
    result = analyze(paths, root=args.root)

    if args.write_baseline is not None:
        Baseline.from_result(result).dump(args.write_baseline)
        print(
            f"wrote baseline: {len(result.active)} findings, "
            f"suppression budget {result.suppression_count}"
        )
        return 0

    if args.stats:
        print(json.dumps(result.stats(), indent=2, sort_keys=True))
        return 0 if not result.active else 1

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in result.findings],
                    "stats": result.stats(),
                },
                indent=2,
                sort_keys=True,
            )
        )

    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(f"baseline file {args.baseline} is missing", file=sys.stderr)
            return 2
        failures = baseline.violations(result)
        if failures:
            print("repro-lint: new findings versus baseline:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        stale = baseline.stale(result)
        suffix = f"; {len(stale)} baseline entries now stale" if stale else ""
        if not args.json:
            print(
                f"repro-lint OK: {len(result.active)} known findings, "
                f"{result.suppression_count}/{baseline.suppression_budget} "
                f"suppressions used{suffix}"
            )
        return 0

    if result.active:
        if not args.json:
            for finding in result.active:
                print(finding.render())
            print(
                f"repro-lint: {len(result.active)} findings "
                f"({result.suppression_count} suppressed) in "
                f"{result.files_scanned} files"
            )
        return 1
    if not args.json:
        print(
            f"repro-lint OK: 0 findings ({result.suppression_count} suppressed) "
            f"in {result.files_scanned} files"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
