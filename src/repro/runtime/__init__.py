"""Evaluation harness and batch-serving runtime.

Ties models, protocols, cost model and data together for the paper-table
experiments (:mod:`repro.runtime.evaluation`) and serves many concurrent
inference requests over shared cryptographic state — batch formation under
pluggable policies (:mod:`repro.runtime.scheduler`), serial and pipelined
execution (:mod:`repro.runtime.executor`), the
:class:`~repro.runtime.serving.ServingRuntime` façade over both, and the
continuous-drain :class:`~repro.runtime.frontdoor.AsyncServingRuntime`
front door (submit while a drain is in flight; futures per request).
"""

from .evaluation import (
    AccuracyReport,
    SchemeLatency,
    calibrated_latency_model,
    evaluate_accuracy,
    scheme_latencies,
)
from .executor import (
    BatchExecutor,
    EngineCache,
    EngineCacheStats,
    EngineShardMap,
    PipelinedExecutor,
    RequestReport,
)
from .frontdoor import AsyncServingRuntime, RequestHandle
from .scheduler import (
    Batch,
    BatchKey,
    BatchScheduler,
    DeadlinePolicy,
    FifoPolicy,
    InferenceRequest,
    SchedulingPolicy,
    SizeAwarePolicy,
)
from .serving import (
    ServingRuntime,
    ServingStats,
    run_sequential_baseline,
    summarize,
)

__all__ = [
    "AccuracyReport",
    "AsyncServingRuntime",
    "Batch",
    "BatchExecutor",
    "BatchKey",
    "BatchScheduler",
    "DeadlinePolicy",
    "EngineCache",
    "EngineCacheStats",
    "EngineShardMap",
    "FifoPolicy",
    "InferenceRequest",
    "PipelinedExecutor",
    "RequestHandle",
    "RequestReport",
    "SchedulingPolicy",
    "SchemeLatency",
    "ServingRuntime",
    "ServingStats",
    "SizeAwarePolicy",
    "calibrated_latency_model",
    "evaluate_accuracy",
    "run_sequential_baseline",
    "scheme_latencies",
    "summarize",
]
