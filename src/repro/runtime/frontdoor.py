"""Async serving front door: submit while a drain is in flight.

:class:`~repro.runtime.serving.ServingRuntime` is strictly
submit-then-drain: callers queue requests, then some caller runs
``run_pending()`` and everyone's results appear at once.  Production traffic
does not arrive in phases — requests trickle in *while* earlier batches are
executing.  :class:`AsyncServingRuntime` closes that gap:

* :meth:`AsyncServingRuntime.submit` returns immediately with a
  :class:`RequestHandle` (a future: ``result()`` blocks until the request's
  :class:`~repro.runtime.executor.RequestReport` is ready);
* a background **drain loop** forms batches continuously under the
  runtime's existing :class:`~repro.runtime.scheduler.SchedulingPolicy` —
  the scheduler's queue lock (shared with ``submit``) is what makes
  concurrent submission safe, and the scheduler's fairness invariant
  (single-key batches, per-key FIFO, no head starvation) holds unchanged;
* :meth:`close` flushes: it stops accepting submissions, drains everything
  still queued, and joins the loop — no request is abandoned.

Equivalence
-----------
The protocol's logits are deterministic functions of the inputs — they do
not depend on the sharing randomness, the batch a request lands in, or the
batch's size (``run_batch`` is bit-identical to per-request ``run``, and the
serial/pipelined drains are bit-identical to each other).  The front door
executes every batch through the same :class:`BatchExecutor` on one loop
thread, with per-key arrival order preserved by the scheduler, so **any**
interleaving of submits and drains yields reports whose logits are
bit-identical to a serial submit-all-then-``run_pending()`` pass over the
same requests — the equivalence the test-suite asserts.

Failure isolation: an executor error fails only the handles of the batch
that raised; the loop keeps serving later batches.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from ..errors import ProtocolError
from ..protocols.primer import PRIMER_FPC, PrimerVariant
from .executor import RequestReport
from .scheduler import Batch
from .serving import ServingRuntime

__all__ = ["RequestHandle", "AsyncServingRuntime"]


class RequestHandle:
    """Future-style handle of one asynchronously submitted request."""

    def __init__(self, request_id: str, future: "Future[RequestReport]") -> None:
        self.request_id = request_id
        self._future = future

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> RequestReport:
        """Block until the request's report is ready and return it."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The request's failure, or ``None`` once it completed cleanly."""
        return self._future.exception(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._future.done() else "pending"
        return f"RequestHandle({self.request_id!r}, {state})"


class AsyncServingRuntime:
    """Continuous-drain front door over a :class:`ServingRuntime`.

    Parameters
    ----------
    models:
        Forwarded to a fresh :class:`ServingRuntime` (with any other
        keyword arguments) unless ``runtime`` is given.
    runtime:
        An existing runtime to front.  Mutually exclusive with ``models``
        and the runtime keyword arguments.
    linger_seconds:
        How long the drain loop may hold off executing a formable batch to
        let it fill up to ``max_batch_size`` (0, the default, executes
        eagerly — lowest latency, smallest batches).  Lingering ends early
        the moment some key's queue depth reaches the batch size, or on
        :meth:`close`.

    The front door is a context manager; leaving the ``with`` block runs
    :meth:`close`, which flushes all queued work.
    """

    _POLL_SECONDS = 0.05  # also catches direct runtime.submit() calls

    def __init__(
        self,
        models=None,
        *,
        runtime: ServingRuntime | None = None,
        linger_seconds: float = 0.0,
        **runtime_kwargs,
    ) -> None:
        if runtime is not None and (models is not None or runtime_kwargs):
            raise ProtocolError(
                "pass either an existing runtime or construction arguments, not both"
            )
        if linger_seconds < 0:
            raise ProtocolError("linger_seconds must be non-negative")
        self.runtime = runtime if runtime is not None else ServingRuntime(
            models, **runtime_kwargs
        )
        self.linger_seconds = linger_seconds
        self._futures: dict[str, Future] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closing = False
        self._batches_executed = 0
        self._drain_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._drain_loop, name="frontdoor-drain", daemon=True
        )
        self._thread.start()

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        model_name: str,
        token_ids: np.ndarray,
        *,
        variant: PrimerVariant = PRIMER_FPC,
        deadline_seconds: float | None = None,
    ) -> RequestHandle:
        """Queue one full private-inference request; returns its handle.

        Safe to call from any thread at any time before :meth:`close` —
        including while the drain loop is executing earlier batches.
        """
        with self._wakeup:
            self._check_open()
            request_id = self.runtime.submit(
                model_name, token_ids, variant=variant,
                deadline_seconds=deadline_seconds,
            )
            handle = self._register(request_id)
            self._wakeup.notify_all()
        return handle

    def submit_linear(
        self,
        weights_name: str,
        matrix: np.ndarray,
        *,
        deadline_seconds: float | None = None,
    ) -> RequestHandle:
        """Queue one private ``X @ W`` request; returns its handle."""
        with self._wakeup:
            self._check_open()
            request_id = self.runtime.submit_linear(
                weights_name, matrix, deadline_seconds=deadline_seconds
            )
            handle = self._register(request_id)
            self._wakeup.notify_all()
        return handle

    def _check_open(self) -> None:
        if self._closing:
            raise ProtocolError("the front door is closed to new submissions")
        if not self._thread.is_alive():
            # The drain loop died on an unexpected (non-executor) error;
            # accepting more work would register handles no one resolves.
            raise ProtocolError(
                "the front door drain loop is not running"
                + (f" (died on: {self._drain_error!r})" if self._drain_error else "")
            )

    def _register(self, request_id: str) -> RequestHandle:
        future: Future = Future()
        self._futures[request_id] = future
        return RequestHandle(request_id, future)

    # -- drain loop ----------------------------------------------------------
    def _drain_loop(self) -> None:
        try:
            while True:
                with self._wakeup:
                    while not self._closing and self.runtime.scheduler.pending() == 0:
                        self._wakeup.wait(timeout=self._POLL_SECONDS)
                    if self._closing and self.runtime.scheduler.pending() == 0:
                        return
                if self.linger_seconds > 0:
                    self._linger()
                batch = self.runtime.scheduler.next_batch()
                if batch is None:
                    continue
                self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - recorded, then re-raised
            self._drain_error = exc
            raise
        finally:
            self._abandon_outstanding()

    def _abandon_outstanding(self) -> None:
        """Fail every unresolved handle (the loop exited or died).

        Normal ``close()`` drains the queue first, so there is nothing to
        abandon; this is the backstop for a drain loop killed by an
        unexpected (non-executor) error — ``result()`` must raise, never
        block forever.
        """
        with self._lock:
            leftovers = [f for f in self._futures.values() if not f.done()]
            self._futures.clear()
        detail = f" (drain loop died on: {self._drain_error!r})" if self._drain_error else ""
        for future in leftovers:
            future.set_exception(
                ProtocolError(f"front door drain loop exited before completion{detail}")
            )

    def _linger(self) -> None:
        """Hold off batch formation briefly so a batch can fill."""
        deadline = time.perf_counter() + self.linger_seconds
        capacity = self.runtime.scheduler.max_batch_size
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            with self._wakeup:
                if self._closing:
                    return
                depths = self.runtime.scheduler.queue_depths()
                if not depths or max(depths.values()) >= capacity:
                    return
                self._wakeup.wait(timeout=min(remaining, self._POLL_SECONDS))

    def _execute(self, batch: Batch) -> None:
        try:
            reports = self.runtime.executor.execute(batch)
        except Exception as exc:  # noqa: BLE001 - forwarded to the handles
            self._fail_batch(batch, exc)
            return
        self.runtime._record_completions(reports)
        with self._lock:
            futures = [self._futures.pop(r.request_id, None) for r in reports]
            self._batches_executed += 1
        for report, future in zip(reports, futures):
            if future is not None:
                future.set_result(report)

    def _fail_batch(self, batch: Batch, exc: Exception) -> None:
        """An executor error fails this batch's handles; the loop lives on."""
        with self._lock:
            futures = [
                self._futures.pop(request.request_id, None)
                for request in batch.requests
            ]
            self._batches_executed += 1
        for future in futures:
            if future is not None:
                future.set_exception(exc)

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Stop accepting submissions, flush all queued work, join the loop.

        Every handle issued before ``close`` is resolved (with a report or
        the error of its batch) by the time this returns.  Idempotent.
        """
        with self._wakeup:
            self._closing = True
            self._wakeup.notify_all()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - timeout expiry
            raise ProtocolError("front door drain loop did not stop in time")
        # Backstop for handles registered in the race window while the
        # drain loop was dying: resolve them with the error instead of
        # letting result() block forever.
        self._abandon_outstanding()

    @property
    def closed(self) -> bool:
        return self._closing and not self._thread.is_alive()

    def __enter__(self) -> "AsyncServingRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observability -------------------------------------------------------
    def pending_count(self) -> int:
        """Requests queued but not yet executing."""
        return self.runtime.scheduler.pending()

    def inflight_count(self) -> int:
        """Handles issued but not yet resolved (queued or executing)."""
        with self._lock:
            return len(self._futures)

    @property
    def batches_executed(self) -> int:
        with self._lock:
            return self._batches_executed

    def result(self, request_id: str) -> RequestReport:
        """Report of a completed request (delegates to the runtime)."""
        return self.runtime.result(request_id)
