"""Polynomial ring arithmetic for the exact BFV backend.

Elements of ``R_q = Z_q[X]/(X^N + 1)`` are represented as numpy ``int64``
coefficient vectors of length ``N`` with entries in ``[0, q)``.  The ring
object owns the NTT context and the sampling routines (uniform, ternary
secret, centered binomial / discrete Gaussian error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from .ntt import NTTContext

__all__ = ["PolynomialRing"]


@dataclass
class PolynomialRing:
    """Arithmetic in ``Z_q[X]/(X^N + 1)`` with NTT-accelerated multiplication."""

    degree: int
    modulus: int
    _ntt: NTTContext = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._ntt = NTTContext(ring_degree=self.degree, modulus=self.modulus)

    # -- constructors ------------------------------------------------------
    def zero(self) -> np.ndarray:
        return np.zeros(self.degree, dtype=np.int64)

    def constant(self, value: int) -> np.ndarray:
        poly = self.zero()
        poly[0] = value % self.modulus
        return poly

    def from_coefficients(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape != (self.degree,):
            raise ParameterError(
                f"expected {self.degree} coefficients, got shape {coeffs.shape}"
            )
        return np.mod(coeffs, self.modulus)

    # -- sampling ----------------------------------------------------------
    def sample_uniform(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform element of the ring (used for the public `a` component)."""
        return rng.integers(0, self.modulus, size=self.degree, dtype=np.int64)

    def sample_ternary(self, rng: np.random.Generator) -> np.ndarray:
        """Ternary secret key with coefficients in {-1, 0, 1}."""
        return np.mod(
            rng.integers(-1, 2, size=self.degree, dtype=np.int64), self.modulus
        )

    def sample_error(self, rng: np.random.Generator, stddev: float) -> np.ndarray:
        """Small error polynomial (rounded Gaussian)."""
        noise = np.rint(rng.normal(0.0, stddev, size=self.degree)).astype(np.int64)
        return np.mod(noise, self.modulus)

    # -- arithmetic --------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a + b, self.modulus)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a - b, self.modulus)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return np.mod(-a, self.modulus)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic polynomial product via NTT."""
        return self._ntt.multiply(a, b)

    def mul_scalar(self, a: np.ndarray, scalar: int) -> np.ndarray:
        scalar = scalar % self.modulus
        # scalar < 2**30 and coefficients < 2**30 keeps products in int64.
        return np.mod(a * scalar, self.modulus)

    # -- automorphisms -----------------------------------------------------
    def rotate_coefficients(self, a: np.ndarray, steps: int) -> np.ndarray:
        """Negacyclic coefficient rotation ``X^i -> X^(i+steps)``.

        A rotation by ``steps`` corresponds to multiplying by ``X**steps``;
        coefficients that wrap past ``X^N`` pick up a sign flip because
        ``X^N = -1``.  The SIMD packing layer in this reproduction places one
        value per coefficient, so this negacyclic shift plays the role of
        SEAL's slot rotation for our purposes (the sign flip only affects
        slots that wrapped, which the packing layer never reads).
        """
        steps = steps % (2 * self.degree)
        result = np.zeros_like(a)
        for offset in range(self.degree):
            target = offset + steps
            sign = 1
            while target >= self.degree:
                target -= self.degree
                sign = -sign
            result[target] = (sign * a[offset]) % self.modulus
        return result

    def centered(self, a: np.ndarray) -> np.ndarray:
        """Map residues to the symmetric interval ``(-q/2, q/2]``."""
        half = self.modulus // 2
        return np.where(a > half, a - self.modulus, a)

    def infinity_norm(self, a: np.ndarray) -> int:
        """Largest centered coefficient magnitude (used for noise tracking)."""
        return int(np.max(np.abs(self.centered(a))))
