"""THE-X-style baseline: FHE-only private inference with polynomial activations.

THE-X (Chen et al., ACL 2022) runs the whole Transformer under homomorphic
encryption: every linear layer is an online ciphertext computation and every
non-polynomial function (SoftMax, GELU, LayerNorm's rsqrt) is replaced by a
polynomial approximation so it can be evaluated homomorphically.  The paper
uses it as the FHE-only comparison point in Figure 2 and Table I: about
4.7 K seconds of online latency and a ~7-point accuracy drop on MNLI-m.

The accounting below reuses the HE matmul algebra of
:mod:`repro.protocols.accounting` with two changes that characterise the
FHE-only regime:

* there is no offline phase -- every ciphertext operation happens online;
* the approximated activations are evaluated as ciphertext-ciphertext
  polynomial arithmetic, which costs a (configurable) multiple of a
  ciphertext-plaintext product and consumes multiplicative depth.

Accuracy comes from running the plaintext model with polynomial activations
(:class:`repro.nn.quantize.ExecutionMode.fhe_only`), which is where THE-X's
accuracy loss genuinely comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..costmodel.constants import CostConstants, DEFAULT_COSTS
from ..he.packing import PackingLayout
from ..nn.config import TransformerConfig
from ..protocols.accounting import OperationCounts, _he_matmul_counts

__all__ = ["THEXBaseline"]


@dataclass
class THEXBaseline:
    """Latency/communication accounting for FHE-only Transformer inference."""

    config: TransformerConfig
    constants: CostConstants = DEFAULT_COSTS
    #: relative cost of a ciphertext-ciphertext multiplication vs ct-pt
    ct_ct_multiplier: float = 12.0
    slots: int = 4096
    ciphertext_bytes: int = 2 * 4096 * 8

    # -- operation counts --------------------------------------------------------
    def operation_counts(self) -> OperationCounts:
        """Total online operation counts for one inference."""
        cfg = self.config
        n, d, vocab = cfg.seq_len, cfg.embed_dim, cfg.vocab_size
        heads, head_dim, blocks, ffn = (
            cfg.num_heads, cfg.head_dim, cfg.num_blocks, cfg.hidden_ffn_dim,
        )
        total = OperationCounts()
        layout = PackingLayout.FEATURE_BASED

        def add_matmul(rows: int, inner: int, cols: int, ct_ct: bool = False) -> None:
            counts = _he_matmul_counts(
                rows, inner, cols, self.slots, layout, self.ciphertext_bytes
            )
            if ct_ct:
                counts.he_mults *= self.ct_ct_multiplier
            total.add(counts)

        # Embedding + per-block linear layers (ciphertext-plaintext products).
        add_matmul(n, vocab, d)
        for _ in range(blocks):
            for _ in range(3):
                add_matmul(n, d, d)
            # Attention products are ciphertext-ciphertext under FHE.
            for _ in range(heads):
                add_matmul(n, head_dim, n, ct_ct=True)
                add_matmul(n, n, head_dim, ct_ct=True)
            add_matmul(n, d, d)
            add_matmul(n, d, ffn)
            add_matmul(n, ffn, d)
        # Polynomial activations: quadratic SoftMax and GELU, evaluated as
        # ciphertext-ciphertext squarings over every activation element.
        activation_elements = blocks * (heads * n * n + n * ffn + 2 * n * d)
        total.he_mults += self.ct_ct_multiplier * activation_elements / self.slots * 3
        # Client -> server input and server -> client output ciphertexts.
        io_cts = math.ceil(n * vocab / self.slots) + math.ceil(n * d / self.slots)
        total.bytes_sent += io_cts * self.ciphertext_bytes
        total.rounds += 2
        return total

    # -- latency ------------------------------------------------------------------
    def online_seconds(self) -> float:
        counts = self.operation_counts()
        c = self.constants
        compute = (
            counts.he_mults * c.he_mult_seconds
            + counts.he_rotations * c.he_rotation_seconds
            + counts.he_encryptions * c.he_encryption_seconds
            + counts.he_additions * c.he_addition_seconds
        )
        network = counts.rounds * c.network_delay_seconds + (
            counts.bytes_sent / c.network_bandwidth_bytes_per_second
        )
        return compute + network

    def offline_seconds(self) -> float:
        """THE-X has no pre-processing phase."""
        return 0.0

    def total_seconds(self) -> float:
        return self.online_seconds() + self.offline_seconds()

    def message_gigabytes(self) -> float:
        return self.operation_counts().bytes_sent / 1e9
