"""RL006 -- fork safety for module-level execution state.

The PR 8 latent bug: a module-global ``ThreadPoolExecutor`` created in
the parent survives ``fork`` as a corpse -- the child inherits the object
but none of its threads, so work submitted to it hangs forever.  The
sanctioned idiom pid-keys the global::

    _pool: ThreadPoolExecutor | None = None
    _pool_pid: int | None = None

    def _worker_pool() -> ThreadPoolExecutor:
        global _pool, _pool_pid
        with _pool_lock:
            if _pool is None or _pool_pid != os.getpid():
                _pool = ThreadPoolExecutor(...)
                _pool_pid = os.getpid()
            return _pool

This rule flags:

* a ``ThreadPoolExecutor``/``ProcessPoolExecutor``/``Pool`` constructed
  at module import time (always wrong -- threads never survive fork);
* a function that assigns an executor into a module global (declares
  ``global X`` and assigns a pool to ``X``) without calling
  ``os.getpid()`` anywhere in its body;
* a ``threading.Lock``/``RLock``/``Condition`` *lazily* stashed into a
  module global the same way without pid-keying (a lock created mid-
  operation can be inherited held).  Import-time module locks are
  allowed: they exist before any worker thread can hold them across a
  fork point, which is the pattern the kernel/NTT caches rely on.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..core import Finding, ParsedModule, Rule, register

_POOL_CTORS = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}
_LOCK_CTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _ctor_name(call: ast.expr) -> str | None:
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _calls_getpid(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "getpid":
                return True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "getpid":
                return True
    return False


@register
class ForkSafetyRule(Rule):
    rule_id = "RL006"
    summary = "module-global pools/locks are pid-keyed across fork"
    fix_hint = (
        "lazy-create the global behind a pid check "
        "(`if _pool is None or _pool_pid != os.getpid():`)"
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return module.in_package("repro")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        # import-time executors: always a fork hazard.
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and _ctor_name(node.value) in _POOL_CTORS:
                yield self.finding(
                    module, node.lineno,
                    "thread/process pool constructed at module import time "
                    "(its threads will not survive fork)",
                )
        # lazily-populated module globals without pid-keying.
        for func in module.functions():
            global_names: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    global_names.update(node.names)
            if not global_names:
                continue
            pid_keyed = _calls_getpid(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                ctor = _ctor_name(node.value)
                if ctor not in _POOL_CTORS and ctor not in _LOCK_CTORS:
                    continue
                assigns_global = any(
                    isinstance(target, ast.Name) and target.id in global_names
                    for target in node.targets
                )
                if assigns_global and not pid_keyed:
                    kind = "pool" if ctor in _POOL_CTORS else "lock"
                    yield self.finding(
                        module, node.lineno,
                        f"module-global {kind} ({ctor}) created in "
                        f"'{func.name}' without pid-keying",
                    )
