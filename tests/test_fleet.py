"""Crash-tolerant replica fleet: wire protocol, router, lossless failover.

The acceptance bar from the issue: with replicas killed mid-drain under any
fault interleaving (``conn_send`` / ``conn_recv`` / ``replica_heartbeat`` /
``replica_crash``, seeded by the CI-matrixed ``REPRO_FAULT_SEED``), every
completed request's logits are bit-identical to a single-process serial
drain, the conservation ledger closes
(``submitted == completed + typed-failed``, zero hangs, zero drops), and
the per-replica execution logs prove no request ever executed twice.

Wire-protocol properties (every frame survives encode/decode, including
max-size payloads and typed-error cause chains) are pinned by hypothesis;
failover rungs (dedupe, fetch-not-re-execute, quarantine + half-open
probe, local fallback, typed fleet exhaustion) each get a deterministic
test of their own.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FleetUnavailable,
    OverloadedError,
    ProtocolError,
    ReplicaLost,
    RequestFailed,
    TransientFault,
    WireError,
)
from repro.he import kernels
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PRIMER_FPC
from repro.runtime import (
    AdmissionController,
    FaultPlan,
    FaultRule,
    FleetRouter,
    ReplicaServer,
    RetryPolicy,
    ServingRuntime,
    active_injector,
    fault_scope,
    read_execution_logs,
    spawn_replica_process,
)
from repro.runtime.faults import (
    SITE_CONN_RECV,
    SITE_CONN_SEND,
    SITE_ONLINE_EXECUTE,
    SITE_REPLICA_CRASH,
    SITE_REPLICA_HEARTBEAT,
    fault_seed_from_env,
)
from repro.runtime.net import (
    KIND_ACK,
    KIND_ERROR,
    KIND_FETCH,
    KIND_HEARTBEAT,
    KIND_HEARTBEAT_OK,
    KIND_HELLO,
    KIND_HELLO_OK,
    KIND_NAMES,
    KIND_RESULT,
    KIND_SUBMIT,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
    recv_frame,
    send_frame,
)

SEED = fault_seed_from_env()


@pytest.fixture(autouse=True)
def _clean_slate():
    """No injector leaks between tests; kernel fallback pins are cleared."""
    assert active_injector() is None
    yield
    assert active_injector() is None
    kernels.clear_kernel_state()


@pytest.fixture(scope="module")
def small_model() -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=3)


@pytest.fixture(scope="module")
def second_model() -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=7)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(29)
    return [rng.integers(0, 40, size=6) for _ in range(8)]


@pytest.fixture(scope="module")
def fault_free_logits(small_model, workload):
    """Logits of an injection-free single-process serial drain."""
    runtime = ServingRuntime({"tiny": small_model}, max_batch_size=4, seed=21)
    ids = [runtime.submit("tiny", tokens) for tokens in workload]
    runtime.run_pending()
    return {
        tokens.tobytes(): runtime.result(rid).result
        for tokens, rid in zip(workload, ids, strict=True)
    }


def _server(model, **kwargs) -> ReplicaServer:
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("seed", 21)
    return ReplicaServer({"tiny": model}, **kwargs).start()


def _router(replicas, **kwargs) -> FleetRouter:
    kwargs.setdefault("start_health_monitor", False)
    return FleetRouter(replicas, **kwargs)


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class _StreamSock:
    """Byte-stream stand-in for a socket (short reads on purpose)."""

    def __init__(self, data: bytes, chunk: int = 3) -> None:
        self._data = data
        self._chunk = chunk

    def recv(self, n: int) -> bytes:
        take = min(n, self._chunk, len(self._data))
        out, self._data = self._data[:take], self._data[take:]
        return out


_payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=64),
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=12,
)


class TestWireProtocol:
    @settings(max_examples=80, deadline=None)
    @given(kind=st.sampled_from(sorted(KIND_NAMES)), payload=_payloads)
    def test_every_frame_survives_encode_decode(self, kind, payload):
        out_kind, out_payload = decode_frame(encode_frame(kind, payload))
        assert out_kind == kind
        assert out_payload == payload

    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(sorted(KIND_NAMES)),
        payload=_payloads,
        chunk=st.integers(min_value=1, max_value=7),
    )
    def test_recv_frame_reassembles_short_reads(self, kind, payload, chunk):
        sock = _StreamSock(encode_frame(kind, payload), chunk=chunk)
        out_kind, out_payload = recv_frame(sock)
        assert out_kind == kind
        assert out_payload == payload

    def test_numpy_payloads_round_trip_bit_identical(self):
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, 1 << 40, size=64).astype(np.int64)
        _kind, payload = decode_frame(
            encode_frame(KIND_SUBMIT, {"payload": tokens})
        )
        assert payload["payload"].dtype == np.int64
        assert np.array_equal(payload["payload"], tokens)

    def test_max_size_payload_round_trips_and_over_limit_is_typed(self):
        blob = b"\x5a" * (4 * 1024 * 1024)
        _kind, payload = decode_frame(encode_frame(KIND_RESULT, blob))
        assert payload == blob
        with pytest.raises(WireError):
            encode_frame(KIND_RESULT, b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_corruption_is_caught_by_the_crc(self):
        frame = bytearray(encode_frame(KIND_ACK, {"rid": "fleet-0"}))
        frame[-1] ^= 0xFF
        with pytest.raises(WireError):
            decode_frame(bytes(frame))

    def test_bad_magic_and_version_are_typed(self):
        frame = bytearray(encode_frame(KIND_ACK, {}))
        bad_magic = b"XXXX" + bytes(frame[4:])
        with pytest.raises(WireError, match="magic"):
            decode_frame(bad_magic)
        frame[4] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_frame(bytes(frame))

    def test_clean_close_at_boundary_is_none_mid_frame_is_typed(self):
        assert recv_frame(_StreamSock(b"")) is None
        frame = encode_frame(KIND_ACK, {"rid": "fleet-1"})
        with pytest.raises(WireError, match="closed"):
            recv_frame(_StreamSock(frame[: len(frame) - 2]))

    def test_oversized_length_field_is_rejected_not_allocated(self):
        frame = bytearray(encode_frame(KIND_ACK, {}))
        frame[6:10] = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(WireError, match="ceiling"):
            recv_frame(_StreamSock(bytes(frame)))


_error_samples = st.sampled_from([
    lambda: OverloadedError("shed", retry_after_seconds=0.25),
    lambda: RequestFailed(
        "boom", request_id="fleet-9", attempts=3, site="online_execute"
    ),
    lambda: ReplicaLost("gone", site="replica_crash"),
    lambda: TransientFault("flaky", site="conn_send"),
    lambda: FleetUnavailable("empty", retry_after_seconds=1.5),
    lambda: ProtocolError("bad order"),
    lambda: ValueError("plain"),
]).map(lambda factory: factory())


class TestErrorCodec:
    @settings(max_examples=60, deadline=None)
    @given(error=_error_samples, cause=_error_samples, root=_error_samples)
    def test_typed_errors_survive_with_full_cause_chains(self, error, cause, root):
        cause.__cause__ = root
        error.__cause__ = cause
        decoded = decode_error(encode_error(error))
        assert type(decoded) is type(error)
        assert str(decoded) == str(error)
        for attr in ("site", "request_id", "attempts", "retry_after_seconds"):
            if hasattr(error, attr):
                assert getattr(decoded, attr) == getattr(error, attr)
        assert type(decoded.__cause__) is type(cause)
        assert type(decoded.__cause__.__cause__) is type(root)

    def test_cause_cycle_is_truncated_not_infinite(self):
        error = ProtocolError("self-referential")
        error.__cause__ = error
        spec = encode_error(error)
        assert spec["cause"] is None  # cycle cut, codec still total

    def test_unknown_error_type_degrades_to_protocol_error(self):
        spec = {"type": "TotallyMadeUp", "message": "huh", "attrs": {}, "cause": None}
        decoded = decode_error(spec)
        assert isinstance(decoded, ProtocolError)
        assert "TotallyMadeUp" in str(decoded)


# ---------------------------------------------------------------------------
# Replica server protocol behaviour (thread-mode, raw sockets)
# ---------------------------------------------------------------------------


class _RawClient:
    """Minimal scripted peer for protocol-level server tests."""

    def __init__(self, server: ReplicaServer) -> None:
        self.sock = socket.create_connection((server.host, server.port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._tags = iter(range(10_000))

    def call(self, kind: int, payload: dict) -> tuple[int, dict]:
        send_frame(self.sock, kind, payload)
        return recv_frame(self.sock)

    def collect(self, count: int) -> dict[int, list[dict]]:
        """Read ``count`` frames, grouped by kind (push order is racy)."""
        frames: dict[int, list[dict]] = {}
        for _ in range(count):
            kind, payload = recv_frame(self.sock)
            frames.setdefault(kind, []).append(payload)
        return frames

    def hello(self, base: int = 1_000_000) -> dict:
        kind, payload = self.call(
            KIND_HELLO, {"tag": next(self._tags), "batch_id_base": base}
        )
        assert kind == KIND_HELLO_OK
        return payload

    def close(self) -> None:
        self.sock.close()


class TestReplicaServer:
    def test_submit_ack_result_and_heartbeat(self, small_model, workload):
        server = _server(small_model)
        try:
            client = _RawClient(server)
            hello = client.hello(base=5_000_000)
            assert hello["version"] == WIRE_VERSION
            send_frame(client.sock, KIND_SUBMIT, {
                "tag": "t1", "rid": "fleet-0", "model": "tiny",
                "payload": workload[0], "variant": PRIMER_FPC,
                "deadline_seconds": None,
            })
            frames = client.collect(2)
            [ack] = frames[KIND_ACK]
            assert ack["rid"] == "fleet-0" and not ack["duplicate"]
            [result] = frames[KIND_RESULT]
            report = result["report"]
            assert report.request_id == "fleet-0"
            assert report.batch_id >= 5_000_000  # HELLO base applied
            assert report.worker.startswith(server.name)
            kind, beat = client.call(KIND_HEARTBEAT, {"tag": "t2"})
            assert kind == KIND_HEARTBEAT_OK
            assert beat["pending"] == 0 and beat["inflight"] == 0
            client.close()
        finally:
            server.close()

    def test_duplicate_rid_is_deduped_not_re_executed(self, small_model, workload):
        server = _server(small_model)
        try:
            client = _RawClient(server)
            client.hello()
            submit = {
                "tag": "t1", "rid": "fleet-0", "model": "tiny",
                "payload": workload[0], "variant": PRIMER_FPC,
                "deadline_seconds": None,
            }
            send_frame(client.sock, KIND_SUBMIT, submit)
            client.collect(2)  # ack + result
            # The router's ambiguous-ack re-send: same rid, new tag.
            send_frame(client.sock, KIND_SUBMIT, dict(submit, tag="t2"))
            frames = client.collect(2)
            [ack] = frames[KIND_ACK]
            assert ack["duplicate"] is True
            [result] = frames[KIND_RESULT]  # replayed, not recomputed
            assert result["report"].request_id == "fleet-0"
            assert server.executed_ids() == ["fleet-0"]  # exactly once
            client.close()
        finally:
            server.close()

    def test_fetch_replays_completed_and_flags_unknown(self, small_model, workload):
        server = _server(small_model)
        try:
            first = _RawClient(server)
            first.hello()
            send_frame(first.sock, KIND_SUBMIT, {
                "tag": "t1", "rid": "fleet-3", "model": "tiny",
                "payload": workload[1], "variant": PRIMER_FPC,
                "deadline_seconds": None,
            })
            frames = first.collect(2)
            expected = frames[KIND_RESULT][0]["report"].result
            first.close()  # connection dies with the result delivered... or not
            second = _RawClient(server)  # the router's reconnect
            second.hello()
            kind, payload = second.call(KIND_FETCH, {"tag": "fleet-3", "rid": "fleet-3"})
            assert kind == KIND_RESULT
            assert np.array_equal(payload["report"].result, expected)
            kind, payload = second.call(KIND_FETCH, {"tag": "nope", "rid": "nope"})
            assert kind == KIND_ERROR and payload["known"] is False
            second.close()
        finally:
            server.close()

    def test_admission_shed_comes_back_as_typed_overload(self, small_model, workload):
        server = ReplicaServer(
            {"tiny": small_model},
            max_batch_size=4,
            seed=21,
            admission=AdmissionController(
                max_inflight_bytes=1, retry_after_seconds=0.2
            ),
        ).start()
        try:
            client = _RawClient(server)
            client.hello()
            kind, payload = client.call(KIND_SUBMIT, {
                "tag": "t1", "rid": "fleet-0", "model": "tiny",
                "payload": workload[0], "variant": PRIMER_FPC,
                "deadline_seconds": None,
            })
            assert kind == KIND_ERROR
            error = decode_error(payload["error"])
            assert isinstance(error, OverloadedError)
            assert error.retry_after_seconds > 0
            client.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Router semantics (thread-mode replicas, deterministic)
# ---------------------------------------------------------------------------


class TestFleetRouter:
    def test_results_bit_identical_and_stats_aggregate(
        self, small_model, second_model, workload, fault_free_logits
    ):
        servers = [
            _server(small_model, name="rep-0", max_batch_size=2),
            ReplicaServer(
                {"tiny": small_model, "tiny2": second_model},
                name="rep-1", max_batch_size=2, seed=21,
            ).start(),
        ]
        try:
            with _router(servers) as router:
                handles = [router.submit("tiny", t) for t in workload]
                reports = [h.result(timeout=120) for h in handles]
                for tokens, report in zip(workload, reports, strict=True):
                    assert np.array_equal(
                        report.result, fault_free_logits[tokens.tobytes()]
                    )
                ledger = router.conservation()
                assert ledger["gap"] == 0 and ledger["outstanding"] == 0
                # Exact equality: the router-side aggregate equals the sum of
                # the replicas' own counters (attempts/retried/degraded made
                # the trip through the wire intact).
                aggregate = router.stats()
                replica_stats = router.replica_stats()
                for field in (
                    "num_requests", "num_batches", "retried_requests",
                    "degraded_requests", "total_attempts",
                    "deadlines_met", "deadlines_missed",
                ):
                    assert getattr(aggregate, field) == sum(
                        s[field] for s in replica_stats
                    ), field
        finally:
            for server in servers:
                server.close()

    def test_retried_requests_propagate_through_the_wire(
        self, small_model, workload, fault_free_logits
    ):
        server = _server(
            small_model,
            max_batch_size=4,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0, seed=SEED),
        )
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_ONLINE_EXECUTE, fires=(1,)),), seed=SEED
        )
        try:
            with fault_scope(plan):
                with _router([server]) as router:
                    handles = [router.submit("tiny", t) for t in workload[:4]]
                    reports = [h.result(timeout=120) for h in handles]
            for tokens, report in zip(workload[:4], reports, strict=True):
                assert np.array_equal(
                    report.result, fault_free_logits[tokens.tobytes()]
                )
            retried = [r for r in reports if r.retried]
            assert retried, "the injected executor fault must force a retry"
            assert all(r.attempts == 2 for r in retried)
            stats = router.stats()
            assert stats.retried_requests == len(retried)
            assert stats.total_attempts == sum(r.attempts for r in reports)
        finally:
            server.close()

    def test_sticky_least_loaded_placement_spreads_keys(
        self, small_model, second_model
    ):
        servers = [
            ReplicaServer(
                {"tiny": small_model, "tiny2": second_model},
                name=f"rep-{i}", max_batch_size=4, seed=21,
            ).start()
            for i in range(2)
        ]
        rng = np.random.default_rng(31)
        try:
            with _router(servers) as router:
                handles = []
                for _ in range(3):
                    handles.append(router.submit("tiny", rng.integers(0, 40, size=6)))
                    handles.append(router.submit("tiny2", rng.integers(0, 40, size=6)))
                reports = [h.result(timeout=120) for h in handles]
                replicas = {r.worker.split(":")[0] for r in reports}
                assert replicas == {"rep-0", "rep-1"}  # two keys, two replicas
                by_model = {
                    (r.model, r.worker.split(":")[0]) for r in reports
                }
                assert len(by_model) == 2  # each key stuck to one replica
        finally:
            for server in servers:
                server.close()

    def test_crashed_replica_requests_fail_typed_and_traffic_reroutes(
        self, small_model, workload, fault_free_logits
    ):
        clock = [0.0]
        servers = [
            _server(small_model, name="rep-0", max_batch_size=2),
            _server(small_model, name="rep-1", max_batch_size=2),
        ]
        try:
            with _router(
                servers, failure_threshold=2, cooldown_seconds=30.0,
                clock=lambda: clock[0],
            ) as router:
                first = [router.submit("tiny", t) for t in workload[:2]]
                [h.result(timeout=120) for h in first]
                placed = first[0].replica
                crashed = next(s for s in servers if s.name == placed)
                crashed.crash()
                router.probe_replicas()  # failure 1
                router.probe_replicas()  # failure 2 -> quarantine
                assert router.replicas_quarantined == 1
                # New traffic re-routes to the survivor; results stay
                # bit-identical.
                later = [router.submit("tiny", t) for t in workload[2:4]]
                for handle, tokens in zip(later, workload[2:4], strict=True):
                    report = handle.result(timeout=120)
                    assert np.array_equal(
                        report.result, fault_free_logits[tokens.tobytes()]
                    )
                assert {h.replica for h in later} == {
                    s.name for s in servers if s.name != placed
                }
                assert router.conservation()["gap"] == 0
        finally:
            for server in servers:
                server.close()

    def test_acked_then_crashed_fails_with_replica_lost_cause(self, small_model):
        server = _server(small_model, name="rep-0", linger_seconds=5.0)
        try:
            with _router(
                [server], failure_threshold=1, ack_timeout_seconds=5.0,
            ) as router:
                # Linger holds the batch, so the request is acked but
                # unreported when the replica dies.
                handle = router.submit("tiny", np.zeros(6, dtype=np.int64))
                server.crash()
                with pytest.raises(RequestFailed) as excinfo:
                    handle.result(timeout=60)
                assert isinstance(excinfo.value.__cause__, ReplicaLost)
                assert excinfo.value.request_id == handle.request_id
                ledger = router.conservation()
                assert ledger["typed_failed"] == 1 and ledger["gap"] == 0
        finally:
            server.close()

    def test_quarantine_half_open_probe_recovers_replica(self, small_model):
        clock = [0.0]
        server = _server(small_model, name="rep-0")
        try:
            with _router(
                [server],
                local_models={"tiny": small_model},
                local_runtime_kwargs={"max_batch_size": 4, "seed": 21},
                failure_threshold=2,
                cooldown_seconds=10.0,
                clock=lambda: clock[0],
            ) as router:
                plan = FaultPlan(
                    rules=(
                        FaultRule(site=SITE_REPLICA_HEARTBEAT, fires=(1, 2)),
                    ),
                    seed=SEED,
                )
                with fault_scope(plan):
                    router.probe_replicas()  # injected miss 1
                    router.probe_replicas()  # injected miss 2 -> quarantine
                    assert router.replicas_quarantined == 1
                    # Quarantined fleet degrades to the local runtime.
                    local = router.submit("tiny", np.zeros(6, dtype=np.int64))
                    assert local.replica == "local"
                    local.result(timeout=120)
                    assert router.local_submissions == 1
                    # Cooldown not yet elapsed: no probe, still quarantined.
                    clock[0] = 5.0
                    router.probe_replicas()
                    # Past the cooldown the next sweep is the half-open
                    # probe; the heartbeat succeeds and the replica returns.
                    clock[0] = 10.1
                    router.probe_replicas()
                restored = router.submit("tiny", np.ones(6, dtype=np.int64))
                assert restored.replica == "rep-0"
                restored.result(timeout=120)
                assert router.conservation()["gap"] == 0
        finally:
            server.close()

    def test_fleet_exhaustion_raises_typed_with_retry_hint(self, small_model):
        clock = [0.0]
        server = _server(small_model, name="rep-0")
        try:
            with _router(
                [server], failure_threshold=1, cooldown_seconds=30.0,
                clock=lambda: clock[0],
            ) as router:
                server.crash()
                router.probe_replicas()  # opens the breaker
                with pytest.raises(FleetUnavailable) as excinfo:
                    router.submit("tiny", np.zeros(6, dtype=np.int64))
                assert excinfo.value.retry_after_seconds == pytest.approx(30.0)
        finally:
            server.close()

    def test_replica_crash_site_kills_and_reroutes(
        self, small_model, workload, fault_free_logits
    ):
        servers = [
            _server(small_model, name="rep-0", max_batch_size=2),
            _server(small_model, name="rep-1", max_batch_size=2),
        ]
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_REPLICA_CRASH, fires=(1,)),), seed=SEED
        )
        try:
            with _router(servers) as router:
                with fault_scope(plan):
                    handles = [router.submit("tiny", t) for t in workload[:4]]
                    reports = [h.result(timeout=120) for h in handles]
                assert sum(s.crashed for s in servers) == 1
                survivor = next(s.name for s in servers if not s.crashed)
                assert {h.replica for h in handles} == {survivor}
                for tokens, report in zip(workload[:4], reports, strict=True):
                    assert np.array_equal(
                        report.result, fault_free_logits[tokens.tobytes()]
                    )
                assert router.reroutes >= 1
                assert router.conservation()["gap"] == 0
        finally:
            for server in servers:
                server.close()

    def test_connection_faults_recover_bit_identical(
        self, small_model, workload, fault_free_logits
    ):
        """One injected fault at each connection site; no result is lost."""
        server = _server(small_model, name="rep-0", max_batch_size=2)
        plan = FaultPlan(
            rules=(
                FaultRule(site=SITE_CONN_SEND, fires=(2,)),
                FaultRule(site=SITE_CONN_RECV, fires=(3,)),
            ),
            seed=SEED,
        )
        try:
            with fault_scope(plan):
                with _router(
                    [server], failure_threshold=4, ack_timeout_seconds=5.0
                ) as router:
                    handles = [router.submit("tiny", t) for t in workload[:4]]
                    outcomes = []
                    for tokens, handle in zip(workload[:4], handles, strict=True):
                        try:
                            report = handle.result(timeout=120)
                            assert np.array_equal(
                                report.result, fault_free_logits[tokens.tobytes()]
                            )
                            outcomes.append("ok")
                        except RequestFailed as failure:
                            assert isinstance(failure.__cause__, ReplicaLost)
                            outcomes.append("lost")
                    ledger = router.conservation()
                    assert ledger["gap"] == 0 and ledger["outstanding"] == 0
                    assert outcomes.count("ok") >= 2
            # Every request the server actually executed, it executed once.
            executed = server.executed_ids()
            assert len(executed) == len(set(executed))
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a replica process mid-drain under the CI fault-seed matrix
# ---------------------------------------------------------------------------


class TestProcessFleetChaos:
    @pytest.mark.slow
    def test_replica_killed_mid_drain_is_lossless(
        self, small_model, workload, fault_free_logits, tmp_path
    ):
        """The issue's headline chaos gate.

        Two forked replica processes share a fleet directory; one is
        SIGKILLed while its batches drain, with connection faults injected
        at the router under the matrixed ``REPRO_FAULT_SEED``.  Every
        handle resolves (no hangs), completed logits are bit-identical to
        the single-process serial drain, the conservation ledger closes,
        and the crash-surviving execution logs prove at-most-once
        execution across the fleet.
        """
        fleet_dir = tmp_path / "fleet"
        # Replicas are spawned BEFORE the fault scope: the injector is
        # router-side only (children must stay deterministic executors).
        replicas = [
            spawn_replica_process(
                {"tiny": small_model},
                name=f"rep-{i}",
                fleet_dir=fleet_dir,
                max_batch_size=2,
                seed=21,
            )
            for i in range(2)
        ]
        plan = FaultPlan(
            rules=(
                FaultRule(site=SITE_CONN_SEND, rate=0.1),
                FaultRule(site=SITE_CONN_RECV, rate=0.05),
            ),
            seed=SEED,
        )
        try:
            with fault_scope(plan):
                with FleetRouter(
                    replicas,
                    local_models={"tiny": small_model},
                    local_runtime_kwargs={"max_batch_size": 4, "seed": 21},
                    heartbeat_interval_seconds=0.1,
                    heartbeat_timeout_seconds=2.0,
                    failure_threshold=2,
                    cooldown_seconds=60.0,
                    ack_timeout_seconds=10.0,
                ) as router:
                    handles = [router.submit("tiny", t) for t in workload[:4]]
                    replicas[SEED % 2].kill()  # mid-drain, varies with the seed
                    handles += [router.submit("tiny", t) for t in workload[4:]]
                    completed, lost = 0, 0
                    for tokens, handle in zip(workload, handles, strict=True):
                        try:
                            report = handle.result(timeout=180)
                        except RequestFailed as failure:
                            assert isinstance(failure.__cause__, ReplicaLost)
                            lost += 1
                        else:
                            assert np.array_equal(
                                report.result,
                                fault_free_logits[tokens.tobytes()],
                            ), "completed logits must be bit-identical"
                            completed += 1
                    ledger = router.conservation()
                    assert ledger["submitted"] == len(workload)
                    assert ledger["completed"] == completed
                    assert ledger["typed_failed"] == lost
                    assert ledger["gap"] == 0, "conservation must close"
                    assert ledger["outstanding"] == 0
            # At-most-once across the fleet, proven from the per-replica
            # execution logs (flushed line by line; survives SIGKILL).
            logs = read_execution_logs(fleet_dir)
            executed = [rid for rids in logs.values() for rid in rids]
            assert len(executed) == len(set(executed)), (
                f"request executed on two replicas: {sorted(executed)}"
            )
            remote_completed = {
                r.request_id
                for r in router.reports()
                if r.worker != "local"
            }
            assert remote_completed <= set(executed)
        finally:
            for replica in replicas:
                replica.kill()
                replica.join(timeout=10)

    @pytest.mark.slow
    def test_sigterm_drains_before_exit(self, small_model, workload, tmp_path):
        replica = spawn_replica_process(
            {"tiny": small_model},
            name="rep-term",
            fleet_dir=tmp_path / "fleet",
            max_batch_size=4,
            seed=21,
        )
        try:
            with FleetRouter([replica], start_health_monitor=False) as router:
                handles = [router.submit("tiny", t) for t in workload[:2]]
                replica.terminate()  # SIGTERM: drain, then exit
                reports = [h.result(timeout=120) for h in handles]
                assert all(r.request_id for r in reports)
                assert router.conservation()["gap"] == 0
            replica.join(timeout=60)
            assert not replica.alive
        finally:
            replica.kill()
            replica.join(timeout=10)


class TestSharedPlanStoreWarmStart:
    @pytest.mark.slow
    def test_replicas_warm_start_from_shared_store(
        self, small_model, workload, tmp_path
    ):
        """A plan persisted by one process warm-starts the next replica."""
        from repro.protocols.planstore import PlanStore

        store_dir = tmp_path / "plans"
        first = spawn_replica_process(
            {"tiny": small_model},
            name="rep-cold",
            max_batch_size=4,
            seed=21,
            plan_store=PlanStore(store_dir),
        )
        try:
            with FleetRouter([first], start_health_monitor=False) as router:
                router.submit("tiny", workload[0]).result(timeout=120)
                [stats] = router.replica_stats()
                assert stats["engine_cache"]["cold_builds"] == 1
                assert stats["engine_cache"]["warm_starts"] == 0
        finally:
            first.terminate()
            first.join(timeout=60)
        second = spawn_replica_process(
            {"tiny": small_model},
            name="rep-warm",
            max_batch_size=4,
            seed=21,
            plan_store=PlanStore(store_dir),
        )
        try:
            with FleetRouter([second], start_health_monitor=False) as router:
                router.submit("tiny", workload[1]).result(timeout=120)
                [stats] = router.replica_stats()
                assert stats["engine_cache"]["warm_starts"] == 1
                assert stats["engine_cache"]["cold_builds"] == 0
        finally:
            second.terminate()
            second.join(timeout=60)


# ---------------------------------------------------------------------------
# Scheduler batch-id bases (the disjoint-range invariant)
# ---------------------------------------------------------------------------


class TestBatchIdBase:
    def test_base_applies_before_first_batch_only(self):
        from repro.runtime import BatchScheduler, InferenceRequest, BatchKey

        scheduler = BatchScheduler(max_batch_size=2)
        scheduler.set_batch_id_base(2_000_000)
        scheduler.submit(InferenceRequest(
            request_id="r0",
            key=BatchKey(kind="inference", model="m", variant="v"),
            payload=np.zeros(6, dtype=np.int64),
            sequence=0,
        ))
        batch = scheduler.next_batch()
        assert batch.batch_id == 2_000_000
        with pytest.raises(ProtocolError):
            scheduler.set_batch_id_base(3_000_000)  # batches already numbered

    def test_negative_base_rejected(self):
        from repro.runtime import BatchScheduler

        with pytest.raises(ProtocolError):
            BatchScheduler(max_batch_size=2).set_batch_id_base(-1)
