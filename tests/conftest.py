"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.he import SimulatedHEBackend, toy_parameters
from repro.mpc import AdditiveSharing
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import PROTOCOL_FORMAT, protocol_he_parameters
from repro.protocols.channel import Channel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def toy_backend() -> SimulatedHEBackend:
    """Small simulated backend for unit tests."""
    return SimulatedHEBackend(toy_parameters(64))


@pytest.fixture
def protocol_backend() -> SimulatedHEBackend:
    """Backend with the protocol-scale parameters (31-bit plaintext ring)."""
    return SimulatedHEBackend(protocol_he_parameters())


@pytest.fixture
def protocol_sharing() -> AdditiveSharing:
    return AdditiveSharing(PROTOCOL_FORMAT, seed=7)


@pytest.fixture
def channel() -> Channel:
    return Channel()


@pytest.fixture(scope="session")
def tiny_model() -> TransformerEncoder:
    """A dimension-reduced BERT used by integration tests."""
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=2
    )
    return TransformerEncoder.initialise(config, seed=3)


@pytest.fixture(scope="session")
def tiny_token_ids() -> np.ndarray:
    return np.array([4, 7, 12, 20, 33, 5])
