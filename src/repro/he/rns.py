"""Double-CRT (RNS) representation: limb-major residue arithmetic.

The lazy-reduction NTT (:mod:`repro.he.ntt`) is exact only for moduli under
30 bits, and the int64 pointwise products in :mod:`repro.he.polyring`
silently wrap the moment ``q**2`` leaves 63 bits.  Rather than lift either
bound, this module follows SEAL's double-CRT design: a wide ciphertext
modulus ``Q = q_0 * q_1 * ... * q_{L-1}`` is represented by its residues in
``L`` independent ≤30-bit NTT-friendly prime limbs.  Every ring operation --
NTT, pointwise EVAL product, rotation, addition -- runs limb-wise on int64
arrays (each limb inside the proven bounds), and the only place the big
integer ``Q`` ever materialises is the CRT composition at the decrypt
boundary.

Two classes:

:class:`RNSBasis`
    The primes, their product ``Q``, and the CRT bijection
    ``Z_Q  <->  Z_{q_0} x ... x Z_{q_{L-1}}`` (``decompose`` / ``compose``).
:class:`RNSPolynomialRing`
    ``L`` per-limb :class:`~repro.he.polyring.PolynomialRing` instances (each
    sharing the cached NTT context for its ``(N, q_i)``) behind a limb-major
    API: polynomials are ``(L, N)`` int64 arrays, batches ``(L, B, N)``.
    Sampling is RNG-stream compatible with the single-modulus ring -- small
    polynomials (ternary secrets, errors) are drawn *once* centered and then
    reduced into every limb, and uniform elements draw one per-limb stream
    in limb order -- so a one-limb basis consumes the generator identically
    to the historical :class:`~repro.he.polyring.PolynomialRing` and
    reproduces its ciphertexts bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from . import kernels as _kernels
from .polyring import PolynomialRing

__all__ = ["RNSBasis", "RNSPolynomialRing"]


@dataclass(frozen=True)
class RNSBasis:
    """A residue-number-system basis of pairwise-distinct prime limbs.

    ``compose``/``decompose`` realise the CRT ring isomorphism between
    ``Z_Q`` and the product of the limb rings.  The garner coefficients
    ``(Q/q_i) * ((Q/q_i)^-1 mod q_i)`` are precomputed once as Python ints
    (they are ``log Q``-bit numbers, far past int64 for multi-limb bases).
    """

    primes: tuple[int, ...]
    _product: int = field(init=False, repr=False)
    _garner: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        primes = tuple(int(q) for q in self.primes)
        if not primes:
            raise ParameterError("an RNS basis needs at least one limb")
        if len(set(primes)) != len(primes):
            raise ParameterError(f"RNS limbs must be pairwise distinct, got {primes}")
        object.__setattr__(self, "primes", primes)
        product = math.prod(primes)
        garner = []
        for q in primes:
            hat = product // q
            garner.append(hat * pow(hat, -1, q))
        object.__setattr__(self, "_product", product)
        object.__setattr__(self, "_garner", tuple(garner))

    @property
    def limb_count(self) -> int:
        return len(self.primes)

    @property
    def product(self) -> int:
        """The composite modulus ``Q`` this basis represents."""
        return self._product

    def decompose(self, values: np.ndarray) -> np.ndarray:
        """Residues of ``values`` (ints mod ``Q``, any shape) in every limb.

        Accepts int64 or object (big-int) arrays; negative inputs land on
        their canonical non-negative residues.  Returns a limb-major
        ``(L,) + values.shape`` int64 array.
        """
        values = np.asarray(values)
        return np.stack(
            [np.mod(values, q).astype(np.int64) for q in self.primes]
        )

    def compose(self, limbs: np.ndarray) -> np.ndarray:
        """CRT-recombine a limb-major ``(L, ...)`` residue array mod ``Q``.

        Returns an object array of Python ints in ``[0, Q)`` -- exact for any
        number of limbs.  One-limb bases short-circuit (the identity map).
        """
        limbs = np.asarray(limbs)
        if limbs.shape[0] != self.limb_count:
            raise ParameterError(
                f"expected {self.limb_count} limbs, got shape {limbs.shape}"
            )
        if self.limb_count == 1:
            return limbs[0].astype(object)
        acc = np.zeros(limbs.shape[1:], dtype=object)
        for residues, coefficient in zip(limbs, self._garner, strict=True):
            acc += residues.astype(object) * coefficient
        return acc % self.product


@dataclass
class RNSPolynomialRing:
    """Arithmetic in ``Z_Q[X]/(X^N + 1)`` as ``L`` limb-wise rings.

    Polynomials are limb-major ``(L, N)`` int64 arrays (batches
    ``(L, B, N)``); transforms and pointwise products hand the *whole* stack
    to one kernel invocation (:mod:`repro.he.kernels`) so the active kernel
    tier sees one large limbs x batch workload instead of ``L`` small ones,
    and the remaining methods are vectorized across the limb axis directly.
    ``kernel_tier`` optionally pins the tier for this ring (None defers to
    the process-level selection).
    """

    degree: int
    basis: RNSBasis
    kernel_tier: str | None = None
    limb_rings: tuple[PolynomialRing, ...] = field(init=False, repr=False)
    _contexts: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.limb_rings = tuple(
            PolynomialRing(degree=self.degree, modulus=q) for q in self.basis.primes
        )
        self._contexts = tuple(ring.ntt for ring in self.limb_rings)

    @property
    def limb_count(self) -> int:
        return self.basis.limb_count

    @property
    def modulus(self) -> int:
        """The composite modulus ``Q`` (a Python int; may exceed 64 bits)."""
        return self.basis.product

    def _moduli_column(self, batched: bool) -> np.ndarray:
        """The limb moduli shaped to broadcast over ``(L, N)`` / ``(L, B, N)``."""
        q = np.array(self.basis.primes, dtype=np.int64)
        return q[:, None, None] if batched else q[:, None]

    # -- constructors ------------------------------------------------------
    def zero(self) -> np.ndarray:
        return np.zeros((self.limb_count, self.degree), dtype=np.int64)

    def from_signed(self, coeffs: np.ndarray) -> np.ndarray:
        """Reduce a small signed coefficient array into every limb.

        ``coeffs`` has shape ``(N,)`` or ``(B, N)``; the result gains a
        leading limb axis.  This is the one entry point for ternary/error
        polynomials, which are *shared* ring elements: the same small
        integer vector viewed in every limb.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        # One broadcast reduction instead of a per-limb Python loop:
        # (1, ...) % (L, 1[, 1]) -> (L, ...), bit-identical to the stack of
        # per-limb ``np.mod`` calls.
        return np.mod(coeffs[None, ...], self._moduli_column(coeffs.ndim == 2))

    # -- sampling ----------------------------------------------------------
    # Stream-compatibility contract: with one limb, every sampler consumes
    # the numpy Generator exactly as PolynomialRing's samplers do, so the
    # RNS refactor reproduces historical ciphertexts bit for bit.
    def _shape(self, count: int | None) -> int | tuple[int, int]:
        return self.degree if count is None else (count, self.degree)

    def sample_uniform(
        self, rng: np.random.Generator, count: int | None = None
    ) -> np.ndarray:
        """Uniform element(s) mod ``Q``, drawn as independent per-limb streams.

        The CRT map is a bijection, so independently uniform limb residues
        are exactly a uniform element of ``Z_Q`` -- no big-int draw needed.
        """
        return np.stack(
            [
                rng.integers(0, q, size=self._shape(count), dtype=np.int64)
                for q in self.basis.primes
            ]
        )

    def sample_ternary(
        self, rng: np.random.Generator, count: int | None = None
    ) -> np.ndarray:
        """Ternary polynomial(s) with coefficients in {-1, 0, 1}, all limbs."""
        return self.from_signed(
            rng.integers(-1, 2, size=self._shape(count), dtype=np.int64)
        )

    def sample_error(
        self, rng: np.random.Generator, stddev: float, count: int | None = None
    ) -> np.ndarray:
        """Small error polynomial(s) (rounded Gaussian), all limbs."""
        noise = np.rint(rng.normal(0.0, stddev, size=self._shape(count))).astype(
            np.int64
        )
        return self.from_signed(noise)

    # -- arithmetic --------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a + b, self._moduli_column(a.ndim == 3))

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a - b, self._moduli_column(a.ndim == 3))

    def neg(self, a: np.ndarray) -> np.ndarray:
        return np.mod(-a, self._moduli_column(a.ndim == 3))

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product via one stacked transform over all limbs."""
        both = self.forward_batch(np.stack([np.asarray(a), np.asarray(b)], axis=1))
        return self.inverse(self.mul_eval(both[:, 0], both[:, 1]))

    def mul_batch(self, polys: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of a ``(L, B, N)`` batch with ``b``, all limbs at once."""
        fa = self.forward_batch(polys)
        fb = self.forward(b)
        return self.inverse_batch(fa * fb[:, None, :] % self._moduli_column(True))

    def mul_eval(self, a_eval: np.ndarray, b_eval: np.ndarray) -> np.ndarray:
        """Pointwise product of EVAL-form (canonical-residue) polynomials."""
        a_eval = np.asarray(a_eval)
        tier = _kernels.active_tier(self.kernel_tier)
        return tier.mul_eval(
            a_eval, np.asarray(b_eval), self._moduli_column(a_eval.ndim == 3)
        )

    def mul_scalar(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every limb by a (possibly signed) small scalar."""
        moduli = self._moduli_column(a.ndim == 3)
        return np.mod(a * np.mod(int(scalar), moduli), moduli)

    # -- transforms --------------------------------------------------------
    # All four entry points funnel into a single stacked kernel invocation
    # over the full ``(L, B, N)`` workload; the active tier chunks it over
    # limbs x batch as it sees fit (one C call per limb, a shared thread
    # pool, or the numpy reference loop -- all bit-identical).
    def forward(self, a: np.ndarray) -> np.ndarray:
        """Limb-wise forward NTT of one ``(L, N)`` polynomial."""
        return self.forward_batch(np.asarray(a)[:, None, :])[:, 0]

    def inverse(self, a_eval: np.ndarray) -> np.ndarray:
        """Limb-wise inverse NTT of one ``(L, N)`` polynomial."""
        return self.inverse_batch(np.asarray(a_eval)[:, None, :])[:, 0]

    def forward_batch(self, polys: np.ndarray) -> np.ndarray:
        """Forward NTT of a ``(L, B, N)`` batch in one stacked kernel call."""
        return _kernels.stacked_ntt(
            self._contexts, polys, inverse=False, kernel_tier=self.kernel_tier
        )

    def inverse_batch(self, values: np.ndarray) -> np.ndarray:
        """Inverse NTT of a ``(L, B, N)`` batch in one stacked kernel call."""
        return _kernels.stacked_ntt(
            self._contexts, values, inverse=True, kernel_tier=self.kernel_tier
        )

    # -- automorphisms -----------------------------------------------------
    def rotate_eval(self, a_eval: np.ndarray, steps: int) -> np.ndarray:
        """Negacyclic rotation of EVAL-form limbs (cached monomial tables).

        The per-limb monomial tables stack into one ``(L, N)`` operand so
        the rotation is a single pointwise kernel call over all limbs.
        """
        a_eval = np.asarray(a_eval)
        monomials = np.stack([ctx.monomial_eval(steps) for ctx in self._contexts])
        if a_eval.ndim == 3:
            monomials = monomials[:, None, :]
        return self.mul_eval(a_eval, monomials)

    def rotate_coefficients(self, a: np.ndarray, steps: int) -> np.ndarray:
        """Negacyclic coefficient rotation, vectorized across the limb axis."""
        a = np.asarray(a)
        n = self.degree
        steps = steps % (2 * n)
        sign = 1
        if steps >= n:
            # X**N = -1, so a shift past N is a shift by (steps - N) negated.
            steps -= n
            sign = -1
        moduli = self._moduli_column(a.ndim == 3)
        if steps == 0:
            return np.mod(sign * a, moduli)
        result = np.empty_like(a)
        # Coefficients that wrap past X**N pick up a sign flip.
        result[..., :steps] = -a[..., n - steps:]
        result[..., steps:] = a[..., : n - steps]
        return np.mod(sign * result, moduli)

    # -- CRT boundary ------------------------------------------------------
    def compose(self, limbs: np.ndarray) -> np.ndarray:
        """CRT-recombine limb residues into ints mod ``Q`` (object array)."""
        return self.basis.compose(limbs)
