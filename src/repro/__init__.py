"""repro -- reproduction of "Primer: Fast Private Transformer Inference on
Encrypted Data" (DAC 2023).

The package provides:

* ``repro.he`` -- an additive BFV-style HE layer (exact RLWE backend plus a
  functional simulator with operation accounting) including the paper's
  tokens-first ciphertext packing;
* ``repro.mpc`` -- additive secret sharing, Beaver triples, oblivious transfer
  and a garbled-circuit engine;
* ``repro.nn`` -- a plaintext BERT-style Transformer substrate with fixed-point
  and polynomial-approximation execution modes;
* ``repro.protocols`` -- the paper's contribution: the HGS, FHGS and CHGS
  protocols, GC-backed non-linearities, and the Primer-base/F/FP/FPC private
  inference engine;
* ``repro.baselines`` -- THE-X (FHE-only) and GCFormer (GC-only) comparison
  points;
* ``repro.costmodel`` / ``repro.runtime`` / ``repro.data`` -- the calibrated
  latency model, evaluation harness and synthetic datasets used to regenerate
  the paper's tables and figures.
"""

from . import baselines, costmodel, data, fixedpoint, he, mpc, nn, protocols, runtime
from .protocols import (
    ALL_VARIANTS,
    PRIMER_BASE,
    PRIMER_F,
    PRIMER_FP,
    PRIMER_FPC,
    PrimerVariant,
    PrivateTransformerInference,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_VARIANTS",
    "PRIMER_BASE",
    "PRIMER_F",
    "PRIMER_FP",
    "PRIMER_FPC",
    "PrimerVariant",
    "PrivateTransformerInference",
    "__version__",
    "baselines",
    "costmodel",
    "data",
    "fixedpoint",
    "he",
    "mpc",
    "nn",
    "protocols",
    "runtime",
]
