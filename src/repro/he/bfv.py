"""An exact BFV-style additive homomorphic encryption scheme.

This is the "real cryptography" backend of the reproduction.  It implements
exactly the subset of SEAL used by the paper (Section IV: *"only additive HE
operations and rotations are used and ciphertext-ciphertext multiplications
are not required"*):

* key generation (ternary secret, RLWE public key),
* encryption / decryption with invariant-noise tracking,
* ciphertext + ciphertext and ciphertext + plaintext addition / subtraction,
* ciphertext x plaintext polynomial and ciphertext x scalar multiplication,
* monomial rotations (multiplication by ``X**k``), which shift
  coefficient-packed slots.

Slot-wise (CRT-batched) products and Galois-key rotations are intentionally
*not* implemented; the protocols in :mod:`repro.protocols` are formulated so
that their exact-backend instantiation only needs the operations above, and
the packing/rotation experiments that need slot semantics run on the
functional backend in :mod:`repro.he.simulated`, which counts the same
operations the real SEAL deployment would execute.

Evaluation-domain residency: ciphertexts carry an explicit
:class:`~repro.he.ntt.Domain` and are encrypted straight into NTT (EVAL)
form by default, so the linear hot path -- plaintext products, additions,
rotations -- runs pointwise without a single transform and the only inverse
NTT is the one at the decrypt boundary.  Every forward/inverse transform is
recorded on the tracker (``ntt_forward`` / ``ntt_inverse``, one count per
*limb polynomial*), which makes redundant round trips provable bugs rather
than silent slowdowns.  Setting ``default_domain=Domain.COEFF`` restores the
historical coefficient-resident behaviour bit-exactly (the NTT is a linear
bijection, so decrypted residues never depend on residency).

Double-CRT (RNS) ciphertexts: components are limb-major ``(L, N)`` arrays
over an :class:`~repro.he.rns.RNSBasis` of NTT-friendly ≤30-bit primes, so
every limb stays inside the lazy-reduction NTT bound and the int64
pointwise-product invariants while the composite modulus ``Q`` grows to the
60-bit-plus Gazelle-era deployments.  All evaluator operations act
limb-wise; the big integer ``Q`` materialises exactly once, in the CRT
composition at the decrypt boundary.  Every transform closed form gains a
factor ``L`` -- one NTT per limb polynomial -- and a one-limb basis reproduces
the historical single-modulus scheme bit for bit (same randomness stream,
same residues, same transform counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import NoiseBudgetExhausted, ParameterError
from .keys import PublicKey, SecretKey
from .ntt import Domain
from .params import BFVParameters
from .rns import RNSBasis, RNSPolynomialRing
from .tracker import OperationTracker

__all__ = ["Ciphertext", "EvalPlain", "BFVContext"]


@dataclass
class Ciphertext:
    """A BFV ciphertext ``(c0, c1)`` plus an analytic noise-bound estimate.

    ``c0`` and ``c1`` are limb-major ``(L, N)`` int64 arrays: row ``i`` holds
    the polynomial's residues modulo the RNS limb ``q_i``.  A single-limb
    configuration is the historical single-modulus scheme with one row.

    ``noise_bound`` is an upper estimate of the infinity norm of the
    invariant noise numerator.  It is updated by every evaluator operation
    and used to report a noise *budget* (bits of headroom left before
    decryption fails), mirroring SEAL's ``invariant_noise_budget``.

    ``domain`` records which representation ``c0``/``c1`` are resident in:
    coefficient form (:attr:`~repro.he.ntt.Domain.COEFF`) or NTT form
    (:attr:`~repro.he.ntt.Domain.EVAL`).  The NTT is a linear bijection of
    ``Z_q^N`` limb by limb, so every evaluator operation has an exact
    counterpart in either domain and the decrypted residues are
    bit-identical; only the number of forward/inverse transforms paid along
    the way differs.
    """

    c0: np.ndarray
    c1: np.ndarray
    noise_bound: float
    slots_used: int
    domain: Domain = Domain.COEFF

    def copy(self) -> Ciphertext:
        return Ciphertext(
            self.c0.copy(), self.c1.copy(), self.noise_bound, self.slots_used,
            self.domain,
        )


@dataclass(frozen=True)
class EvalPlain:
    """A plaintext polynomial pre-transformed into the evaluation domain.

    Produced once by :meth:`BFVContext.encode_plain_eval` (e.g. at plan
    time for weight diagonals) and reused across every
    :meth:`BFVContext.multiply_plain_poly` against an EVAL-resident
    ciphertext -- those products are then pointwise and cost *zero*
    transforms.  ``values_eval`` is limb-major ``(L, N)`` like ciphertext
    components.  ``norm`` is the L1 norm of the centered coefficients,
    preserved for the same noise-growth estimate the raw-plaintext path
    uses.
    """

    values_eval: np.ndarray
    norm: float


@dataclass
class BFVContext:
    """Owns the ring, the keys, and the evaluator operations.

    Parameters
    ----------
    params:
        The :class:`~repro.he.params.BFVParameters` to instantiate.  A
        multi-limb ``ciphertext_moduli`` basis produces double-CRT
        ciphertexts transparently; all public APIs are unchanged.
    seed:
        Seed for key generation and encryption randomness (tests rely on
        reproducibility; a deployment would use ``secrets``-grade entropy).
    tracker:
        Optional :class:`~repro.he.tracker.OperationTracker` shared with the
        cost model; every homomorphic operation is recorded on it.
    """

    params: BFVParameters
    seed: int = 2023
    tracker: OperationTracker | None = None
    #: domain freshly encrypted ciphertexts are produced in.  ``EVAL`` keeps
    #: the linear hot path transform-lazy (the default); ``COEFF`` restores
    #: the historical coefficient-resident behaviour for equivalence tests
    #: and before/after benchmarks.
    default_domain: Domain = Domain.EVAL
    ring: RNSPolynomialRing = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)
    _secret: SecretKey = field(init=False, repr=False)
    _public: PublicKey = field(init=False, repr=False)
    #: NTT-domain forms of the keys (limb-major), cached so every
    #: encryption/decryption saves the repeated forward transforms of p0,
    #: p1 and s.
    _p0_ntt: np.ndarray = field(init=False, repr=False)
    _p1_ntt: np.ndarray = field(init=False, repr=False)
    _s_ntt: np.ndarray = field(init=False, repr=False)
    #: the limb moduli as (L, 1) and (L, 1, 1) columns, for broadcasting
    #: limb-wise reductions over (L, N) and (L, B, N) arrays.
    _q_col: np.ndarray = field(init=False, repr=False)
    _q_batch: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        basis = RNSBasis(primes=tuple(self.params.ciphertext_moduli))
        self.ring = RNSPolynomialRing(
            degree=self.params.ring_degree,
            basis=basis,
            kernel_tier=self.params.kernel_tier,
        )
        q = np.array(basis.primes, dtype=np.int64)
        self._q_col = q[:, None]
        self._q_batch = q[:, None, None]
        self._rng = np.random.default_rng(self.seed)
        if self.tracker is None:
            self.tracker = OperationTracker()
        self._generate_keys()

    @property
    def limb_count(self) -> int:
        return self.ring.limb_count

    # -- key management ----------------------------------------------------
    def _generate_keys(self) -> None:
        ring = self.ring
        s = ring.sample_ternary(self._rng)
        a = ring.sample_uniform(self._rng)
        e = ring.sample_error(self._rng, self.params.error_stddev)
        p0 = ring.sub(ring.neg(ring.add(ring.mul(a, s), e)), ring.zero())
        self._secret = SecretKey(poly=s)
        self._public = PublicKey(p0=p0, p1=a)
        self._p0_ntt = ring.forward(p0)
        self._p1_ntt = ring.forward(a)
        self._s_ntt = ring.forward(s)
        self.tracker.record("keygen")

    @property
    def secret_key(self) -> SecretKey:
        return self._secret

    @property
    def public_key(self) -> PublicKey:
        return self._public

    # -- encoding ----------------------------------------------------------
    def encode(self, values: np.ndarray) -> np.ndarray:
        """Pack integer residues (mod t) into a plaintext polynomial.

        One value per coefficient ("coefficient packing"); at most
        ``slot_count`` values fit.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ParameterError("encode expects a 1-D vector of residues")
        if values.size > self.params.slot_count:
            raise ParameterError(
                f"cannot pack {values.size} values into {self.params.slot_count} slots"
            )
        plain = np.zeros(self.params.ring_degree, dtype=np.int64)
        plain[: values.size] = np.mod(values, self.params.plaintext_modulus)
        return plain

    def decode(self, plain: np.ndarray, count: int | None = None) -> np.ndarray:
        """Read packed residues back out of a plaintext polynomial."""
        if count is None:
            count = self.params.slot_count
        return np.mod(plain[:count], self.params.plaintext_modulus)

    # -- encryption --------------------------------------------------------
    def _scale_plaintext(self, plain: np.ndarray) -> np.ndarray:
        """Scale a plaintext polynomial by ``Q/t`` with exact rounding.

        Using ``round(Q * m / t)`` instead of ``floor(Q/t) * m`` removes the
        ``m * (Q mod t) / Q`` decryption error that the naive Delta-scaling
        introduces for large plaintext residues.  The result is limb-major:
        ``(L,) + plain.shape``.  Single-limb parameters take the historical
        int64 fast path (``m * q < 2**61`` for every supported ``t``);
        multi-limb parameters form ``round(Q m / t)`` in exact big-int
        arithmetic -- this is an encode-time constant, not hot-path work --
        and decompose it into the limbs.
        """
        q = self.params.ciphertext_modulus
        t = self.params.plaintext_modulus
        if self.limb_count == 1:
            scaled = (plain.astype(np.int64) * q + t // 2) // t
            return np.mod(scaled, q)[None, ...]
        scaled = (plain.astype(object) * q + t // 2) // t
        return self.ring.basis.decompose(scaled % q)

    def encrypt(self, values: np.ndarray, *, domain: Domain | None = None) -> Ciphertext:
        """Encrypt a vector of plaintext residues (coefficient-packed)."""
        return self.encrypt_batch([values], domain=domain)[0]

    def encrypt_batch(
        self, values_list: list[np.ndarray], *, domain: Domain | None = None
    ) -> list[Ciphertext]:
        """Encrypt many residue vectors with one batched NTT pass per limb.

        All the randomness of the batch is sampled up front and the random
        polynomials ``u`` go through a single batched forward transform per
        limb.  The output ``domain`` (default: :attr:`default_domain`)
        decides the second transform call: producing COEFF ciphertexts pulls
        the pointwise products with the cached NTT-form public key back
        through one stacked batched inverse, while producing EVAL
        ciphertexts pushes the noise/message polynomials *forward* instead
        and never leaves the evaluation domain -- three transforms per limb
        per ciphertext either way (``3 B L`` total, recorded on the
        tracker), with the ``log N`` Python-level stage iterations of the
        lazy-reduction NTT amortised across the batch.  Both domains consume
        the randomness stream in the same order, so the two forms are NTT
        images of one another bit-exactly.
        """
        if not values_list:
            return []
        if domain is None:
            domain = self.default_domain
        batch = len(values_list)
        n = self.params.ring_degree
        limbs = self.limb_count
        qb = self._q_batch
        ring = self.ring
        plains = np.stack(
            [self.encode(np.asarray(v, dtype=np.int64)) for v in values_list]
        )
        scaled = self._scale_plaintext(plains)
        u = ring.sample_ternary(self._rng, count=batch)
        e1 = ring.sample_error(self._rng, self.params.error_stddev, count=batch)
        e2 = ring.sample_error(self._rng, self.params.error_stddev, count=batch)
        u_ntt = ring.forward_batch(u)
        p0 = self._p0_ntt[:, None, :]
        p1 = self._p1_ntt[:, None, :]
        if domain is Domain.EVAL:
            # NTT(c0) = NTT(u) * NTT(p0) + NTT(e1 + Delta*m), likewise c1:
            # the additive terms go forward instead of the products coming
            # back, and the ciphertext is born evaluation-resident.
            additive = ring.forward_batch(
                np.concatenate([np.mod(e1 + scaled, qb), e2], axis=1)
            )
            c0 = np.mod(u_ntt * p0 + additive[:, :batch], qb)
            c1 = np.mod(u_ntt * p1 + additive[:, batch:], qb)
            self.tracker.record_transforms(forward=3 * batch * limbs)
        else:
            components = ring.inverse_batch(
                np.concatenate([u_ntt * p0 % qb, u_ntt * p1 % qb], axis=1)
            )
            c0 = np.mod(components[:, :batch] + e1 + scaled, qb)
            c1 = np.mod(components[:, batch:] + e2, qb)
            self.tracker.record_transforms(forward=batch * limbs, inverse=2 * batch * limbs)
        # Fresh noise bound: ||e*u + e1 + e2*s|| <= stddev * (2N + 2) roughly;
        # use a conservative analytic estimate.
        fresh = self.params.error_stddev * (2 * n + 2)
        self.tracker.record(
            "encrypt", count=batch, bytes_moved=batch * self.params.ciphertext_bytes
        )
        return [
            Ciphertext(
                c0=c0[:, i], c1=c1[:, i], noise_bound=fresh,
                slots_used=int(np.asarray(values_list[i]).size),
                domain=domain,
            )
            for i in range(batch)
        ]

    # -- domain conversion -------------------------------------------------
    def to_eval(self, ct: Ciphertext) -> Ciphertext:
        """COEFF -> EVAL conversion of one ciphertext (two transforms x L)."""
        return self.convert_batch([ct], Domain.EVAL)[0]

    def to_coeff(self, ct: Ciphertext) -> Ciphertext:
        """EVAL -> COEFF conversion of one ciphertext (two transforms x L)."""
        return self.convert_batch([ct], Domain.COEFF)[0]

    def convert_batch(self, cts: list[Ciphertext], domain: Domain) -> list[Ciphertext]:
        """Convert ciphertexts to ``domain`` with one batched NTT pass per limb.

        Already-resident ciphertexts are returned unchanged (and charged
        nothing): the transform counters only ever record crossings that
        actually happened, which is what makes redundant round trips
        provable from the tracker.
        """
        movers = [ct for ct in cts if ct.domain is not domain]
        if not movers:
            return list(cts)
        ring = self.ring
        stacked = np.concatenate(
            [np.stack([ct.c0, ct.c1], axis=1) for ct in movers], axis=1
        )
        if domain is Domain.EVAL:
            converted = ring.forward_batch(stacked)
            self.tracker.record_transforms(forward=2 * len(movers) * self.limb_count)
        else:
            converted = ring.inverse_batch(stacked)
            self.tracker.record_transforms(inverse=2 * len(movers) * self.limb_count)
        moved = iter(range(len(movers)))
        results = []
        for ct in cts:
            if ct.domain is domain:
                results.append(ct)
                continue
            i = next(moved)
            results.append(
                Ciphertext(
                    c0=converted[:, 2 * i], c1=converted[:, 2 * i + 1],
                    noise_bound=ct.noise_bound, slots_used=ct.slots_used,
                    domain=domain,
                )
            )
        return results

    def decrypt(self, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        """Decrypt a ciphertext back to its packed residues."""
        if count is None:
            count = ct.slots_used
        return self.decrypt_batch([ct], counts=[count])[0]

    def decrypt_batch(
        self, cts: list[Ciphertext], counts: list[int] | None = None
    ) -> list[np.ndarray]:
        """Decrypt many ciphertexts with one batched NTT pass per limb.

        COEFF ciphertexts pay the historical round trip (forward ``c1``,
        pointwise with the cached NTT-form secret, inverse).  EVAL
        ciphertexts fold ``c0 + c1 * s`` entirely in the evaluation domain
        and pay exactly *one* inverse per limb -- the only transforms the
        evaluation-resident hot path ever pays per output ciphertext.

        Rounding is the only place the composite modulus ``Q`` exists:
        single-limb parameters keep the historical float64 path (exactness
        argument: ``q`` odd prime and ``t < q`` make ties impossible, and
        the float error is orders of magnitude below the distance to the
        nearest tie), while multi-limb parameters CRT-compose the limbs and
        round ``centered * t / Q`` in exact big-int arithmetic.
        """
        if not cts:
            return []
        for ct in cts:
            if self.noise_budget(ct) <= 0:
                raise NoiseBudgetExhausted(
                    "ciphertext noise budget exhausted; decryption would be incorrect"
                )
        t = self.params.plaintext_modulus
        limbs = self.limb_count
        qb = self._q_batch
        ring = self.ring
        raw = np.empty((limbs, len(cts), self.params.ring_degree), dtype=np.int64)
        coeff_idx = [i for i, ct in enumerate(cts) if ct.domain is Domain.COEFF]
        eval_idx = [i for i, ct in enumerate(cts) if ct.domain is Domain.EVAL]
        s = self._s_ntt[:, None, :]
        if coeff_idx:
            c0 = np.stack([cts[i].c0 for i in coeff_idx], axis=1)
            c1 = np.stack([cts[i].c1 for i in coeff_idx], axis=1)
            raw[:, coeff_idx] = np.mod(
                c0 + ring.inverse_batch(ring.forward_batch(c1) * s % qb), qb
            )
            self.tracker.record_transforms(
                forward=len(coeff_idx) * limbs, inverse=len(coeff_idx) * limbs
            )
        if eval_idx:
            combined = np.stack(
                [np.mod(cts[i].c0 + cts[i].c1 * self._s_ntt, self._q_col) for i in eval_idx],
                axis=1,
            )
            raw[:, eval_idx] = ring.inverse_batch(combined)
            self.tracker.record_transforms(inverse=len(eval_idx) * limbs)
        if limbs == 1:
            q = self.params.ciphertext_modulus
            half = q // 2
            centered = np.where(raw[0] > half, raw[0] - q, raw[0]).astype(np.float64)
            scaled = np.rint(centered * t / q).astype(np.int64)
        else:
            big_q = self.params.ciphertext_modulus
            composed = ring.compose(raw)
            centered = np.where(composed > big_q // 2, composed - big_q, composed)
            # round(centered * t / Q), half-up; Q is odd so exact ties cannot
            # occur and half-up equals round-to-nearest.
            scaled = ((2 * centered * t + big_q) // (2 * big_q)).astype(np.int64)
        self.tracker.record("decrypt", count=len(cts))
        result = np.mod(scaled, t)
        if counts is None:
            counts = [ct.slots_used for ct in cts]
        return [result[i, : counts[i]] for i in range(len(cts))]

    def noise_budget(self, ct: Ciphertext) -> float:
        """Bits of noise headroom remaining (analytic estimate)."""
        q = self.params.ciphertext_modulus
        t = self.params.plaintext_modulus
        limit = q / (2.0 * t)
        if ct.noise_bound <= 0:
            return math.log2(limit)
        return math.log2(limit) - math.log2(ct.noise_bound)

    # -- homomorphic operations --------------------------------------------
    def _aligned(self, a: Ciphertext, b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two operands into one domain (resident-forward policy).

        Mixed-domain additions convert the COEFF operand *up* to EVAL (the
        direction that keeps the pipeline resident) and charge the crossing;
        a correctly transform-lazy pipeline never takes this branch, which
        the exact-count tests rely on.
        """
        if a.domain is b.domain:
            return a, b
        if a.domain is Domain.COEFF:
            return self.to_eval(a), b
        return a, self.to_eval(b)

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext + ciphertext (domain-preserving; NTT is linear)."""
        a, b = self._aligned(a, b)
        ring = self.ring
        self.tracker.record("he_add")
        return Ciphertext(
            c0=ring.add(a.c0, b.c0),
            c1=ring.add(a.c1, b.c1),
            noise_bound=a.noise_bound + b.noise_bound,
            slots_used=max(a.slots_used, b.slots_used),
            domain=a.domain,
        )

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext - ciphertext (domain-preserving; NTT is linear)."""
        a, b = self._aligned(a, b)
        ring = self.ring
        self.tracker.record("he_add")
        return Ciphertext(
            c0=ring.sub(a.c0, b.c0),
            c1=ring.sub(a.c1, b.c1),
            noise_bound=a.noise_bound + b.noise_bound,
            slots_used=max(a.slots_used, b.slots_used),
            domain=a.domain,
        )

    def add_plain(self, a: Ciphertext, values: np.ndarray) -> Ciphertext:
        """Ciphertext + plaintext vector.

        An EVAL-resident ciphertext absorbs the plaintext through one
        forward transform per limb of the scaled message polynomial (the
        ciphertext itself never leaves the evaluation domain).
        """
        ring = self.ring
        plain = self.encode(np.asarray(values, dtype=np.int64))
        scaled = self._scale_plaintext(plain)
        if a.domain is Domain.EVAL:
            scaled = ring.forward(scaled)
            self.tracker.record_transforms(forward=self.limb_count)
        self.tracker.record("he_add_plain")
        return Ciphertext(
            c0=ring.add(a.c0, scaled),
            c1=a.c1.copy(),
            noise_bound=a.noise_bound + 1.0,
            slots_used=max(a.slots_used, int(np.asarray(values).size)),
            domain=a.domain,
        )

    def multiply_scalar(self, a: Ciphertext, scalar: int) -> Ciphertext:
        """Ciphertext x small integer scalar (plaintext residue).

        This is the workhorse of the tokens-first packed matrix product: the
        weight entry multiplies every slot of the ciphertext.  Scalar
        multiplication commutes with the NTT, so it is transform-free in
        both domains.
        """
        ring = self.ring
        t = self.params.plaintext_modulus
        scalar = int(scalar) % t
        centered_scalar = scalar - t if scalar > t // 2 else scalar
        self.tracker.record("he_mul_plain")
        return Ciphertext(
            c0=ring.mul_scalar(a.c0, centered_scalar),
            c1=ring.mul_scalar(a.c1, centered_scalar),
            noise_bound=a.noise_bound * max(1, abs(centered_scalar)),
            slots_used=a.slots_used,
            domain=a.domain,
        )

    def _centered_plain_limbs(
        self, plain_values: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Centered mod-t encode reduced into every limb, plus its L1 norm."""
        plain = self.encode(np.asarray(plain_values, dtype=np.int64))
        t = self.params.plaintext_modulus
        centered = np.where(plain > t // 2, plain - t, plain)
        norm = float(np.sum(np.abs(centered)))
        return self.ring.from_signed(centered), norm

    def encode_plain_eval(self, plain_values: np.ndarray) -> EvalPlain:
        """Pre-transform a plaintext polynomial into the evaluation domain.

        One forward transform per limb now buys transform-free
        :meth:`multiply_plain_poly` calls forever after -- the plan-time
        hoisting the BSGS diagonal kernel uses for its weight masks.
        """
        plain_limbs, norm = self._centered_plain_limbs(plain_values)
        self.tracker.record_transforms(forward=self.limb_count)
        return EvalPlain(values_eval=self.ring.forward(plain_limbs), norm=norm)

    def multiply_plain_poly(
        self, a: Ciphertext, plain_values: np.ndarray | EvalPlain
    ) -> Ciphertext:
        """Ciphertext x plaintext polynomial (negacyclic convolution).

        Used by Gazelle-style diagonal matrix-vector products.  Note this is
        a *convolution* of the packed slots, not a slot-wise product.

        Transform economy by residency (all counts per limb): a COEFF
        ciphertext pays the full round trip (two forwards for ``c0, c1``,
        one for the plaintext, two inverses back -- five transforms).  An
        EVAL ciphertext multiplies pointwise, paying one forward for a raw
        plaintext and *zero* transforms when handed a pre-transformed
        :class:`EvalPlain`.
        """
        ring = self.ring
        self.tracker.record("he_mul_plain")
        if isinstance(plain_values, EvalPlain):
            if a.domain is not Domain.EVAL:
                a = self.to_eval(a)
            return Ciphertext(
                c0=ring.mul_eval(a.c0, plain_values.values_eval),
                c1=ring.mul_eval(a.c1, plain_values.values_eval),
                noise_bound=a.noise_bound * max(1.0, plain_values.norm),
                slots_used=self.params.slot_count,
                domain=Domain.EVAL,
            )
        plain_limbs, norm = self._centered_plain_limbs(plain_values)
        if a.domain is Domain.EVAL:
            plain_eval = ring.forward(plain_limbs)
            self.tracker.record_transforms(forward=self.limb_count)
            return Ciphertext(
                c0=ring.mul_eval(a.c0, plain_eval),
                c1=ring.mul_eval(a.c1, plain_eval),
                noise_bound=a.noise_bound * max(1.0, norm),
                slots_used=self.params.slot_count,
                domain=Domain.EVAL,
            )
        # One batched NTT per limb over (c0, c1) shares the plaintext's
        # forward transform.
        products = ring.mul_batch(np.stack([a.c0, a.c1], axis=1), plain_limbs)
        self.tracker.record_transforms(
            forward=3 * self.limb_count, inverse=2 * self.limb_count
        )
        return Ciphertext(
            c0=products[:, 0],
            c1=products[:, 1],
            noise_bound=a.noise_bound * max(1.0, norm),
            slots_used=self.params.slot_count,
            domain=Domain.COEFF,
        )

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        """Rotate packed slots by ``steps`` positions (monomial multiplication).

        Slots that wrap past the ring degree acquire a sign flip; callers are
        responsible for only reading un-wrapped slots (the packing layer
        guarantees this).  Multiplication by ``X**steps`` is a coefficient
        shift in COEFF form and a pointwise product with the cached monomial
        table in EVAL form -- transform-free either way, so rotations are
        *not* domain boundaries.
        """
        ring = self.ring
        self.tracker.record("he_rotate")
        if a.domain is Domain.EVAL:
            return Ciphertext(
                c0=ring.rotate_eval(a.c0, steps),
                c1=ring.rotate_eval(a.c1, steps),
                noise_bound=a.noise_bound,
                slots_used=min(self.params.slot_count, a.slots_used + steps),
                domain=Domain.EVAL,
            )
        return Ciphertext(
            c0=ring.rotate_coefficients(a.c0, steps),
            c1=ring.rotate_coefficients(a.c1, steps),
            noise_bound=a.noise_bound,
            slots_used=min(self.params.slot_count, a.slots_used + steps),
            domain=Domain.COEFF,
        )

    def zero_ciphertext(
        self, slots_used: int = 0, *, domain: Domain | None = None
    ) -> Ciphertext:
        """A fresh encryption of the all-zero vector (used as an accumulator)."""
        return self.encrypt(np.zeros(max(1, slots_used), dtype=np.int64), domain=domain)
