"""Number-theoretic transform over ``Z_q[X]/(X^N + 1)``.

The BFV backend needs fast negacyclic polynomial multiplication.  We use the
standard negative-wrapped-convolution NTT: multiply the coefficient vector by
powers of ``psi`` (a primitive 2N-th root of unity mod q), apply a length-N
NTT with root ``psi**2``, multiply pointwise, invert, and undo the psi
twist.  All arithmetic stays inside ``numpy.int64``; this is safe because the
moduli used by :mod:`repro.he.params` are below 2**30 so intermediate products
fit in 62 bits.

The transform is the hottest loop of the exact backend, so it is vectorized
two ways:

* every butterfly stage is a single numpy slice operation (no per-butterfly
  Python loop), and
* the stage loop runs over a whole *batch* of polynomials at once
  (``forward_batch`` / ``inverse_batch`` / ``multiply_batch``), so the
  ``log N`` Python-level stage iterations are amortised across the batch.

Twiddle/psi tables are expensive to build (a primitive-root search plus
``O(N)`` modular powers), so contexts are cached per ``(N, q)`` via
:func:`get_ntt_context`; :func:`batch_ntt` is the module-level entry point
used by :mod:`repro.he.bfv` and the serving runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..errors import ParameterError

__all__ = [
    "is_prime",
    "find_ntt_prime",
    "primitive_root",
    "NTTContext",
    "get_ntt_context",
    "batch_ntt",
]


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_prime(bits: int, ring_degree: int) -> int:
    """Find the largest prime below ``2**bits`` congruent to 1 mod ``2*ring_degree``.

    Such a prime guarantees the existence of a primitive ``2N``-th root of
    unity, which the negacyclic NTT requires.
    """
    if bits < 4 or bits > 30:
        raise ParameterError(f"NTT prime bits must be in [4, 30], got {bits}")
    step = 2 * ring_degree
    candidate = ((1 << bits) // step) * step + 1
    while candidate > step:
        if candidate < (1 << bits) and is_prime(candidate):
            return candidate
        candidate -= step
    raise ParameterError(
        f"no NTT-friendly prime below 2**{bits} for ring degree {ring_degree}"
    )


def primitive_root(modulus: int) -> int:
    """Find a generator of the multiplicative group of ``Z_modulus`` (prime)."""
    order = modulus - 1
    factors = _prime_factors(order)
    for g in range(2, modulus):
        if all(pow(g, order // f, modulus) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for modulus {modulus}")


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        reversed_indices |= ((indices >> b) & 1) << (bits - 1 - b)
    return reversed_indices


def _mod_powers(base: int, count: int, modulus: int) -> np.ndarray:
    """``[base**0, base**1, ..., base**(count-1)] mod modulus`` as int64."""
    powers = np.empty(count, dtype=np.int64)
    acc = 1
    for i in range(count):
        powers[i] = acc
        acc = acc * base % modulus
    return powers


@dataclass
class NTTContext:
    """Precomputed tables for negacyclic NTT over ``Z_q[X]/(X^N + 1)``.

    Parameters
    ----------
    ring_degree:
        Power-of-two polynomial degree ``N``.
    modulus:
        Prime ``q`` with ``q ≡ 1 (mod 2N)``.

    Contexts are stateless after construction; share them freely across
    threads and ciphertexts (see :func:`get_ntt_context`).
    """

    ring_degree: int
    modulus: int
    _psi_powers: np.ndarray = field(init=False, repr=False)
    _psi_inv_powers: np.ndarray = field(init=False, repr=False)
    _omega_stages: list[np.ndarray] = field(init=False, repr=False)
    _omega_inv_stages: list[np.ndarray] = field(init=False, repr=False)
    _n_inv: int = field(init=False, repr=False)
    _bitrev: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.ring_degree
        q = self.modulus
        if n < 2 or n & (n - 1) != 0:
            raise ParameterError(f"ring degree must be a power of two, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(
                f"modulus {q} is not congruent to 1 mod 2*{n}; NTT unavailable"
            )
        if not is_prime(q):
            raise ParameterError(f"modulus {q} must be prime for the NTT backend")
        g = primitive_root(q)
        psi = pow(g, (q - 1) // (2 * n), q)
        psi_inv = pow(psi, q - 2, q)
        omega = psi * psi % q
        omega_inv = pow(omega, q - 2, q)

        self._psi_powers = _mod_powers(psi, n, q)
        self._psi_inv_powers = _mod_powers(psi_inv, n, q)
        self._n_inv = pow(n, q - 2, q)
        self._bitrev = _bit_reverse_indices(n)
        self._omega_stages = self._twiddle_stages(omega)
        self._omega_inv_stages = self._twiddle_stages(omega_inv)

    def _twiddle_stages(self, root: int) -> list[np.ndarray]:
        """Precompute per-stage twiddle factors for the iterative NTT.

        The stage for butterfly ``length`` needs ``(root**(n/length))**i`` for
        ``i < length/2``, which is every ``n/length``-th entry of the full
        power table — one table build serves all ``log N`` stages.
        """
        n = self.ring_degree
        powers = _mod_powers(root, n, self.modulus)
        stages = []
        length = 2
        while length <= n:
            step = n // length
            stages.append(powers[::step][: length // 2].copy())
            length *= 2
        return stages

    # -- core transforms ---------------------------------------------------
    def _transform(self, coeffs: np.ndarray, stages: list[np.ndarray]) -> np.ndarray:
        """Iterative Cooley-Tukey over the last axis of a ``(batch, N)`` array.

        Each butterfly stage is one vectorized slice update across the whole
        batch; no Python loop runs per butterfly or per polynomial.
        """
        n = self.ring_degree
        q = self.modulus
        a = coeffs[..., self._bitrev]
        batch = a.shape[0]
        length = 2
        for tw in stages:
            half = length // 2
            blocks = a.reshape(batch, -1, length)
            lo = blocks[..., :half]
            t = blocks[..., half:] * tw % q
            out = np.empty_like(blocks)
            out[..., :half] = (lo + t) % q
            out[..., half:] = (lo - t) % q
            a = out.reshape(batch, n)
            length *= 2
        return a

    # -- single-polynomial API ---------------------------------------------
    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT of a coefficient vector."""
        return self.forward_batch(np.asarray(coeffs, dtype=np.int64)[None, :])[0]

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT back to coefficients."""
        return self.inverse_batch(np.asarray(values, dtype=np.int64)[None, :])[0]

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two coefficient vectors mod ``q``."""
        both = self.forward_batch(np.stack([np.asarray(a), np.asarray(b)]))
        return self.inverse(both[0] * both[1] % self.modulus)

    # -- batched API --------------------------------------------------------
    def _as_batch(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.ndim != 2 or coeffs.shape[1] != self.ring_degree:
            raise ParameterError(
                f"batched NTT expects shape (batch, {self.ring_degree}), "
                f"got {coeffs.shape}"
            )
        return coeffs

    def forward_batch(self, coeffs: np.ndarray) -> np.ndarray:
        """Forward NTT of every row of a ``(batch, N)`` coefficient array."""
        q = self.modulus
        twisted = (self._as_batch(coeffs) % q) * self._psi_powers % q
        return self._transform(twisted, self._omega_stages)

    def inverse_batch(self, values: np.ndarray) -> np.ndarray:
        """Inverse NTT of every row of a ``(batch, N)`` value array."""
        q = self.modulus
        a = self._transform(self._as_batch(values) % q, self._omega_inv_stages)
        a = a * self._n_inv % q
        return a * self._psi_inv_powers % q

    def multiply_batch(self, coeffs: np.ndarray, other: np.ndarray) -> np.ndarray:
        """Negacyclic product of every row of ``coeffs`` with the vector ``other``.

        One forward transform of the batch, one of ``other``, and one inverse
        of the batch — the broadcast form used by batched encryption, where
        many random polynomials multiply the same public-key component.
        """
        fa = self.forward_batch(coeffs)
        fb = self.forward(other)
        return self.inverse_batch(fa * fb % self.modulus)


@lru_cache(maxsize=None)
def get_ntt_context(ring_degree: int, modulus: int) -> NTTContext:
    """Shared :class:`NTTContext` per ``(N, q)``.

    Table construction costs a primitive-root search plus ``O(N)`` modular
    powers, so every ring, ciphertext context and serving engine with the
    same parameters reuses one cached instance.
    """
    return NTTContext(ring_degree=ring_degree, modulus=modulus)


def batch_ntt(
    coeffs: np.ndarray, ring_degree: int, modulus: int, *, inverse: bool = False
) -> np.ndarray:
    """Transform a ``(batch, N)`` array of polynomials in one call.

    Entry point for callers that do not hold a context object (the cached
    context per ``(N, q)`` is looked up internally).
    """
    ctx = get_ntt_context(ring_degree, modulus)
    if inverse:
        return ctx.inverse_batch(coeffs)
    return ctx.forward_batch(coeffs)
