"""The FHGS protocol: ciphertext-ciphertext products for attention (Fig. 5),
and its combined variant CHGS (Fig. 3(d) / Section III-C).

Attention needs ``X_Q @ X_K^T`` and ``A @ X_V`` — products of two *secret*
matrices.  Additive HE alone cannot offload these, which is why the paper
extends HGS with a Beaver-triple-style protocol:

* **offline** — the client samples random masks ``Rc`` for both operands and
  sends their encryptions (column- and row-packed: the paper's ``Enc(Rc)``
  and ``Enc(Rc^T)``).  The products involving only masks are prepared before
  the input arrives (for the weighted/combined variants this takes a short
  interactive sub-protocol, still entirely offline).
* **online** — the server holds the blinded operands in plaintext, computes
  ``tmp1`` locally, corrects it with the encrypted cross terms, masks with a
  fresh ``Rs`` and returns one ciphertext batch.  Decryption gives the client
  its additive share of the product.

Three product forms are supported, selected by the constructor:

==================  =======================  ==========================
mode                computes                 used for
==================  =======================  ==========================
plain               ``L @ R^T`` or ``L @ R``  Q@K^T, A@V (Primer-F)
middle_weights M    ``L @ M @ L'^T``          combined QKV+Q@K^T (CHGS)
right_weights W     ``L @ (R @ W)``           combined V-projection+A@V
==================  =======================  ==========================

In the weighted modes the server's weight matrices are folded into the
product so the separate HGS projections disappear — that is exactly the
"computation merge" of Primer-FPC, and it is what collapses four
interactions into one.

Implementation note on packing: to add the two encrypted cross terms the
paper relies on packing rotations.  We instead mask each cross term with an
independent half of ``Rs`` and let the client add the two decryptions; the
message count, the privacy argument (everything the client sees is masked by
uniform randomness) and the offline/online split are unchanged, and the slot
re-arrangements that *are* required (for the weighted value product) go
through :func:`repro.he.matmul.repack_columns_to_rows`, which charges its
rotations to the tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ProtocolError, ShapeError
from ..fixedpoint.encoding import FixedPointFormat
from ..he.backend import HEBackend
from ..he.matmul import (
    PackedMatrix,
    enc_times_plain,
    encrypt_matrix_columns,
    encrypt_matrix_rows,
    plain_times_enc,
    repack_columns_to_rows,
)
from ..mpc.sharing import AdditiveSharing, SharedValue
from .channel import Channel, Phase
from .formats import PROTOCOL_FORMAT
from .plan import FHGSPlan

__all__ = ["FHGSMatmul"]


@dataclass
class FHGSMatmul:
    """Private product of two shared matrices with optional weight folding."""

    left_shape: tuple[int, int]
    right_shape: tuple[int, int]
    backend: HEBackend
    sharing: AdditiveSharing
    channel: Channel
    step: str
    transpose_right: bool = True
    #: server-held middle weights M: computes L @ M @ R^T (CHGS scores).
    middle_weights: np.ndarray | None = None
    #: server-held right weights W: computes L @ (R @ W) (combined A @ X @ W_V).
    right_weights: np.ndarray | None = None
    fmt: FixedPointFormat = PROTOCOL_FORMAT
    seed: int | None = None

    # installed offline artifact (see protocols/plan.py)
    _plan: FHGSPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.middle_weights is not None and self.right_weights is not None:
            raise ProtocolError("middle_weights and right_weights are mutually exclusive")
        if self.middle_weights is not None:
            self.middle_weights = np.asarray(self.middle_weights, dtype=np.int64)
            if not self.transpose_right:
                raise ProtocolError("middle_weights requires transpose_right=True")
            if self.middle_weights.shape != (self.left_shape[1], self.right_shape[1]):
                raise ShapeError(
                    f"middle weights shape {self.middle_weights.shape} incompatible "
                    f"with operands {self.left_shape}, {self.right_shape}"
                )
        elif self.right_weights is not None:
            self.right_weights = np.asarray(self.right_weights, dtype=np.int64)
            if self.transpose_right:
                raise ProtocolError("right_weights requires transpose_right=False")
            if self.right_weights.shape[0] != self.right_shape[1]:
                raise ShapeError(
                    f"right weights shape {self.right_weights.shape} incompatible "
                    f"with right operand {self.right_shape}"
                )
            if self.left_shape[1] != self.right_shape[0]:
                raise ShapeError(
                    f"cannot form L @ R with shapes {self.left_shape}, {self.right_shape}"
                )
        else:
            inner_left = self.left_shape[1]
            inner_right = self.right_shape[1] if self.transpose_right else self.right_shape[0]
            if inner_left != inner_right:
                raise ShapeError(
                    f"cannot multiply shapes {self.left_shape} and {self.right_shape} "
                    f"(transpose_right={self.transpose_right})"
                )
        self._rng = np.random.default_rng(self.seed)

    @property
    def output_shape(self) -> tuple[int, int]:
        if self.right_weights is not None:
            return (self.left_shape[0], self.right_weights.shape[1])
        if self.transpose_right:
            return (self.left_shape[0], self.right_shape[0])
        return (self.left_shape[0], self.right_shape[1])

    # -- offline phase ---------------------------------------------------------
    def prepare(self, *, phase: Phase = Phase.OFFLINE) -> FHGSPlan:
        """Exchange encrypted masks and return the offline artifact.

        The returned :class:`FHGSPlan` is not adopted — pass it to
        :meth:`install`, or call :meth:`offline` which composes the two.
        """
        modulus = self.sharing.modulus
        left_mask = self._rng.integers(0, modulus, size=self.left_shape, dtype=np.int64)
        right_mask = self._rng.integers(0, modulus, size=self.right_shape, dtype=np.int64)

        enc_left_cols = encrypt_matrix_columns(self.backend, left_mask)
        right_for_rows = right_mask.T if self.transpose_right else right_mask
        enc_right_rows = encrypt_matrix_rows(self.backend, right_for_rows)
        enc_right_cols = encrypt_matrix_columns(self.backend, right_mask)
        total_cts = (
            len(enc_left_cols.handles)
            + len(enc_right_rows.handles)
            + len(enc_right_cols.handles)
        )
        self.channel.send(
            "client", "server", total_cts * self.backend.ciphertext_bytes,
            description="Enc(Rc), Enc(Rc^T)", step=self.step, phase=phase,
        )

        enc_weighted_right_rows: PackedMatrix | None = None
        if self.middle_weights is not None:
            quad_client, quad_server = self._prepare_quadratic_middle(
                left_mask, right_mask, enc_left_cols, enc_right_rows, phase
            )
        elif self.right_weights is not None:
            quad_client, quad_server, enc_weighted_right_rows = (
                self._prepare_quadratic_right(left_mask, enc_left_cols, enc_right_cols, phase)
            )
        else:
            # Both masks are the client's own randomness, so the client
            # computes the mask product locally (the Enc(Rc^T x Rc) term).
            if self.transpose_right:
                quad_client = np.mod(left_mask @ right_mask.T, modulus)
            else:
                quad_client = np.mod(left_mask @ right_mask, modulus)
            quad_server = np.zeros_like(quad_client)

        return FHGSPlan(
            left_mask=left_mask,
            right_mask=right_mask,
            enc_left_cols=enc_left_cols,
            enc_right_rows=enc_right_rows,
            quad_client=quad_client,
            quad_server=quad_server,
            enc_weighted_right_rows=enc_weighted_right_rows,
        )

    def install(self, plan: FHGSPlan) -> None:
        """Adopt a prepared offline artifact; ``online()`` may run after this."""
        if not isinstance(plan, FHGSPlan):
            raise ProtocolError(
                f"FHGS '{self.step}' cannot install a {type(plan).__name__}"
            )
        if plan.operand_shapes != (self.left_shape, self.right_shape):
            raise ShapeError(
                f"plan operand shapes {plan.operand_shapes} do not match "
                f"module shapes {self.left_shape}/{self.right_shape}"
            )
        if self.right_weights is not None and plan.enc_weighted_right_rows is None:
            raise ProtocolError(
                f"FHGS '{self.step}' needs a right-weighted plan "
                "(enc_weighted_right_rows missing)"
            )
        self._plan = plan

    def offline(self, *, phase: Phase = Phase.OFFLINE) -> None:
        """Prepare and immediately install the offline artifact."""
        self.install(self.prepare(phase=phase))

    @property
    def plan(self) -> FHGSPlan:
        """The installed offline artifact."""
        if self._plan is None:
            raise ProtocolError("offline phase has not been run")
        return self._plan

    def _prepare_quadratic_middle(
        self,
        left_mask: np.ndarray,
        right_mask: np.ndarray,
        enc_left_cols: PackedMatrix,
        enc_right_rows: PackedMatrix,
        phase: Phase,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Offline sharing of ``RcL @ M @ RcR^T`` when M is server-held."""
        modulus = self.sharing.modulus
        n_left = self.left_shape[0]
        n_right = self.right_shape[0]
        dim = self.middle_weights.shape[1]

        # Server: Enc(RcL @ M) - S, sent to the client.
        enc_left_m = enc_times_plain(self.backend, enc_left_cols, self.middle_weights)
        blinding = self._rng.integers(0, modulus, size=(n_left, dim), dtype=np.int64)
        masked = [
            self.backend.add_plain(handle, np.mod(-blinding[:, j], modulus))
            for j, handle in enumerate(enc_left_m.handles)
        ]
        self.channel.send(
            "server", "client", len(masked) * self.backend.ciphertext_bytes,
            description="Enc(RcL @ M - S)", step=self.step, phase=phase,
        )
        decrypted = np.zeros((n_left, dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked)):
            decrypted[:, j] = values[:n_left]

        # Client part: (RcL @ M - S) @ RcR^T.
        client_part = np.mod(decrypted @ right_mask.T, modulus)

        # The leftover S @ RcR^T is linear in the encrypted mask, so the
        # server computes it homomorphically and the parties share it.
        enc_leftover = plain_times_enc(self.backend, blinding, enc_right_rows)
        leftover_mask = self._rng.integers(0, modulus, size=(n_left, n_right), dtype=np.int64)
        masked_leftover = [
            self.backend.add_plain(handle, np.mod(-leftover_mask[i, :], modulus))
            for i, handle in enumerate(enc_leftover.handles)
        ]
        self.channel.send(
            "server", "client", len(masked_leftover) * self.backend.ciphertext_bytes,
            description="Enc(S @ RcR^T - S2)", step=self.step, phase=phase,
        )
        leftover = np.zeros((n_left, n_right), dtype=np.int64)
        for i, values in enumerate(self.backend.decrypt_batch(masked_leftover)):
            leftover[i, :] = values[:n_right]

        return np.mod(client_part + leftover, modulus), leftover_mask

    def _prepare_quadratic_right(
        self,
        left_mask: np.ndarray,
        enc_left_cols: PackedMatrix,
        enc_right_cols: PackedMatrix,
        phase: Phase,
    ) -> tuple[np.ndarray, np.ndarray, PackedMatrix]:
        """Offline sharing of ``RcL @ (RcR @ W)`` when W is server-held.

        Also prepares the row-packed ``Enc(RcR @ W)`` needed by the online
        cross term, including the slot repacking rotations.
        """
        modulus = self.sharing.modulus
        n_left = self.left_shape[0]
        out_dim = self.right_weights.shape[1]
        inner = self.right_shape[0]

        # Server: Enc(RcR @ W), column-packed, then repacked row-wise for the
        # online plain x enc product (this is where the rotations go).
        enc_right_w_cols = enc_times_plain(self.backend, enc_right_cols, self.right_weights)
        enc_weighted_right_rows = repack_columns_to_rows(self.backend, enc_right_w_cols)

        # Server: Enc(RcR @ W) - S to the client.
        blinding = self._rng.integers(0, modulus, size=(inner, out_dim), dtype=np.int64)
        masked = [
            self.backend.add_plain(handle, np.mod(-blinding[:, j], modulus))
            for j, handle in enumerate(enc_right_w_cols.handles)
        ]
        self.channel.send(
            "server", "client", len(masked) * self.backend.ciphertext_bytes,
            description="Enc(RcR @ W - S)", step=self.step, phase=phase,
        )
        decrypted = np.zeros((inner, out_dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked)):
            decrypted[:, j] = values[:inner]

        client_part = np.mod(left_mask @ decrypted, modulus)

        # Leftover RcL @ S: server-plaintext times encrypted mask.
        enc_leftover = enc_times_plain(self.backend, enc_left_cols, blinding)
        leftover_mask = self._rng.integers(0, modulus, size=(n_left, out_dim), dtype=np.int64)
        masked_leftover = [
            self.backend.add_plain(handle, np.mod(-leftover_mask[:, j], modulus))
            for j, handle in enumerate(enc_leftover.handles)
        ]
        self.channel.send(
            "server", "client", len(masked_leftover) * self.backend.ciphertext_bytes,
            description="Enc(RcL @ S - S2)", step=self.step, phase=phase,
        )
        leftover = np.zeros((n_left, out_dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked_leftover)):
            leftover[:, j] = values[:n_left]

        return np.mod(client_part + leftover, modulus), leftover_mask, enc_weighted_right_rows

    @property
    def left_mask(self) -> np.ndarray:
        return self.plan.left_mask

    @property
    def right_mask(self) -> np.ndarray:
        return self.plan.right_mask

    # -- online phase ---------------------------------------------------------
    def online(self, shared_left: SharedValue, shared_right: SharedValue) -> SharedValue:
        """Compute shares of the product from shares of the two operands."""
        if self._plan is None:
            raise ProtocolError(f"FHGS '{self.step}' used online before offline")
        plan = self._plan
        if shared_left.shape != self.left_shape or shared_right.shape != self.right_shape:
            raise ShapeError(
                f"operand shapes {shared_left.shape}/{shared_right.shape} do not "
                f"match offline shapes {self.left_shape}/{self.right_shape}"
            )
        modulus = self.sharing.modulus
        element_bytes = (self.fmt.total_bits + 7) // 8

        # Client -> server: corrections so the server holds L - RcL and R - RcR.
        left_corr = np.mod(shared_left.client_share - plan.left_mask, modulus)
        right_corr = np.mod(shared_right.client_share - plan.right_mask, modulus)
        correction_bytes = 0
        if np.any(left_corr):
            correction_bytes += int(left_corr.size) * element_bytes
        if np.any(right_corr):
            correction_bytes += int(right_corr.size) * element_bytes
        if correction_bytes:
            self.channel.send(
                "client", "server", correction_bytes,
                description="blinded-operand corrections", step=self.step,
                phase=Phase.ONLINE,
            )
        left_blinded = np.mod(shared_left.server_share + left_corr, modulus)
        right_blinded = np.mod(shared_right.server_share + right_corr, modulus)

        if self.middle_weights is not None:
            return self._online_middle(left_blinded, right_blinded)
        if self.right_weights is not None:
            return self._online_right_weighted(left_blinded, right_blinded)
        return self._online_plain(left_blinded, right_blinded)

    # -- online variants ---------------------------------------------------------
    def _finish(
        self,
        tmp1: np.ndarray,
        cross_a: PackedMatrix,
        cross_b: PackedMatrix,
    ) -> SharedValue:
        """Mask the cross terms, ship them, and assemble the output sharing."""
        modulus = self.sharing.modulus
        out_rows, out_cols = tmp1.shape
        mask_a = self._rng.integers(0, modulus, size=(out_rows, out_cols), dtype=np.int64)
        mask_b = self._rng.integers(0, modulus, size=(out_rows, out_cols), dtype=np.int64)

        masked_a = [
            self.backend.add_plain(handle, np.mod(-mask_a[i, :], modulus))
            for i, handle in enumerate(cross_a.handles)
        ]
        masked_b = [
            self.backend.add_plain(handle, np.mod(-mask_b[:, j], modulus))
            for j, handle in enumerate(cross_b.handles)
        ]
        num_cts = len(masked_a) + len(masked_b)
        self.channel.send(
            "server", "client", num_cts * self.backend.ciphertext_bytes,
            description="Enc(cross terms - Rs)", step=self.step, phase=Phase.ONLINE,
        )

        dec_a = np.zeros((out_rows, out_cols), dtype=np.int64)
        for i, values in enumerate(self.backend.decrypt_batch(masked_a)):
            dec_a[i, :] = values[:out_cols]
        dec_b = np.zeros((out_rows, out_cols), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked_b)):
            dec_b[:, j] = values[:out_rows]

        plan = self.plan
        client_share = np.mod(dec_a + dec_b + plan.quad_client, modulus)
        server_share = np.mod(tmp1 + mask_a + mask_b + plan.quad_server, modulus)
        return SharedValue(client_share=client_share, server_share=server_share, modulus=modulus)

    def _online_plain(self, left_blinded: np.ndarray, right_blinded: np.ndarray) -> SharedValue:
        modulus = self.sharing.modulus
        right_blinded_t = right_blinded.T if self.transpose_right else right_blinded
        tmp1 = np.mod(left_blinded @ right_blinded_t, modulus)
        # cross_a = Lb @ RcR^T, cross_b = RcL @ Rb^T
        cross_a = plain_times_enc(self.backend, left_blinded, self.plan.enc_right_rows)
        cross_b = enc_times_plain(self.backend, self.plan.enc_left_cols, right_blinded_t)
        return self._finish(tmp1, cross_a, cross_b)

    def _online_middle(self, left_blinded: np.ndarray, right_blinded: np.ndarray) -> SharedValue:
        modulus = self.sharing.modulus
        weights = self.middle_weights
        left_m = np.mod(left_blinded @ weights, modulus)
        tmp1 = np.mod(left_m @ right_blinded.T, modulus)
        # cross_a = (Lb @ M) @ RcR^T, cross_b = RcL @ (M @ Rb^T)
        cross_a = plain_times_enc(self.backend, left_m, self.plan.enc_right_rows)
        cross_b = enc_times_plain(
            self.backend, self.plan.enc_left_cols, np.mod(weights @ right_blinded.T, modulus)
        )
        return self._finish(tmp1, cross_a, cross_b)

    def _online_right_weighted(
        self, left_blinded: np.ndarray, right_blinded: np.ndarray
    ) -> SharedValue:
        modulus = self.sharing.modulus
        weights = self.right_weights
        right_weighted = np.mod(right_blinded @ weights, modulus)
        tmp1 = np.mod(left_blinded @ right_weighted, modulus)
        # cross_a = Lb @ (RcR @ W), cross_b = RcL @ (Rb @ W)
        cross_a = plain_times_enc(self.backend, left_blinded, self.plan.enc_weighted_right_rows)
        cross_b = enc_times_plain(self.backend, self.plan.enc_left_cols, right_weighted)
        return self._finish(tmp1, cross_a, cross_b)
