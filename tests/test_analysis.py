"""Tests for the project-invariant static checker (``repro.analysis``).

Each rule gets at least one true-positive fixture and one clean fixture,
exercised through the public ``analyze(paths, root=...)`` entry point on
throwaway trees, so the tests pin the *observable* contract (findings,
suppressions, baselines, exit codes) rather than rule internals.

The acceptance demos at the bottom mutate copies of the real
``runtime/scheduler.py`` and ``he/ntt.py`` -- deleting a ``with
self._lock`` / adding an eager ``%`` to the stage loop -- and assert the
CLI exits non-zero, which is the regression the checker exists to catch.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, ParsedModule, analyze
from repro.analysis.__main__ import main as cli_main
from repro.analysis.core import REPO_ROOT, UNUSED_SUPPRESSION_RULE
from repro.analysis.rules.charges import ChargePairingRule
from repro.analysis.rules.domains import DomainDisciplineRule
from repro.analysis.rules.faultsites import FaultSiteRegistryRule
from repro.analysis.rules.forksafety import ForkSafetyRule
from repro.analysis.rules.framing import FramingRule
from repro.analysis.rules.limbshape import LimbShapeRule
from repro.analysis.rules.locks import GuardedFieldRule
from repro.analysis.rules.rng import RngHygieneRule


def make_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def run_rule(rule, root: Path):
    result = analyze([root], rules=[rule], root=root)
    return result.active


# ---------------------------------------------------------------------------
# RL001 -- guarded-field access
# ---------------------------------------------------------------------------

RL001_BAD = '''\
import threading

class Scheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []  # guarded_by: _lock

    def submit(self, item):
        self._queue.append(item)  # off-lock mutation
'''

RL001_GOOD = '''\
import threading

class Scheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue = []  # guarded_by: _lock

    def submit(self, item):
        with self._lock:
            self._queue.append(item)

    def drain(self):
        with self._wakeup:  # Condition alias acquires _lock
            return list(self._queue)

    def _pop_locked(self):
        return self._queue.pop()  # caller-holds-lock helper
'''


class TestGuardedFieldRule:
    def test_off_lock_access_flagged(self, tmp_path):
        make_tree(tmp_path, {"runtime/scheduler.py": RL001_BAD})
        findings = run_rule(GuardedFieldRule(), tmp_path)
        assert [f.rule_id for f in findings] == ["RL001"]
        assert "_queue" in findings[0].message
        assert findings[0].path == "runtime/scheduler.py"

    def test_with_lock_condition_alias_and_locked_suffix_clean(self, tmp_path):
        make_tree(tmp_path, {"runtime/scheduler.py": RL001_GOOD})
        assert run_rule(GuardedFieldRule(), tmp_path) == []

    def test_out_of_scope_files_ignored(self, tmp_path):
        make_tree(tmp_path, {"he/whatever.py": RL001_BAD})
        assert run_rule(GuardedFieldRule(), tmp_path) == []


# ---------------------------------------------------------------------------
# RL002 -- domain discipline
# ---------------------------------------------------------------------------

RL002_BAD_STAGE = '''\
def transform(a, stages, q):
    for tw, tw_shoup in stages:
        a = (a * tw) % q  # eager per-stage reduction
    return a
'''

RL002_GOOD_STAGE = '''\
def transform(a, stages, q, n):
    for tw, tw_shoup in stages:
        a = a * tw
    for i in range(n):  # the single legal final reduction
        a[i] = a[i] % q
    return a
'''

RL002_BAD_COMBINE = '''\
def add(lhs, rhs):
    return lhs.c0 + rhs.c0, lhs.c1 + rhs.c1
'''

RL002_GOOD_COMBINE = '''\
def add(lhs, rhs):
    lhs, rhs = _aligned_binary(lhs, rhs)
    return lhs.c0 + rhs.c0, lhs.c1 + rhs.c1
'''


class TestDomainDisciplineRule:
    def test_mod_inside_stage_loop_flagged(self, tmp_path):
        make_tree(tmp_path, {"he/ntt.py": RL002_BAD_STAGE})
        findings = run_rule(DomainDisciplineRule(), tmp_path)
        assert len(findings) == 1
        assert "stage loop" in findings[0].message

    def test_final_reduction_after_loop_clean(self, tmp_path):
        make_tree(tmp_path, {"he/ntt.py": RL002_GOOD_STAGE})
        assert run_rule(DomainDisciplineRule(), tmp_path) == []

    def test_unaligned_combining_flagged(self, tmp_path):
        make_tree(tmp_path, {"he/bfv.py": RL002_BAD_COMBINE})
        findings = run_rule(DomainDisciplineRule(), tmp_path)
        assert len(findings) == 1
        assert "domain-aligning" in findings[0].message

    def test_aligned_combining_clean(self, tmp_path):
        make_tree(tmp_path, {"he/bfv.py": RL002_GOOD_COMBINE})
        assert run_rule(DomainDisciplineRule(), tmp_path) == []

    def test_non_he_modules_ignored(self, tmp_path):
        make_tree(tmp_path, {"runtime/x.py": RL002_BAD_STAGE})
        assert run_rule(DomainDisciplineRule(), tmp_path) == []


# ---------------------------------------------------------------------------
# RL003 -- charge pairing
# ---------------------------------------------------------------------------

RL003_BAD = '''\
def multiply(self, ct, plain):
    values = self.ring.mul_batch(ct.values, plain)
    return values
'''

RL003_GOOD = '''\
def multiply(self, ct, plain):
    values = self.ring.mul_batch(ct.values, plain)
    self.tracker.record_transforms(3 * self.limb_count)
    return values
'''


class TestChargePairingRule:
    def test_uncharged_transform_flagged(self, tmp_path):
        make_tree(tmp_path, {"he/bfv.py": RL003_BAD})
        findings = run_rule(ChargePairingRule(), tmp_path)
        assert len(findings) == 1
        assert "mul_batch" in findings[0].message

    def test_charged_transform_clean(self, tmp_path):
        make_tree(tmp_path, {"he/simulated.py": RL003_GOOD})
        assert run_rule(ChargePairingRule(), tmp_path) == []

    def test_ring_layer_out_of_scope(self, tmp_path):
        # ntt.py/rns.py are deliberately charge-free.
        make_tree(tmp_path, {"he/ntt.py": RL003_BAD})
        assert run_rule(ChargePairingRule(), tmp_path) == []


# ---------------------------------------------------------------------------
# RL004 -- RNG hygiene
# ---------------------------------------------------------------------------

RL004_BAD = '''\
import random
import numpy as np

np.random.seed(0)

def sample():
    rng = np.random.default_rng()
    return random.random() + np.random.rand(4).sum() + rng.random()
'''

RL004_GOOD = '''\
import numpy as np

def sample(rng: np.random.Generator):
    return rng.random()

def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
'''


class TestRngHygieneRule:
    def test_global_rng_flagged(self, tmp_path):
        make_tree(tmp_path, {"benchmarks/bench_x.py": RL004_BAD})
        findings = run_rule(RngHygieneRule(), tmp_path)
        messages = " | ".join(f.message for f in findings)
        assert "stdlib 'random'" in messages
        assert "np.random.seed" in messages
        assert "np.random.rand" in messages
        assert "unseeded" in messages

    def test_seeded_generator_clean(self, tmp_path):
        make_tree(tmp_path, {"benchmarks/bench_x.py": RL004_GOOD})
        assert run_rule(RngHygieneRule(), tmp_path) == []

    def test_tests_exempt(self, tmp_path):
        make_tree(tmp_path, {"tests/test_x.py": RL004_BAD})
        assert run_rule(RngHygieneRule(), tmp_path) == []


# ---------------------------------------------------------------------------
# RL005 -- fault-site registry
# ---------------------------------------------------------------------------

RL005_FAULTS = '''\
SITE_KERNEL = "kernel_dispatch"
SITE_STORE = "planstore_store"
'''

RL005_BAD = '''\
def dispatch(injector):
    injector.maybe_inject("kernel_dispach")  # typo'd site
'''

RL005_GOOD = '''\
MY_SITE = "planstore_store"

def dispatch(injector):
    injector.maybe_inject("kernel_dispatch")
    injector.maybe_inject(MY_SITE)
'''


class TestFaultSiteRegistryRule:
    def test_unregistered_site_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "runtime/faults.py": RL005_FAULTS,
            "runtime/worker.py": RL005_BAD,
        })
        findings = run_rule(FaultSiteRegistryRule(), tmp_path)
        assert len(findings) == 1
        assert "kernel_dispach" in findings[0].message

    def test_registered_literal_and_constant_clean(self, tmp_path):
        make_tree(tmp_path, {
            "runtime/faults.py": RL005_FAULTS,
            "runtime/worker.py": RL005_GOOD,
        })
        assert run_rule(FaultSiteRegistryRule(), tmp_path) == []

    def test_real_registry_resolves(self):
        """Every hook call in the live tree names a registered site."""
        rule = FaultSiteRegistryRule()
        result = analyze(rules=[rule])
        assert rule._sites, "SITE_* constants must resolve from runtime/faults.py"
        assert result.active == []

    def test_network_sites_registered(self):
        """The fleet PR's four network fault sites resolve from the registry."""
        rule = FaultSiteRegistryRule()
        analyze(rules=[rule])
        assert {
            "conn_send",
            "conn_recv",
            "replica_heartbeat",
            "replica_crash",
        } <= (rule._sites or set())


# ---------------------------------------------------------------------------
# RL008 -- socket framing
# ---------------------------------------------------------------------------

RL008_BAD = '''\
import socket

def read_message(sock):
    chunks = []
    remaining = 128
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
'''

RL008_GOOD = '''\
from repro.runtime.net import recv_exactly, recv_frame

def read_message(sock):
    return recv_exactly(sock, 128)

def read_port(channel):
    return channel.recv()  # one-shot pipe handoff: not a framing loop
'''

RL008_NET_EXEMPT = '''\
def recv_exactly(sock, n):
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
'''


class TestFramingRule:
    def test_bare_recv_loop_flagged(self, tmp_path):
        make_tree(tmp_path, {"runtime/client.py": RL008_BAD})
        findings = run_rule(FramingRule(), tmp_path)
        assert len(findings) == 1
        assert "framing helper" in findings[0].message

    def test_helper_usage_and_oneshot_recv_clean(self, tmp_path):
        make_tree(tmp_path, {"runtime/client.py": RL008_GOOD})
        assert run_rule(FramingRule(), tmp_path) == []

    def test_net_module_itself_exempt(self, tmp_path):
        make_tree(tmp_path, {"runtime/net.py": RL008_NET_EXEMPT})
        assert run_rule(FramingRule(), tmp_path) == []

    def test_live_tree_clean(self):
        """No hand-rolled recv loop anywhere outside runtime/net.py."""
        result = analyze(rules=[FramingRule()])
        assert result.active == []


# ---------------------------------------------------------------------------
# RL006 -- fork safety
# ---------------------------------------------------------------------------

RL006_BAD_IMPORT_TIME = '''\
from concurrent.futures import ThreadPoolExecutor

POOL = ThreadPoolExecutor(max_workers=4)
'''

RL006_BAD_LAZY = '''\
from concurrent.futures import ThreadPoolExecutor

_pool = None

def worker_pool():
    global _pool
    if _pool is None:
        _pool = ThreadPoolExecutor(max_workers=4)
    return _pool
'''

RL006_GOOD = '''\
import os
import threading
from concurrent.futures import ThreadPoolExecutor

_pool = None
_pool_pid = None
_pool_guard = threading.Lock()  # import-time module lock: allowed

def worker_pool():
    global _pool, _pool_pid
    with _pool_guard:
        if _pool is None or _pool_pid != os.getpid():
            _pool = ThreadPoolExecutor(max_workers=4)
            _pool_pid = os.getpid()
        return _pool
'''


class TestForkSafetyRule:
    def test_import_time_pool_flagged(self, tmp_path):
        make_tree(tmp_path, {"repro/pool.py": RL006_BAD_IMPORT_TIME})
        findings = run_rule(ForkSafetyRule(), tmp_path)
        assert len(findings) == 1
        assert "import time" in findings[0].message

    def test_lazy_global_without_pid_key_flagged(self, tmp_path):
        make_tree(tmp_path, {"repro/pool.py": RL006_BAD_LAZY})
        findings = run_rule(ForkSafetyRule(), tmp_path)
        assert len(findings) == 1
        assert "without pid-keying" in findings[0].message

    def test_pid_keyed_idiom_clean(self, tmp_path):
        make_tree(tmp_path, {"repro/pool.py": RL006_GOOD})
        assert run_rule(ForkSafetyRule(), tmp_path) == []


# ---------------------------------------------------------------------------
# RL007 -- limb-shape discipline
# ---------------------------------------------------------------------------

RL007_BAD = '''\
def lift(values, q):
    """Reduce limb residues.

    Parameters: values is an ``(L, N)`` residue array.
    """
    return values[0] % q  # grabs limb 0: wrong for every multi-limb basis
'''

RL007_GOOD = '''\
def lift(values, q_col):
    """Reduce limb residues.

    Parameters: values is an ``(L, N)`` residue array.
    """
    return (values * q_col).sum(axis=0)
'''


class TestLimbShapeRule:
    def test_literal_axis0_on_limb_major_param_flagged(self, tmp_path):
        make_tree(tmp_path, {"he/bfv.py": RL007_BAD})
        findings = run_rule(LimbShapeRule(), tmp_path)
        assert len(findings) == 1
        assert "axis 0" in findings[0].message

    def test_broadcasting_clean(self, tmp_path):
        make_tree(tmp_path, {"he/bfv.py": RL007_GOOD})
        assert run_rule(LimbShapeRule(), tmp_path) == []

    def test_rns_module_exempt(self, tmp_path):
        make_tree(tmp_path, {"he/rns.py": RL007_BAD})
        assert run_rule(LimbShapeRule(), tmp_path) == []


# ---------------------------------------------------------------------------
# Suppressions and the RL000 meta-rule
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_silences_and_is_counted(self, tmp_path):
        source = RL004_BAD.replace(
            "np.random.seed(0)",
            "np.random.seed(0)  # repro-lint: disable=RL004(fixture keeps legacy seeding)",
        )
        make_tree(tmp_path, {"benchmarks/bench_x.py": source})
        result = analyze([tmp_path], rules=[RngHygieneRule()], root=tmp_path)
        assert result.suppression_count == 1
        suppressed = result.suppressed[0]
        assert suppressed.rule_id == "RL004"
        assert suppressed.suppression_reason == "fixture keeps legacy seeding"
        # the other three RL004 findings stay active
        assert len(result.active) == 3

    def test_unused_suppression_is_an_rl000_finding(self, tmp_path):
        make_tree(tmp_path, {
            "benchmarks/bench_x.py": (
                "X = 1  # repro-lint: disable=RL004(nothing to silence)\n"
            ),
        })
        result = analyze([tmp_path], rules=[RngHygieneRule()], root=tmp_path)
        assert [f.rule_id for f in result.active] == [UNUSED_SUPPRESSION_RULE]
        assert "silences nothing" in result.active[0].message

    def test_suppression_example_in_docstring_is_inert(self, tmp_path):
        # only real COMMENT tokens suppress; prose mentioning the syntax must not.
        make_tree(tmp_path, {
            "benchmarks/bench_x.py": (
                '"""Use `x  # repro-lint: disable=RL004(reason)` to suppress."""\n'
            ),
        })
        result = analyze([tmp_path], rules=[RngHygieneRule()], root=tmp_path)
        assert result.active == []
        assert result.suppression_count == 0


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_and_no_new_findings(self, tmp_path):
        tree = make_tree(tmp_path / "tree", {"he/ntt.py": RL002_BAD_STAGE})
        result = analyze([tree], rules=[DomainDisciplineRule()], root=tree)
        assert len(result.active) == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_result(result).dump(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert loaded.violations(result) == []

        data = json.loads(baseline_path.read_text())
        assert data["version"] == 1
        assert data["suppression_budget"] == 0

    def test_new_finding_violates_baseline(self, tmp_path):
        tree = make_tree(tmp_path / "tree", {"he/ntt.py": RL002_BAD_STAGE})
        rule = DomainDisciplineRule()
        baseline = Baseline.from_result(analyze([tree], rules=[rule], root=tree))

        (tree / "he" / "bfv.py").write_text(RL002_BAD_COMBINE)
        later = analyze([tree], rules=[DomainDisciplineRule()], root=tree)
        failures = baseline.violations(later)
        assert len(failures) == 1
        assert "he/bfv.py" in failures[0]

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        tree = make_tree(tmp_path / "tree", {"he/ntt.py": RL002_BAD_STAGE})
        baseline = Baseline.from_result(
            analyze([tree], rules=[DomainDisciplineRule()], root=tree)
        )
        # unrelated edit above the finding moves its line number
        (tree / "he" / "ntt.py").write_text(
            "import numpy as np\n\nUNRELATED = 1\n\n" + RL002_BAD_STAGE
        )
        shifted = analyze([tree], rules=[DomainDisciplineRule()], root=tree)
        assert baseline.violations(shifted) == []
        assert shifted.active[0].line != 3  # it did actually move

    def test_suppression_budget_overflow_fails(self, tmp_path):
        tree = make_tree(tmp_path / "tree", {
            "benchmarks/bench_x.py": (
                "import numpy as np\n"
                "np.random.seed(0)  # repro-lint: disable=RL004(legacy)\n"
            ),
        })
        result = analyze([tree], rules=[RngHygieneRule()], root=tree)
        assert result.active == [] and result.suppression_count == 1
        tight = Baseline(fingerprints=set(), suppression_budget=0)
        failures = tight.violations(result)
        assert len(failures) == 1
        assert "exceeds the committed budget" in failures[0]

    def test_stale_entries_reported(self, tmp_path):
        tree = make_tree(tmp_path / "tree", {"he/ntt.py": RL002_BAD_STAGE})
        baseline = Baseline.from_result(
            analyze([tree], rules=[DomainDisciplineRule()], root=tree)
        )
        (tree / "he" / "ntt.py").write_text(RL002_GOOD_STAGE)
        fixed = analyze([tree], rules=[DomainDisciplineRule()], root=tree)
        assert baseline.violations(fixed) == []
        assert len(baseline.stale(fixed)) == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {"he/ntt.py": RL002_GOOD_STAGE})
        assert cli_main([str(tree), "--root", str(tree)]) == 0
        assert "repro-lint OK" in capsys.readouterr().out

    def test_dirty_tree_exits_one_with_rendered_finding(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {"he/ntt.py": RL002_BAD_STAGE})
        assert cli_main([str(tree), "--root", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "he/ntt.py:3: RL002" in out
        assert "fix:" in out

    def test_stats_json(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {"he/ntt.py": RL002_BAD_STAGE})
        assert cli_main([str(tree), "--root", str(tree), "--stats"]) == 1
        stats = json.loads(capsys.readouterr().out)
        assert stats["findings"] == 1
        assert stats["findings_per_rule"] == {"RL002": 1}
        assert stats["suppression_count"] == 0

    def test_write_then_check_baseline(self, tmp_path, capsys):
        tree = make_tree(tmp_path / "tree", {"he/ntt.py": RL002_BAD_STAGE})
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            [str(tree), "--root", str(tree), "--write-baseline", str(baseline)]
        ) == 0
        assert cli_main(
            [str(tree), "--root", str(tree), "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        tree = make_tree(tmp_path, {"he/ntt.py": RL002_GOOD_STAGE})
        code = cli_main(
            [str(tree), "--root", str(tree), "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Acceptance demos on the real sources
# ---------------------------------------------------------------------------

SCHEDULER = REPO_ROOT / "src" / "repro" / "runtime" / "scheduler.py"
NTT = REPO_ROOT / "src" / "repro" / "he" / "ntt.py"


class TestAcceptanceDemos:
    def test_pristine_copies_pass(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "runtime/scheduler.py": SCHEDULER.read_text(),
            "he/ntt.py": NTT.read_text(),
        })
        assert cli_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_deleting_scheduler_lock_fails_the_checker(self, tmp_path, capsys):
        source = SCHEDULER.read_text()
        guarded_read = "        with self._lock:\n            return self._closed"
        assert source.count(guarded_read) == 1, "scheduler.closed idiom moved"
        mutated = source.replace(guarded_read, "        return self._closed")
        make_tree(tmp_path, {"runtime/scheduler.py": mutated})
        assert cli_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "_closed" in out

    def test_eager_mod_in_ntt_stage_loop_fails_the_checker(self, tmp_path, capsys):
        source = NTT.read_text()
        tail = "            a = out.reshape(batch, n)\n            length *= 2"
        assert source.count(tail) == 1, "ntt stage-loop tail moved"
        mutated = source.replace(
            tail,
            "            a = out.reshape(batch, n) % two_q\n            length *= 2",
        )
        make_tree(tmp_path, {"he/ntt.py": mutated})
        assert cli_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL002" in out and "stage loop" in out


# ---------------------------------------------------------------------------
# Live-tree meta-tests
# ---------------------------------------------------------------------------

HOT_PATH_FILES = (
    "src/repro/he/ntt.py",
    "src/repro/he/kernels.py",
    "src/repro/he/rns.py",
    "src/repro/runtime/scheduler.py",
)


class TestLiveTree:
    def test_tree_is_clean_modulo_committed_baseline(self):
        baseline_path = REPO_ROOT / ".repro-lint-baseline.json"
        assert baseline_path.exists(), "commit .repro-lint-baseline.json"
        baseline = Baseline.load(baseline_path)
        result = analyze()
        assert baseline.violations(result) == []

    @pytest.mark.parametrize("rel", HOT_PATH_FILES)
    def test_hot_path_files_carry_zero_suppressions(self, rel):
        module = ParsedModule.parse(REPO_ROOT / rel)
        assert module.suppressions == {}, f"{rel} must stay suppression-free"
