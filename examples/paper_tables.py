"""Regenerate the paper's headline tables from the calibrated cost model.

Prints Table I (scheme comparison), Table II (per-step ablation) and
Table III (model-size sweep) for BERT at paper scale, plus the Figure 6
packing comparison.  This is the same machinery the benchmark harness uses,
packaged as a single runnable report.

Run with:  python examples/paper_tables.py
"""

from __future__ import annotations

from repro.costmodel import format_table
from repro.he import rotation_savings
from repro.nn import BERT_BASE, PAPER_MODELS
from repro.protocols import ALL_VARIANTS, PRIMER_F, PRIMER_FPC, count_operations
from repro.protocols.primer import TABLE2_STEPS
from repro.runtime import calibrated_latency_model, scheme_latencies


def table1(latency_model) -> None:
    print("\nTable I -- comparison on private BERT-base inference")
    rows = []
    for row in scheme_latencies(BERT_BASE, model=latency_model,
                                variants=[PRIMER_F, PRIMER_FPC]):
        rows.append([
            row.scheme, f"{row.offline_seconds:.0f}", f"{row.online_seconds:.1f}",
            f"{row.total_seconds:.0f}", f"{row.message_gigabytes:.1f}",
        ])
    print(format_table(["Scheme", "Offline(s)", "Online(s)", "Total(s)", "Msg GB"], rows))


def table2(latency_model) -> None:
    print("\nTable II -- per-step ablation (offline/online seconds)")
    rows = []
    for variant in ALL_VARIANTS:
        account = count_operations(BERT_BASE, variant)
        breakdown = latency_model.breakdown(account)
        totals = latency_model.totals(account)
        cells = [variant.name]
        for step in TABLE2_STEPS:
            latency = breakdown[step]
            cells.append(f"{latency.offline.total_seconds:.1f}/{latency.online.total_seconds:.1f}")
        cells.append(f"{totals.offline.total_seconds:.0f}/{totals.online.total_seconds:.1f}")
        rows.append(cells)
    print(format_table(["Scheme", *TABLE2_STEPS, "Total"], rows))


def table3(latency_model) -> None:
    print("\nTable III -- Primer over BERT model sizes")
    rows = []
    for name, config in PAPER_MODELS.items():
        account = count_operations(config, PRIMER_FPC)
        rows.append([
            name,
            f"{latency_model.offline_seconds(account):.0f}",
            f"{latency_model.online_seconds(account):.1f}",
            f"{latency_model.throughput_tokens_per_second(account):.2f}",
            f"{latency_model.message_gigabytes(account):.1f}",
        ])
    print(format_table(["Model", "Offline(s)", "Online(s)", "Tokens/s", "Msg GB"], rows))


def figure6() -> None:
    print("\nFigure 6 -- packing rotation counts (embedding layer, n=30, M=4096)")
    savings = rotation_savings(30, 30522, 4096)
    print(format_table(
        ["Layout", "Rotations"],
        [["feature-based", f"{savings['feature_based_rotations']:,}"],
         ["tokens-first", f"{savings['tokens_first_rotations']:,}"],
         ["reduction", f"{savings['reduction_factor']:.1f}x"]],
    ))


if __name__ == "__main__":
    model = calibrated_latency_model(BERT_BASE)
    print("Cost model calibrated against the Primer-base row of Table II "
          f"(ct-pt mult {model.constants.he_mult_seconds * 1e3:.2f} ms, "
          f"rotation {model.constants.he_rotation_seconds * 1e3:.2f} ms).")
    table1(model)
    table2(model)
    table3(model)
    figure6()
