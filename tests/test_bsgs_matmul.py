"""Property tests for the rotation-minimal BSGS diagonal matmul kernel.

The kernel claims three things, each pinned here:

* **correctness** -- for any shape (odd dimensions, zero columns, multiple
  ciphertexts) the decrypted result is bit-identical to the legacy rotation
  loop in both layouts *and* to the plaintext product mod ``t``;
* **rotation minimality** -- the tracker-measured rotation count equals the
  closed form of :func:`repro.he.packing.bsgs_rotation_count` for dense
  weights and never exceeds the paper-facing ``2*sqrt(d_in) + sqrt(d_out)``
  bound per input ciphertext;
* **batch hoisting** -- a whole batch of requests shares one set of hoisted
  baby-step rotations, so the rotation count is independent of batch size.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import (
    ExactBFVBackend,
    PackingLayout,
    SimulatedHEBackend,
    UnsupportedHEOperation,
    bsgs_batch_matmul,
    bsgs_geometry,
    bsgs_matmul,
    bsgs_rotation_count,
    encrypted_packed_matmul,
    rotation_count,
    rotation_savings,
    serving_parameters,
    toy_parameters,
)


def _backend(slots: int = 64) -> SimulatedHEBackend:
    return SimulatedHEBackend(toy_parameters(slots))


shapes = st.tuples(
    st.integers(min_value=1, max_value=6),    # n_tokens
    st.integers(min_value=1, max_value=9),    # d_in (odd values included)
    st.integers(min_value=1, max_value=7),    # d_out
)


class TestKernelEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_bsgs_legacy_and_plaintext_agree(self, shape, data):
        """BSGS == legacy rotation loop (both layouts) == plaintext X @ W."""
        n, d_in, d_out = shape
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        x = rng.integers(0, 100, size=(n, d_in))
        w = rng.integers(0, 100, size=(d_in, d_out))
        if data.draw(st.booleans()):
            w[:, rng.integers(0, d_out)] = 0       # zero output column
        if data.draw(st.booleans()):
            x[:, rng.integers(0, d_in)] = 0        # zero input feature
        t = toy_parameters(64).plaintext_modulus
        expected = (x @ w) % t
        got_bsgs = bsgs_matmul(_backend(), x, w)
        assert np.array_equal(got_bsgs, expected)
        for layout in (PackingLayout.FEATURE_BASED, PackingLayout.TOKENS_FIRST):
            got_legacy = encrypted_packed_matmul(_backend(), x, w, layout)
            assert np.array_equal(got_legacy, expected), layout
        via_layout = encrypted_packed_matmul(
            _backend(), x, w, PackingLayout.BSGS_DIAGONAL
        )
        assert np.array_equal(via_layout, expected)

    def test_multi_ciphertext_inputs(self, rng):
        """d_in spanning several ciphertexts accumulates partial products."""
        backend = _backend(64)  # 8 tokens -> 8 feature blocks per ciphertext
        x = rng.integers(0, 100, size=(8, 20))
        w = rng.integers(0, 100, size=(20, 6))
        assert bsgs_geometry(8, 20, 6, 64).num_ciphertexts == 3
        got = bsgs_matmul(backend, x, w)
        assert np.array_equal(got, (x @ w) % backend.plaintext_modulus)

    def test_exact_backend_rejected(self, rng):
        """Coefficient packing has no slot-wise products: loud failure."""
        backend = ExactBFVBackend(serving_parameters(256), seed=1)
        assert not backend.supports_slotwise_plain
        with pytest.raises(UnsupportedHEOperation):
            bsgs_matmul(
                backend, rng.integers(0, 5, size=(4, 4)),
                rng.integers(1, 5, size=(4, 4)),
            )

    def test_too_many_tokens_rejected(self, rng):
        with pytest.raises(ParameterError):
            bsgs_matmul(
                _backend(64), rng.integers(0, 5, size=(65, 2)),
                rng.integers(0, 5, size=(2, 2)),
            )

    def test_wide_outputs_partition_into_column_groups(self, rng):
        """d_out past one ciphertext's block budget splits into groups that
        share the hoisted baby-step rotations."""
        geometry = bsgs_geometry(16, 4, 8, 64)  # 4 blocks of 16 slots, 8 cols
        assert geometry.out_blocks == 4 and geometry.out_groups == 2
        backend = _backend(64)
        x = rng.integers(0, 100, size=(16, 4))
        w = rng.integers(1, 100, size=(4, 8))
        backend.tracker.reset()
        got = bsgs_matmul(backend, x, w)
        assert np.array_equal(got, (x @ w) % backend.plaintext_modulus)
        assert backend.tracker.count("he_rotate") == geometry.rotation_count


class TestRotationCounts:
    @settings(max_examples=40, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**31))
    def test_tracker_matches_closed_form_for_dense_weights(self, shape, seed):
        n, d_in, d_out = shape
        rng = np.random.default_rng(seed)
        backend = _backend()
        x = rng.integers(0, 100, size=(n, d_in))
        w = rng.integers(1, 100, size=(d_in, d_out))  # dense: nothing skipped
        backend.tracker.reset()
        bsgs_matmul(backend, x, w)
        measured = backend.tracker.count("he_rotate")
        assert measured == bsgs_rotation_count(n, d_in, d_out, 64)

    @settings(max_examples=40, deadline=None)
    @given(shape=shapes)
    def test_acceptance_bound_per_input_ciphertext(self, shape):
        """<= 2*sqrt(d_in) + sqrt(d_out) rotations per input ciphertext."""
        n, d_in, d_out = shape
        geometry = bsgs_geometry(n, d_in, d_out, 64)
        per_ct = (geometry.baby - 1) + (geometry.giant - 1)
        assert per_ct <= 2 * math.ceil(math.sqrt(d_in)) + math.ceil(math.sqrt(d_out))
        assert geometry.rotation_count == bsgs_rotation_count(n, d_in, d_out, 64)

    def test_fewer_rotations_than_both_legacy_layouts_at_paper_dims(self):
        counts = rotation_savings(30, 64, 4096, n_outputs=64)
        assert counts["bsgs_rotations"] < counts["tokens_first_rotations"]
        assert counts["bsgs_rotations"] < counts["feature_based_rotations"]
        assert counts["bsgs_reduction_factor"] >= 3.0

    def test_rotation_count_layout_dispatch(self):
        via_layout = rotation_count(
            30, 64, 4096, PackingLayout.BSGS_DIAGONAL, n_outputs=16
        )
        assert via_layout == bsgs_rotation_count(30, 64, 16, 4096)
        # Square default when the output width is unstated.
        assert rotation_count(30, 64, 4096, PackingLayout.BSGS_DIAGONAL) == (
            bsgs_rotation_count(30, 64, 64, 4096)
        )


class TestBatchHoisting:
    def test_rotations_independent_of_batch_size(self, rng):
        w = rng.integers(1, 50, size=(16, 4))
        counts = []
        for batch in (1, 2, 4):
            backend = SimulatedHEBackend(toy_parameters(256))
            matrices = [rng.integers(0, 100, size=(8, 16)) for _ in range(batch)]
            backend.tracker.reset()
            results = bsgs_batch_matmul(backend, matrices, w)
            counts.append(backend.tracker.count("he_rotate"))
            for m, out in zip(matrices, results, strict=True):
                assert np.array_equal(out, (m @ w) % backend.plaintext_modulus)
        # The stacked token axis shares every hoisted baby step and giant
        # accumulator: same rotation count for 1, 2 and 4 requests.
        assert counts[0] == counts[1] == counts[2]

    def test_empty_batch(self):
        assert bsgs_batch_matmul(_backend(), [], np.zeros((2, 2))) == []
