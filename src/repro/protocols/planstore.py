"""Persistent :class:`~repro.protocols.plan.OfflinePlan` store.

The offline phase is the expensive half of the paper's protocols -- and since
PR 2 it is an explicit, picklable artifact (:class:`OfflinePlan`).  This
module makes that artifact survive process restarts: plans are serialized to
disk keyed by ``(model, variant, seed, slot_sharing)``, so a freshly started
serving process can *warm-start* its engines by installing a stored plan
instead of re-running the whole HE exchange (the engine cache does exactly
that, see :class:`~repro.runtime.executor.EngineCache`).

Keying
------
The ``model`` component of a key is a **content fingerprint** (a SHA-256
prefix over the model's serialized config and weights), not the mutable
serving name.  Replacing a model under the same serving name therefore
changes the key and misses the store -- stale plans can never be installed
onto a replaced model, the same invariant the in-memory cache enforces with
``invalidate_model``.

Integrity
---------
Every entry records a SHA-256 digest of its pickled payload plus the full
key metadata.  ``load`` verifies both before unpickling and treats *any*
mismatch -- truncated file, flipped bit, metadata drift, unreadable pickle --
as a cache miss (the corrupt entry is deleted), so the worst failure mode of
the store is a cold rebuild, never a wrong or half-installed plan.

Fault tolerance
---------------
I/O failures are *not* integrity failures and are handled differently:
a read that raises ``OSError`` is retried once and the entry is **kept**
(the file is presumed fine, the filesystem transiently was not), while an
integrity failure deletes the entry (the file itself is damaged).  Both are
counted separately in :class:`PlanStoreStats`.  After
``io_error_disable_threshold`` *consecutive* failed I/O operations the
store disables itself -- loads read as misses and stores become no-ops -- so
a persistently broken plan directory degrades serving to cold builds
instead of hammering a dead disk.  Reads and writes pass through the
``planstore_load`` / ``planstore_store`` fault sites of
:mod:`repro.runtime.faults` (hooks installed by that module on import), so
every one of these paths is exercised by deterministic induced failure.

The store trusts its own directory: payloads are pickles, so a plan
directory must be treated like any other local cache (do not point it at
attacker-writable storage).

Garbage collection
------------------
``max_entries`` / ``max_bytes`` bound the directory: every ``store``
prunes least-recently-used entries (by file mtime; ``load`` hits refresh
it) until the budgets hold, never evicting the entry just written.  The
worst outcome of pruning is a cold rebuild on a future warm-start attempt
-- exactly the store's existing miss semantics.  :meth:`PlanStore.stats`
reports entry/byte totals plus this instance's hit/miss/prune counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import ProtocolError, TransientFault
from .plan import OfflinePlan

__all__ = ["PlanStoreKey", "PlanStore", "PlanStoreStats", "model_fingerprint"]

#: fault-injection hooks, installed by :mod:`repro.runtime.faults` on import
#: (dependency inversion: the protocol layer never imports the runtime).
_fault_hook = None
_corrupt_hook = None

#: registered fault-site names of the store's read and write paths
FAULT_SITE_LOAD = "planstore_load"
FAULT_SITE_STORE = "planstore_store"

#: errors treated as *transient I/O* (retried, entry kept) rather than
#: integrity failures (entry deleted).  ``TransientFault`` lets the fault
#: layer drive this path with its default typed fault; ``FileNotFoundError``
#: is excluded by the callers (a plain miss, not an error).
_TRANSIENT_IO = (OSError, TransientFault)

#: file-format magic + version; bumping it invalidates every stored entry.
#: v2: ciphertext handles in pickled plans carry a ``domain`` field
#: (evaluation-domain residency) -- v1 entries unpickle to handles without
#: it and would crash at first use, so they must read as misses instead.
#: v3: double-CRT ciphertexts -- exact-backend components are limb-major
#: ``(L, N)`` arrays and BSGS plans carry a ``limbs`` field, so pre-RNS
#: entries would deserialize into shapes the limb-aware consumers reject
#: (or worse, silently mis-shape); they must read as misses instead.
_MAGIC = b"REPRO-PLAN3\n"


def model_fingerprint(model) -> str:
    """Content hash of a model (config + weights), stable across processes.

    Two models with identical configuration and weights fingerprint the
    same; any weight or shape change yields a new fingerprint.  Used as the
    ``model`` component of a :class:`PlanStoreKey`, so a stored plan can
    only ever be installed onto the exact model it was prepared for.
    """
    return hashlib.sha256(pickle.dumps(model)).hexdigest()[:32]


@dataclass(frozen=True)
class PlanStoreKey:
    """Identity of one stored plan: which engine build it can warm-start.

    ``model`` is a content fingerprint (see :func:`model_fingerprint`);
    ``slot_sharing`` is the *effective* FHGS slot-sharing the plan was
    prepared with (engines clamp the requested value to their backend and
    slot budget, and plans prepared at different sharing levels are not
    interchangeable).
    """

    model: str
    variant: str
    seed: int
    slot_sharing: int

    def digest(self) -> str:
        """Stable filename-safe digest of the key."""
        blob = json.dumps(asdict(self), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:40]


@dataclass(frozen=True)
class PlanStoreStats:
    """Point-in-time view of the store plus this instance's counters.

    ``entries`` / ``total_bytes`` are read from the directory (shared with
    other processes); ``hits`` / ``misses`` / ``stores`` / ``prunes`` count
    only this instance's activity.  ``io_errors`` counts failed read/write
    operations (transient: the entry is kept), ``integrity_failures`` counts
    damaged entries (deleted); ``disabled`` reports whether consecutive I/O
    errors reached the disable threshold (see the module docstring).
    """

    entries: int
    total_bytes: int
    hits: int
    misses: int
    stores: int
    prunes: int
    io_errors: int = 0
    integrity_failures: int = 0
    disabled: bool = False


class PlanStore:
    """Directory-backed store of serialized offline plans.

    Writes are atomic (temp file + ``os.replace``), so a concurrent reader --
    another serving process sharing the directory, or a prefetch racing a
    build -- never observes a partially written entry.

    ``max_entries`` / ``max_bytes`` (``None`` = unbounded, the historical
    behaviour) turn the directory into an LRU-pruned cache: see the module
    docstring's *Garbage collection* section.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        io_error_disable_threshold: int = 3,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ProtocolError("plan store max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ProtocolError("plan store max_bytes must be positive")
        if io_error_disable_threshold < 1:
            raise ProtocolError("io_error_disable_threshold must be at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.io_error_disable_threshold = io_error_disable_threshold
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._prunes = 0
        self._io_errors = 0
        self._integrity_failures = 0
        self._consecutive_io_errors = 0
        self._disabled = False

    @property
    def disabled(self) -> bool:
        """Whether consecutive I/O errors disabled persistence (see module docs)."""
        return self._disabled

    def _record_failed_io(self) -> None:
        """One failed I/O *operation* (a load that exhausted its retry, or a
        failed store); reaching the threshold disables the store."""
        self._consecutive_io_errors += 1
        if self._consecutive_io_errors >= self.io_error_disable_threshold:
            self._disabled = True

    # -- keys ----------------------------------------------------------------
    def key_for(self, model, variant: str, seed: int, slot_sharing: int) -> PlanStoreKey:
        """The store key of an engine build (fingerprints ``model``)."""
        return PlanStoreKey(
            model=model_fingerprint(model), variant=variant,
            seed=int(seed), slot_sharing=int(slot_sharing),
        )

    def path_for(self, key: PlanStoreKey) -> Path:
        return self.root / f"{key.digest()}.plan"

    # -- persistence ---------------------------------------------------------
    def store(self, key: PlanStoreKey, plan: OfflinePlan) -> Path:
        """Serialize ``plan`` under ``key``; returns the entry's path.

        Persistence is best-effort: a write that fails with an I/O error is
        counted (``io_errors``) and swallowed -- the caller's plan is intact
        and serving degrades to a cold build next process, exactly the
        store's miss semantics.  A disabled store (see the module docstring)
        skips the write entirely.
        """
        if not isinstance(plan, OfflinePlan):
            raise ProtocolError(
                f"plan store holds OfflinePlans, not {type(plan).__name__}"
            )
        path = self.path_for(key)
        if self._disabled:
            return path
        payload = pickle.dumps(plan)
        header = json.dumps(
            {
                "key": asdict(key),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "payload_bytes": len(payload),
                "variant": plan.variant,
            },
            sort_keys=True,
        ).encode()
        try:
            self._write_entry(path, header, payload)
        except _TRANSIENT_IO:
            self._io_errors += 1
            self._record_failed_io()
            return path
        self._consecutive_io_errors = 0
        self._stores += 1
        self._prune(protect=path)
        return path

    def _write_entry(self, path: Path, header: bytes, payload: bytes) -> None:
        """Atomically write one entry (the ``planstore_store`` fault site)."""
        if _fault_hook is not None:
            _fault_hook(FAULT_SITE_STORE, path.name)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(len(header).to_bytes(4, "big"))
                handle.write(header)
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _prune(self, protect: Path) -> None:
        """Delete least-recently-used entries until the budgets hold.

        Recency is file mtime (refreshed by ``load`` hits), so stale plans
        -- replaced models, retired variants, old seeds -- age out first.
        The just-written entry is never the victim, even if it alone
        exceeds ``max_bytes``: evicting it would defeat the warm start the
        caller just paid to enable.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self.root.glob("*.plan"):
            try:
                stat = path.stat()
            except FileNotFoundError:  # pragma: no cover - concurrent delete
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
            total += stat.st_size
        entries.sort()
        count = len(entries)
        for _, path, size in entries:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if path == protect:
                continue
            self._discard(path)
            self._prunes += 1
            count -= 1
            total -= size

    def _read_entry(self, path: Path) -> bytes:
        """Read one entry's bytes (the ``planstore_load`` fault site)."""
        if _fault_hook is not None:
            _fault_hook(FAULT_SITE_LOAD, path.name)
        blob = path.read_bytes()
        if _corrupt_hook is not None:
            blob = _corrupt_hook(FAULT_SITE_LOAD, blob)
        return blob

    def load(self, key: PlanStoreKey) -> OfflinePlan | None:
        """The stored plan for ``key``, or ``None`` on miss/corruption.

        A read that fails with a *transient* I/O error is retried once; if
        the retry fails too, the load is a miss but the entry is **kept**
        (counted in ``io_errors``).  Integrity verification -- magic/version,
        header metadata (the stored key must equal ``key`` field for
        field), payload digest, then unpickle -- deletes the entry on any
        failure (counted in ``integrity_failures``) and reads as a miss;
        the caller falls back to a cold build either way.
        """
        if self._disabled:
            self._misses += 1
            return None
        path = self.path_for(key)
        blob = None
        for attempt in (1, 2):
            try:
                blob = self._read_entry(path)
                break
            except FileNotFoundError:
                self._misses += 1
                return None
            except _TRANSIENT_IO:
                self._io_errors += 1
                if attempt == 2:
                    # Retry exhausted: a miss, but the file survives -- the
                    # entry is presumed fine, the filesystem was not.
                    self._record_failed_io()
                    self._misses += 1
                    return None
        self._consecutive_io_errors = 0
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            offset = len(_MAGIC)
            header_len = int.from_bytes(blob[offset:offset + 4], "big")
            offset += 4
            header = json.loads(blob[offset:offset + header_len])
            payload = blob[offset + header_len:]
            if header.get("key") != asdict(key):
                raise ValueError("key metadata mismatch")
            if len(payload) != int(header.get("payload_bytes", -1)):
                raise ValueError("payload truncated")
            if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
                raise ValueError("payload digest mismatch")
            plan = pickle.loads(payload)
            if not isinstance(plan, OfflinePlan):
                raise ValueError("payload is not an OfflinePlan")
        except (ValueError, KeyError, json.JSONDecodeError, pickle.UnpicklingError,
                EOFError, AttributeError, ImportError, IndexError):
            self._integrity_failures += 1
            self._discard(path)
            self._misses += 1
            return None
        self._hits += 1
        try:
            # Refresh recency so warm-start traffic protects its plans from
            # LRU pruning (best effort; a read-only store still serves hits).
            os.utime(path)
        except OSError:  # pragma: no cover - unwritable store directory
            pass
        return plan

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone or unwritable
            pass

    # -- introspection -------------------------------------------------------
    def contains(self, key: PlanStoreKey) -> bool:
        return self.path_for(key).exists()

    def entry_bytes(self, key: PlanStoreKey) -> int:
        """On-disk size of ``key``'s entry (0 when absent)."""
        try:
            return self.path_for(key).stat().st_size
        except FileNotFoundError:
            return 0

    def entry_count(self) -> int:
        return len(list(self.root.glob("*.plan")))

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.root.glob("*.plan"))

    def stats(self) -> PlanStoreStats:
        """Directory totals plus this instance's hit/miss/store/prune counts."""
        return PlanStoreStats(
            entries=self.entry_count(),
            total_bytes=self.total_bytes(),
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            prunes=self._prunes,
            io_errors=self._io_errors,
            integrity_failures=self._integrity_failures,
            disabled=self._disabled,
        )

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.plan"):
            self._discard(path)
            removed += 1
        return removed
