"""Accuracy columns of Figure 2 / Tables I-III.

The paper reports that approximation-based FHE inference (THE-X) loses ~7-8
accuracy points while Primer (exact non-linearities under GC, 15-bit fixed
point) matches the fine-tuned model.  Pre-trained checkpoints are not
available offline, so this benchmark measures the same two effects on
synthetic tasks with the plaintext model as the teacher (see DESIGN.md):
fidelity of the fixed-point path vs fidelity of the polynomial path.
"""

from __future__ import annotations

import pytest

from repro.costmodel import format_table
from repro.data import TASK_SPECS, make_task
from repro.nn import BERT_BASE, TransformerEncoder, WordPieceTokenizer, scaled_config
from repro.runtime import evaluate_accuracy

PAPER_ACCURACY = {  # BERT-base columns of Table III (%), for reference output
    "mnli-m": 84.6, "mrpc": 86.3, "sst-2": 92.5, "squad1": 90.7, "squad2": 80.3,
}


@pytest.fixture(scope="module")
def eval_model():
    config = scaled_config(
        BERT_BASE, embed_dim=32, num_heads=4, seq_len=16, vocab_size=400, num_blocks=2
    )
    return TransformerEncoder.initialise(config, seed=7)


@pytest.fixture(scope="module")
def tokenizer(eval_model):
    return WordPieceTokenizer(vocab_size=eval_model.config.vocab_size,
                              max_length=eval_model.config.seq_len)


def test_accuracy_report(eval_model, tokenizer):
    rows = []
    penalties = []
    primer_fidelities = []
    fhe_fidelities = []
    for task_name in TASK_SPECS:
        task = make_task(task_name, tokenizer, num_examples=40, seed=11)
        report = evaluate_accuracy(eval_model, task)
        penalties.append(report.approximation_penalty)
        primer_fidelities.append(report.primer_fidelity)
        fhe_fidelities.append(report.fhe_only_fidelity)
        rows.append([
            task_name,
            f"{PAPER_ACCURACY[task_name]:.1f}",
            f"{report.primer_fidelity * 100:.1f}",
            f"{report.fhe_only_fidelity * 100:.1f}",
            f"{report.approximation_penalty * 100:.1f}",
        ])
    print("\nAccuracy shape -- fidelity to the plaintext model (%)\n")
    print(format_table(
        ["Task", "Paper acc (ref)", "Primer path", "FHE-only path", "Approx. penalty"],
        rows,
    ))
    # Shape: the fixed-point Primer path tracks the plaintext model at least
    # as well as the polynomial-approximation path on every task, and the
    # approximation costs accuracy on average (the paper's ~7-point gap).
    # (Untrained synthetic weights have small logit margins, so the absolute
    # fidelities are noisier than a fine-tuned checkpoint's would be.)
    primer_mean = sum(primer_fidelities) / len(primer_fidelities)
    fhe_mean = sum(fhe_fidelities) / len(fhe_fidelities)
    assert primer_mean >= fhe_mean
    assert all(p >= 0 for p in penalties)
    assert sum(penalties) / len(penalties) > 0.0


@pytest.mark.benchmark(group="accuracy")
def test_bench_quantised_inference(benchmark, eval_model, tokenizer):
    from repro.nn import ExecutionMode, QuantizedExecutor
    task = make_task("sst-2", tokenizer, num_examples=4, seed=1)
    executor = QuantizedExecutor(eval_model, ExecutionMode.primer())
    benchmark(lambda: [executor.predict(row) for row in task.token_matrix()])
