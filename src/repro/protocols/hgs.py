"""The HGS protocol: offline-preprocessed private linear layers (paper Fig. 4).

HGS ("HE + GC + SS") turns a ciphertext-plaintext matrix product
``X @ W`` into an offline HE exchange plus an online phase that only touches
unencrypted secret shares:

* **offline** -- the client samples a random mask ``Rc`` and sends
  ``Enc(Rc)``; the server multiplies it by its weights under encryption,
  masks the result with its own random ``Rs`` and returns
  ``Enc(Rc @ W + Rs)``; the client decrypts.  After this exchange the client
  holds ``Rc @ W + Rs`` and the server holds ``Rs`` -- additive shares of
  ``Rc @ W``.
* **online** -- the server obtains ``X - Rc`` (either directly, because the
  previous GC module produced exactly that as the server's share, or via a
  cheap correction message), computes ``(X - Rc) @ W - Rs`` locally, and the
  two parties now hold additive shares of ``X @ W`` without a single online
  HE operation.

The class below implements both phases against an
:class:`~repro.he.backend.HEBackend`.  For Primer-base the same object is
used with ``offline_phase=Phase.ONLINE`` so that all the HE work is charged
to the online phase, which is exactly how the paper characterises the
baseline hybrid protocol.

On an evaluation-resident backend the whole offline exchange stays in the
NTT domain: ``Enc(Rc)`` is encrypted straight into EVAL form, the
scalar-product accumulation and the ``+ Rs`` masking are pointwise, and the
client's decrypt pays a single inverse transform per ciphertext -- the
per-phase ``ntt_forward`` / ``ntt_inverse`` tracker counters attribute the
saving to this layer's step label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ProtocolError, ShapeError
from ..fixedpoint.encoding import FixedPointFormat
from ..he.backend import HEBackend
from ..he.matmul import enc_times_plain, encrypt_matrix_columns
from ..mpc.sharing import AdditiveSharing, SharedValue
from .channel import Channel, Phase
from .formats import PROTOCOL_FORMAT
from .plan import HGSPlan

__all__ = ["HGSLinearLayer"]


@dataclass
class HGSLinearLayer:
    """One private linear layer ``Y = X @ W + b`` under the HGS protocol.

    Parameters
    ----------
    weights:
        Plaintext weight residues (``in_dim x out_dim``), held by the server.
    bias:
        Plaintext bias residues (``out_dim``), already scaled to the output
        fractional precision (``2 * frac_bits`` because the product of two
        ``frac_bits`` operands has twice the fractional width).
    backend, sharing, channel:
        The HE backend, sharing helper, and message channel shared by the run.
    step:
        Label used for cost accounting (e.g. ``"embedding"``, ``"qkv"``).
    input_rows:
        Number of rows of ``X`` (the token count ``n``), needed to size
        ``Rc`` during the offline phase.
    """

    weights: np.ndarray
    bias: np.ndarray | None
    backend: HEBackend
    sharing: AdditiveSharing
    channel: Channel
    step: str
    input_rows: int
    fmt: FixedPointFormat = PROTOCOL_FORMAT
    seed: int | None = None

    # installed offline artifact (see protocols/plan.py)
    _plan: HGSPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        if self.weights.ndim != 2:
            raise ShapeError("HGS layer expects a 2-D weight matrix")
        if self.bias is not None:
            self.bias = np.asarray(self.bias, dtype=np.int64)
            if self.bias.shape != (self.weights.shape[1],):
                raise ShapeError(
                    f"bias shape {self.bias.shape} does not match output dim "
                    f"{self.weights.shape[1]}"
                )
        self._rng = np.random.default_rng(self.seed)

    # -- offline phase ---------------------------------------------------------
    def prepare(self, *, phase: Phase = Phase.OFFLINE) -> HGSPlan:
        """Run the HE pre-processing exchange and return its artifact.

        ``phase`` controls which phase the HE work and traffic are charged
        to: ``Phase.OFFLINE`` for HGS proper (Primer-F and later), or
        ``Phase.ONLINE`` to model Primer-base, where the same HE operations
        happen during inference.

        The returned :class:`HGSPlan` is *not* adopted by this layer -- pass
        it to :meth:`install` (or call :meth:`offline`, which does both).
        This is what lets a serving executor prepare the offline phase on a
        background worker while the layer keeps serving its current plan.
        """
        in_dim, out_dim = self.weights.shape
        modulus = self.sharing.modulus

        # Client: sample Rc and send Enc(Rc) column-packed.
        client_mask = self._rng.integers(0, modulus, size=(self.input_rows, in_dim), dtype=np.int64)
        encrypted_mask = encrypt_matrix_columns(self.backend, client_mask)
        self.channel.send(
            "client", "server",
            len(encrypted_mask.handles) * self.backend.ciphertext_bytes,
            description="Enc(Rc)", step=self.step, phase=phase,
        )

        # Server: Enc(Rc @ W) + Rs, returned to the client.
        server_mask = self._rng.integers(0, modulus, size=(self.input_rows, out_dim), dtype=np.int64)
        encrypted_product = enc_times_plain(self.backend, encrypted_mask, self.weights)
        masked_handles = [
            self.backend.add_plain(handle, server_mask[:, j])
            for j, handle in enumerate(encrypted_product.handles)
        ]
        self.channel.send(
            "server", "client",
            len(masked_handles) * self.backend.ciphertext_bytes,
            description="Enc(Rc @ W + Rs)", step=self.step, phase=phase,
        )

        # Client: decrypt to obtain its offline share Rc @ W + Rs.
        client_offline = np.zeros((self.input_rows, out_dim), dtype=np.int64)
        for j, values in enumerate(self.backend.decrypt_batch(masked_handles)):
            client_offline[:, j] = values[: self.input_rows]

        return HGSPlan(
            client_mask=client_mask,
            server_mask=server_mask,
            client_offline_share=np.mod(client_offline, modulus),
        )

    def install(self, plan: HGSPlan) -> None:
        """Adopt a prepared offline artifact; ``online()`` may run after this."""
        if not isinstance(plan, HGSPlan):
            raise ProtocolError(
                f"HGS layer '{self.step}' cannot install a {type(plan).__name__}"
            )
        expected = (self.input_rows, self.weights.shape[0])
        if tuple(plan.client_mask.shape) != expected:
            raise ShapeError(
                f"plan mask shape {plan.client_mask.shape} does not match "
                f"layer input shape {expected}"
            )
        self._plan = plan

    def offline(self, *, phase: Phase = Phase.OFFLINE) -> None:
        """Prepare and immediately install the offline artifact."""
        self.install(self.prepare(phase=phase))

    @property
    def plan(self) -> HGSPlan:
        """The installed offline artifact."""
        if self._plan is None:
            raise ProtocolError("offline phase has not been run")
        return self._plan

    @property
    def client_mask(self) -> np.ndarray:
        """The mask ``Rc`` this layer expects the input to be blinded with."""
        return self.plan.client_mask

    # -- online phase ---------------------------------------------------------
    def online(self, shared_input: SharedValue) -> SharedValue:
        """Compute shares of ``X @ W + b`` from shares of ``X``.

        If the client's input share already equals ``Rc`` (the previous GC
        module masked with exactly this layer's mask), no correction message
        is needed; otherwise the client sends the difference so the server
        can reconstruct ``X - Rc``.  Either way the online phase involves no
        HE operations.
        """
        return self.online_batch([shared_input])[0]

    def online_batch(self, shared_inputs: list[SharedValue]) -> list[SharedValue]:
        """Online phase for a whole batch of inputs against one plan.

        The corrections of every request coalesce into one message and the
        server-side products run as a single stacked matmul -- the online
        phase stays HE-free, it just amortises the Python and round overhead
        across the batch.  Results are identical to per-request
        :meth:`online` calls.
        """
        if self._plan is None:
            raise ProtocolError(
                f"HGS layer '{self.step}' used online before its offline phase"
            )
        if not shared_inputs:
            raise ProtocolError("online_batch needs at least one input")
        plan = self._plan
        for shared_input in shared_inputs:
            if shared_input.shape != plan.client_mask.shape:
                raise ShapeError(
                    f"input shape {shared_input.shape} does not match offline "
                    f"mask shape {plan.client_mask.shape}"
                )
        modulus = self.sharing.modulus

        client_shares = np.stack([s.client_share for s in shared_inputs])
        server_shares = np.stack([s.server_share for s in shared_inputs])
        corrections = np.mod(client_shares - plan.client_mask, modulus)
        correction_bytes = sum(
            int(corrections[r].size) for r in range(len(shared_inputs))
            if np.any(corrections[r])
        ) * ((self.fmt.total_bits + 7) // 8)
        if correction_bytes:
            # Client -> server: X_client - Rc, so the server can form X - Rc.
            self.channel.send(
                "client", "server", correction_bytes,
                description="share correction (X_c - Rc)", step=self.step,
                phase=Phase.ONLINE,
            )
        x_minus_rc = np.mod(server_shares + corrections, modulus)

        # Server-side shares: (X - Rc) @ W - Rs (+ bias, which the server
        # holds) -- one stacked matmul for the whole batch.
        batched_server = np.mod(x_minus_rc @ self.weights - plan.server_mask, modulus)
        if self.bias is not None:
            batched_server = np.mod(batched_server + self.bias, modulus)

        return [
            SharedValue(
                # Client-side share: Rc @ W + Rs, precomputed offline.
                client_share=plan.client_offline_share.copy(),
                server_share=batched_server[r],
                modulus=modulus,
            )
            for r in range(len(shared_inputs))
        ]
