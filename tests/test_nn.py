"""Tests for the plaintext Transformer substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, ShapeError
from repro.nn import (
    BERT_BASE,
    BERT_LARGE,
    BERT_TINY,
    PAPER_MODELS,
    ExecutionMode,
    MultiHeadSelfAttention,
    QuantizedExecutor,
    TransformerConfig,
    TransformerEncoder,
    WordPieceTokenizer,
    gelu,
    gelu_poly,
    inverse_sqrt_newton,
    scaled_config,
    softmax,
    softmax_poly,
)


class TestConfig:
    def test_paper_models_match_table3(self):
        assert BERT_TINY.num_blocks == 3 and BERT_TINY.embed_dim == 768
        assert BERT_BASE.num_blocks == 12 and BERT_BASE.num_heads == 12
        assert BERT_LARGE.num_blocks == 24 and BERT_LARGE.embed_dim == 1024
        assert all(cfg.seq_len == 30 for cfg in PAPER_MODELS.values())
        assert all(cfg.vocab_size == 30522 for cfg in PAPER_MODELS.values())

    def test_bert_base_parameter_count_plausible(self):
        # Real BERT-base has ~110M parameters.
        assert 90e6 < BERT_BASE.parameter_count() < 130e6

    def test_invalid_heads_rejected(self):
        with pytest.raises(ParameterError):
            TransformerConfig("bad", num_blocks=1, embed_dim=10, num_heads=3, seq_len=4)

    def test_scaled_config_keeps_structure(self):
        small = scaled_config(BERT_BASE, embed_dim=32, num_heads=4)
        assert small.embed_dim == 32 and small.head_dim == 8


class TestActivations:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(0, 3, size=(4, 7))
        assert np.allclose(np.sum(softmax(logits), axis=-1), 1.0)

    def test_softmax_poly_is_distribution(self, rng):
        logits = rng.normal(0, 1, size=(4, 7))
        approx = softmax_poly(logits)
        assert np.allclose(np.sum(approx, axis=-1), 1.0)
        assert np.all(approx >= 0)

    def test_softmax_poly_differs_from_exact(self, rng):
        logits = rng.normal(0, 2, size=(8, 8))
        assert np.max(np.abs(softmax(logits) - softmax_poly(logits))) > 0.01

    def test_gelu_poly_close_in_core_range(self):
        x = np.linspace(-1.5, 1.5, 50)
        assert np.max(np.abs(gelu(x) - gelu_poly(x))) < 0.3

    def test_inverse_sqrt_newton_converges(self):
        values = np.array([0.5, 1.0, 4.0, 9.0])
        got = inverse_sqrt_newton(values, iterations=8)
        assert np.allclose(got, 1 / np.sqrt(values), rtol=1e-2)


class TestTokenizer:
    def test_vocab_size(self):
        tokenizer = WordPieceTokenizer(vocab_size=30522, max_length=30)
        assert len(tokenizer.vocab) == 30522

    def test_encode_pads_to_max_length(self):
        tokenizer = WordPieceTokenizer(vocab_size=1000, max_length=16)
        assert len(tokenizer.encode("the movie was great")) == 16

    def test_roundtrip_common_words(self):
        tokenizer = WordPieceTokenizer(vocab_size=1000, max_length=16)
        text = "the movie was good"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_unknown_characters_map_to_unk(self):
        tokenizer = WordPieceTokenizer(vocab_size=300, max_length=8)
        ids = tokenizer.encode("ééé")
        assert tokenizer.unk_id in ids


class TestModel:
    def test_forward_shapes(self, tiny_model, tiny_token_ids):
        cfg = tiny_model.config
        assert tiny_model.encode(tiny_token_ids).shape == (cfg.seq_len, cfg.embed_dim)
        assert tiny_model.logits(tiny_token_ids).shape == (cfg.num_labels,)

    def test_trace_contains_all_blocks(self, tiny_model, tiny_token_ids):
        _, trace = tiny_model.forward_with_trace(tiny_token_ids)
        assert len(trace["blocks"]) == tiny_model.config.num_blocks
        assert "attention" in trace["blocks"][0]

    def test_attention_rows_sum_to_one(self, tiny_model, tiny_token_ids):
        _, trace = tiny_model.forward_with_trace(tiny_token_ids)
        attention = trace["blocks"][0]["attention"]
        assert np.allclose(np.sum(attention, axis=-1), 1.0)

    def test_embedding_matches_one_hot_matmul(self, tiny_model, tiny_token_ids):
        emb = tiny_model.embedding
        direct = emb.word_embeddings[tiny_token_ids]
        via_onehot = emb.one_hot_matmul(tiny_token_ids)
        assert np.allclose(direct, via_onehot)

    def test_deterministic_initialisation(self, tiny_model, tiny_token_ids):
        clone = TransformerEncoder.initialise(tiny_model.config, seed=3)
        assert np.allclose(clone.logits(tiny_token_ids), tiny_model.logits(tiny_token_ids))

    def test_bad_sequence_length_raises(self, tiny_model):
        with pytest.raises(ShapeError):
            tiny_model.embedding(np.arange(100))

    def test_attention_rejects_3d_input(self, rng):
        attention = MultiHeadSelfAttention.initialise(8, 2, rng)
        with pytest.raises(ShapeError):
            attention(rng.normal(size=(2, 3, 8)))


class TestQuantizedExecution:
    def test_primer_mode_close_to_plaintext(self, tiny_model, tiny_token_ids):
        plain = tiny_model.logits(tiny_token_ids)
        quantised = QuantizedExecutor(tiny_model, ExecutionMode.primer()).logits(tiny_token_ids)
        assert np.argmax(plain) == np.argmax(quantised)

    def test_fhe_only_mode_differs_more(self, tiny_model, tiny_token_ids):
        plain = tiny_model.logits(tiny_token_ids)
        primer = QuantizedExecutor(tiny_model, ExecutionMode.primer()).logits(tiny_token_ids)
        fhe = QuantizedExecutor(tiny_model, ExecutionMode.fhe_only()).logits(tiny_token_ids)
        assert np.linalg.norm(fhe - plain) >= np.linalg.norm(primer - plain)

    def test_plaintext_mode_is_identity(self, tiny_model, tiny_token_ids):
        executor = QuantizedExecutor(tiny_model, ExecutionMode.plaintext())
        assert np.allclose(executor.logits(tiny_token_ids), tiny_model.logits(tiny_token_ids))
