"""Additive secret sharing over a power-of-two ring.

Primer's online phase works on two-party additive secret shares: the client
holds ``x - r`` (or one share) and the server holds ``r`` (the other share),
with the invariant ``share_client + share_server = x  (mod 2**k)``.

All protocol modules use the helpers here rather than doing the modular
arithmetic inline, so the sharing semantics is specified exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError, ShapeError
from ..fixedpoint.encoding import DEFAULT_FORMAT, FixedPointFormat

__all__ = ["SharedValue", "AdditiveSharing"]


@dataclass(frozen=True)
class SharedValue:
    """A two-party additive sharing of an integer tensor.

    The two shares sum to the secret modulo ``modulus``.  Instances are
    produced either by :class:`AdditiveSharing.share` (dealer-style, for
    tests) or assembled by the protocols from values each party computed
    locally.
    """

    client_share: np.ndarray
    server_share: np.ndarray
    modulus: int

    def __post_init__(self) -> None:
        if self.client_share.shape != self.server_share.shape:
            raise ShapeError(
                "client and server shares must have the same shape, got "
                f"{self.client_share.shape} vs {self.server_share.shape}"
            )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.client_share.shape)

    def reconstruct(self) -> np.ndarray:
        """Open the sharing (test/debug helper; parties never do this jointly)."""
        return np.mod(self.client_share + self.server_share, self.modulus)


class AdditiveSharing:
    """Helper object for creating and combining additive shares.

    Parameters
    ----------
    fmt:
        The fixed-point format whose ring (``2**total_bits``) the shares live
        in.  Shares of a 15-bit fixed-point tensor are elements of ``Z_{2^15}``.
    seed:
        Seed for the internal randomness (dealer-style sharing in tests).
    """

    def __init__(self, fmt: FixedPointFormat = DEFAULT_FORMAT, *, seed: int | None = None):
        self.fmt = fmt
        self.modulus = fmt.modulus
        self._rng = np.random.default_rng(seed)

    # -- randomness ----------------------------------------------------------
    def random_mask(self, shape: tuple[int, ...]) -> np.ndarray:
        """A uniformly random ring element of the given shape.

        This is the ``Rc``/``Rs`` random matrix of the HGS/FHGS protocols.
        """
        return self._rng.integers(0, self.modulus, size=shape, dtype=np.int64)

    # -- share / reconstruct -------------------------------------------------
    def share(self, secret: np.ndarray) -> SharedValue:
        """Split a secret tensor into two uniformly random additive shares."""
        secret = np.mod(np.asarray(secret, dtype=np.int64), self.modulus)
        server = self.random_mask(secret.shape)
        client = np.mod(secret - server, self.modulus)
        return SharedValue(client_share=client, server_share=server, modulus=self.modulus)

    def reconstruct(self, shared: SharedValue) -> np.ndarray:
        """Open a sharing back to the secret."""
        if shared.modulus != self.modulus:
            raise ParameterError(
                f"sharing modulus {shared.modulus} does not match ring {self.modulus}"
            )
        return shared.reconstruct()

    # -- linear operations on shares ------------------------------------------
    def add(self, a: SharedValue, b: SharedValue) -> SharedValue:
        """Share-wise addition: each party adds its shares locally."""
        return SharedValue(
            client_share=np.mod(a.client_share + b.client_share, self.modulus),
            server_share=np.mod(a.server_share + b.server_share, self.modulus),
            modulus=self.modulus,
        )

    def sub(self, a: SharedValue, b: SharedValue) -> SharedValue:
        """Share-wise subtraction."""
        return SharedValue(
            client_share=np.mod(a.client_share - b.client_share, self.modulus),
            server_share=np.mod(a.server_share - b.server_share, self.modulus),
            modulus=self.modulus,
        )

    def add_public(self, a: SharedValue, value: np.ndarray) -> SharedValue:
        """Add a public constant (only one party adjusts its share)."""
        return SharedValue(
            client_share=np.mod(a.client_share + np.asarray(value, dtype=np.int64), self.modulus),
            server_share=a.server_share.copy(),
            modulus=self.modulus,
        )

    def mul_public(self, a: SharedValue, value: int | np.ndarray) -> SharedValue:
        """Multiply by a public constant (both parties scale their share)."""
        value = np.asarray(value, dtype=np.int64)
        return SharedValue(
            client_share=np.mod(a.client_share * value, self.modulus),
            server_share=np.mod(a.server_share * value, self.modulus),
            modulus=self.modulus,
        )

    def matmul_public(self, a: SharedValue, matrix: np.ndarray) -> SharedValue:
        """Right-multiply a shared matrix by a public matrix.

        Matrix multiplication is linear, so each party multiplies its share
        locally; no communication is needed.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        return SharedValue(
            client_share=np.mod(a.client_share @ matrix, self.modulus),
            server_share=np.mod(a.server_share @ matrix, self.modulus),
            modulus=self.modulus,
        )

    def zeros_like(self, shape: tuple[int, ...]) -> SharedValue:
        """A trivial sharing of the all-zero tensor."""
        zero = np.zeros(shape, dtype=np.int64)
        return SharedValue(client_share=zero.copy(), server_share=zero.copy(), modulus=self.modulus)
