"""Async serving front door: submit while a drain is in flight.

:class:`~repro.runtime.serving.ServingRuntime` is strictly
submit-then-drain: callers queue requests, then some caller runs
``run_pending()`` and everyone's results appear at once.  Production traffic
does not arrive in phases -- requests trickle in *while* earlier batches are
executing.  :class:`AsyncServingRuntime` closes that gap:

* :meth:`AsyncServingRuntime.submit` returns immediately with a
  :class:`RequestHandle` (a future: ``result()`` blocks until the request's
  :class:`~repro.runtime.executor.RequestReport` is ready);
* a background **drain loop** forms batches continuously under the
  runtime's existing :class:`~repro.runtime.scheduler.SchedulingPolicy` --
  the scheduler's queue lock (shared with ``submit``) is what makes
  concurrent submission safe, and the scheduler's fairness invariant
  (single-key batches, per-key FIFO, no head starvation) holds unchanged;
* :meth:`close` flushes: it stops accepting submissions, drains everything
  still queued, and joins the loop -- no request is abandoned.

Equivalence
-----------
The protocol's logits are deterministic functions of the inputs -- they do
not depend on the sharing randomness, the batch a request lands in, or the
batch's size (``run_batch`` is bit-identical to per-request ``run``, and the
serial/pipelined drains are bit-identical to each other).  The front door
executes every batch through the same :class:`BatchExecutor` on one loop
thread, with per-key arrival order preserved by the scheduler, so **any**
interleaving of submits and drains yields reports whose logits are
bit-identical to a serial submit-all-then-``run_pending()`` pass over the
same requests -- the equivalence the test-suite asserts.

Failure isolation: an executor error fails only the handles of the batch
that raised; the loop keeps serving later batches.

Fault tolerance
---------------
Three optional layers harden the front door (all off by default, preserving
the historical behaviour exactly):

* **Retry** (``retry_policy=RetryPolicy(...)``): a *retryable* executor
  fault (see :meth:`~repro.runtime.faults.RetryPolicy.retryable`) re-submits
  the affected requests through the scheduler -- same request objects, same
  ids, same arrival order, so attribution is preserved and the retried
  results are bit-identical to a fault-free run.  Attempts are bounded, the
  backoff is deterministic per ``(seed, request id, attempt)``, and an
  optional per-request ``timeout_seconds`` budget (measured from first
  submission, shared across attempts) fails the request fast once spent.
  Non-retryable errors (``ShapeError``, ``ParameterError``, ...) fail
  immediately.
* **Typed failures**: a failed handle's :meth:`RequestHandle.result` raises
  :class:`~repro.errors.RequestFailed` carrying the request id, attempt
  count and originating fault site, with the raw executor error chained as
  ``__cause__``.
* **Admission control** (``admission=AdmissionController(...)``):
  queue-depth and inflight-bytes watermarks shed new submissions with a
  typed :class:`~repro.errors.OverloadedError` carrying a
  ``retry_after_seconds`` hint.  Shedding happens strictly at the door --
  the queue is never reordered -- so the scheduler's per-key fairness
  invariant holds unchanged for every admitted request.

:meth:`close(timeout=...)` that cannot stop the drain loop in time raises
:class:`~repro.errors.ShutdownTimeout` listing the outstanding request ids,
after failing (not abandoning) their handles with the same error.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from ..errors import OverloadedError, ProtocolError, RequestFailed, ShutdownTimeout
from ..protocols.primer import PRIMER_FPC, PrimerVariant
from .executor import RequestReport
from .faults import RetryPolicy
from .scheduler import Batch
from .serving import ServingRuntime

__all__ = ["RequestHandle", "AdmissionController", "AsyncServingRuntime"]


class AdmissionController:
    """Watermark-based load shedding for the front door.

    ``max_queue_depth`` bounds how many requests may be queued (not yet
    executing) when a new one arrives; ``max_inflight_bytes`` bounds the
    total payload bytes of admitted-but-unresolved requests.  Either
    watermark breached sheds the submission with a typed
    :class:`~repro.errors.OverloadedError` whose ``retry_after_seconds``
    hint scales with how far over the watermark the system is -- the
    client-visible backpressure signal.  ``None`` (default) leaves a
    dimension unbounded.
    """

    def __init__(
        self,
        *,
        max_queue_depth: int | None = None,
        max_inflight_bytes: int | None = None,
        retry_after_seconds: float = 0.05,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ProtocolError("max_queue_depth must be at least 1")
        if max_inflight_bytes is not None and max_inflight_bytes < 1:
            raise ProtocolError("max_inflight_bytes must be positive")
        if retry_after_seconds < 0:
            raise ProtocolError("retry_after_seconds must be non-negative")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_bytes = max_inflight_bytes
        self.retry_after_seconds = retry_after_seconds
        self._lock = threading.Lock()
        self._inflight_bytes = 0  # guarded_by: _lock
        self._admitted = 0  # guarded_by: _lock
        self._shed = 0  # guarded_by: _lock

    def admit(self, queue_depth: int, payload_bytes: int) -> None:
        """Admit one submission or shed it with an ``OverloadedError``."""
        with self._lock:
            if (
                self.max_queue_depth is not None
                and queue_depth >= self.max_queue_depth
            ):
                self._shed += 1
                overload = (queue_depth + 1) / self.max_queue_depth
                raise OverloadedError(
                    f"queue depth {queue_depth} at the "
                    f"{self.max_queue_depth}-request admission watermark",
                    retry_after_seconds=self.retry_after_seconds * overload,
                )
            if (
                self.max_inflight_bytes is not None
                and self._inflight_bytes + payload_bytes > self.max_inflight_bytes
            ):
                self._shed += 1
                overload = (
                    self._inflight_bytes + payload_bytes
                ) / self.max_inflight_bytes
                raise OverloadedError(
                    f"{self._inflight_bytes + payload_bytes} inflight payload "
                    f"bytes over the {self.max_inflight_bytes}-byte admission "
                    "watermark",
                    retry_after_seconds=self.retry_after_seconds * overload,
                )
            self._inflight_bytes += payload_bytes
            self._admitted += 1

    def release(self, payload_bytes: int) -> None:
        """Return an admitted request's payload bytes (it resolved)."""
        with self._lock:
            self._inflight_bytes = max(0, self._inflight_bytes - payload_bytes)

    @property
    def inflight_bytes(self) -> int:
        with self._lock:
            return self._inflight_bytes

    @property
    def admitted_count(self) -> int:
        with self._lock:
            return self._admitted

    @property
    def shed_count(self) -> int:
        with self._lock:
            return self._shed


class RequestHandle:
    """Future-style handle of one asynchronously submitted request."""

    def __init__(self, request_id: str, future: Future[RequestReport]) -> None:
        self.request_id = request_id
        self._future = future

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> RequestReport:
        """Block until the request's report is ready and return it."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The request's failure, or ``None`` once it completed cleanly."""
        return self._future.exception(timeout)

    def add_done_callback(self, fn) -> None:
        """Call ``fn(handle)`` once the request resolves (push-style delivery).

        Mirrors :meth:`concurrent.futures.Future.add_done_callback`: the
        callback runs on the thread that resolved the future (the drain
        loop) or immediately if already done, so it must be quick and must
        not raise.  The replica server uses this to stream reports back
        over the wire the moment they exist.
        """
        self._future.add_done_callback(lambda _future: fn(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._future.done() else "pending"
        return f"RequestHandle({self.request_id!r}, {state})"


class AsyncServingRuntime:
    """Continuous-drain front door over a :class:`ServingRuntime`.

    Parameters
    ----------
    models:
        Forwarded to a fresh :class:`ServingRuntime` (with any other
        keyword arguments) unless ``runtime`` is given.
    runtime:
        An existing runtime to front.  Mutually exclusive with ``models``
        and the runtime keyword arguments.
    linger_seconds:
        How long the drain loop may hold off executing a formable batch to
        let it fill up to ``max_batch_size`` (0, the default, executes
        eagerly -- lowest latency, smallest batches).  Lingering ends early
        the moment some key's queue depth reaches the batch size, or on
        :meth:`close`.
    retry_policy:
        Optional :class:`~repro.runtime.faults.RetryPolicy`: transient
        executor faults re-submit the affected requests (see the module
        docstring's *Fault tolerance* section).  ``None`` (default) fails
        a batch on its first error, the historical behaviour.
    admission:
        Optional :class:`AdmissionController`: watermark-based load
        shedding at submission time.  ``None`` (default) admits everything.

    The front door is a context manager; leaving the ``with`` block runs
    :meth:`close`, which flushes all queued work.
    """

    _POLL_SECONDS = 0.05  # also catches direct runtime.submit() calls

    def __init__(
        self,
        models=None,
        *,
        runtime: ServingRuntime | None = None,
        linger_seconds: float = 0.0,
        retry_policy: RetryPolicy | None = None,
        admission: AdmissionController | None = None,
        **runtime_kwargs,
    ) -> None:
        if runtime is not None and (models is not None or runtime_kwargs):
            raise ProtocolError(
                "pass either an existing runtime or construction arguments, not both"
            )
        if linger_seconds < 0:
            raise ProtocolError("linger_seconds must be non-negative")
        self.runtime = runtime if runtime is not None else ServingRuntime(
            models, **runtime_kwargs
        )
        self.linger_seconds = linger_seconds
        self.retry_policy = retry_policy
        self.admission = admission
        self._futures: dict[str, Future] = {}  # guarded_by: _lock
        #: request id -> executions so far; touched only by the drain thread
        self._attempts: dict[str, int] = {}
        #: request id -> admitted payload bytes (released on resolution)
        self._payload_bytes: dict[str, int] = {}  # guarded_by: _lock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closing = False  # guarded_by: _lock
        self._batches_executed = 0  # guarded_by: _lock
        self._retried_requests = 0  # guarded_by: _lock
        self._drain_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._drain_loop, name="frontdoor-drain", daemon=True
        )
        self._thread.start()

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        model_name: str,
        token_ids: np.ndarray,
        *,
        variant: PrimerVariant = PRIMER_FPC,
        deadline_seconds: float | None = None,
    ) -> RequestHandle:
        """Queue one full private-inference request; returns its handle.

        Safe to call from any thread at any time before :meth:`close` --
        including while the drain loop is executing earlier batches.  With
        an :class:`AdmissionController`, an over-watermark submission is
        shed with :class:`~repro.errors.OverloadedError` before anything is
        queued.
        """
        payload = np.asarray(token_ids, dtype=np.int64)
        with self._wakeup:
            self._check_open_locked()
            self._admit(payload.nbytes)
            try:
                request_id = self.runtime.submit(
                    model_name, payload, variant=variant,
                    deadline_seconds=deadline_seconds,
                )
            except BaseException:
                if self.admission is not None:
                    self.admission.release(payload.nbytes)
                raise
            handle = self._register_locked(request_id, payload.nbytes)
            self._wakeup.notify_all()
        return handle

    def submit_linear(
        self,
        weights_name: str,
        matrix: np.ndarray,
        *,
        deadline_seconds: float | None = None,
    ) -> RequestHandle:
        """Queue one private ``X @ W`` request; returns its handle."""
        payload = np.asarray(matrix, dtype=np.int64)
        with self._wakeup:
            self._check_open_locked()
            self._admit(payload.nbytes)
            try:
                request_id = self.runtime.submit_linear(
                    weights_name, payload, deadline_seconds=deadline_seconds
                )
            except BaseException:
                if self.admission is not None:
                    self.admission.release(payload.nbytes)
                raise
            handle = self._register_locked(request_id, payload.nbytes)
            self._wakeup.notify_all()
        return handle

    def _admit(self, payload_bytes: int) -> None:
        """Shed over-watermark submissions (no-op without a controller)."""
        if self.admission is not None:
            self.admission.admit(self.runtime.scheduler.pending(), payload_bytes)

    def _check_open_locked(self) -> None:
        """Reject new submissions once closing.  Caller holds ``_wakeup``."""
        if self._closing:
            raise ProtocolError("the front door is closed to new submissions")
        if not self._thread.is_alive():
            # The drain loop died on an unexpected (non-executor) error;
            # accepting more work would register handles no one resolves.
            raise ProtocolError(
                "the front door drain loop is not running"
                + (f" (died on: {self._drain_error!r})" if self._drain_error else "")
            )

    def _register_locked(self, request_id: str, payload_bytes: int = 0) -> RequestHandle:
        """Issue a handle for an admitted request.  Caller holds ``_wakeup``."""
        future: Future = Future()
        self._futures[request_id] = future
        self._payload_bytes[request_id] = payload_bytes
        return RequestHandle(request_id, future)

    def _release_admission(self, request_id: str) -> None:
        """Return a resolved request's payload bytes to the admission budget."""
        with self._lock:
            payload_bytes = self._payload_bytes.pop(request_id, None)
        if payload_bytes and self.admission is not None:
            self.admission.release(payload_bytes)

    # -- drain loop ----------------------------------------------------------
    def _drain_loop(self) -> None:
        try:
            while True:
                with self._wakeup:
                    while not self._closing and self.runtime.scheduler.pending() == 0:
                        self._wakeup.wait(timeout=self._POLL_SECONDS)
                    if self._closing and self.runtime.scheduler.pending() == 0:
                        return
                if self.linger_seconds > 0:
                    self._linger()
                batch = self.runtime.scheduler.next_batch()
                if batch is None:
                    continue
                self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - recorded, then re-raised
            self._drain_error = exc
            raise
        finally:
            self._abandon_outstanding()

    def _abandon_outstanding(self) -> None:
        """Fail every unresolved handle (the loop exited or died).

        Normal ``close()`` drains the queue first, so there is nothing to
        abandon; this is the backstop for a drain loop killed by an
        unexpected (non-executor) error -- ``result()`` must raise, never
        block forever.
        """
        with self._lock:
            leftovers = [
                (request_id, future)
                for request_id, future in self._futures.items()
                if not future.done()
            ]
            self._futures.clear()
        detail = f" (drain loop died on: {self._drain_error!r})" if self._drain_error else ""
        for request_id, future in leftovers:
            self._release_admission(request_id)
            future.set_exception(
                ProtocolError(f"front door drain loop exited before completion{detail}")
            )

    def _linger(self) -> None:
        """Hold off batch formation briefly so a batch can fill."""
        deadline = time.perf_counter() + self.linger_seconds
        capacity = self.runtime.scheduler.max_batch_size
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            with self._wakeup:
                if self._closing:
                    return
                depths = self.runtime.scheduler.queue_depths()
                if not depths or max(depths.values()) >= capacity:
                    return
                self._wakeup.wait(timeout=min(remaining, self._POLL_SECONDS))

    def _execute(self, batch: Batch) -> None:
        try:
            reports = self.runtime.executor.execute(batch)
        except Exception as exc:  # noqa: BLE001 - forwarded to the handles
            self._handle_batch_failure(batch, exc)
            return
        for report in reports:
            attempts = self._attempts.pop(report.request_id, 1)
            report.attempts = attempts
            report.retried = attempts > 1
        self.runtime._record_completions(reports)
        with self._lock:
            futures = [self._futures.pop(r.request_id, None) for r in reports]
            self._batches_executed += 1
            self._retried_requests += sum(1 for r in reports if r.retried)
        for report, future in zip(reports, futures, strict=True):
            self._release_admission(report.request_id)
            if future is not None:
                future.set_result(report)

    def _handle_batch_failure(self, batch: Batch, exc: Exception) -> None:
        """Classify one failed batch execution: retry, or fail the handles.

        Without a retry policy -- or for a non-retryable error -- the batch's
        handles fail immediately (wrapped in
        :class:`~repro.errors.RequestFailed`).  A retryable fault re-submits
        every request that still has attempts and deadline budget left
        through the scheduler (front of the queue, original order and
        attribution preserved) after the policy's deterministic backoff;
        requests out of attempts or budget fail typed instead.
        """
        policy = self.retry_policy
        if policy is None or not policy.retryable(exc):
            self._fail_batch(batch, exc)
            return
        now = time.perf_counter()
        to_retry: list[tuple] = []
        exhausted: list = []
        for request in batch.requests:
            attempts = self._attempts.get(request.request_id, 1)
            out_of_attempts = attempts >= policy.max_attempts
            out_of_budget = policy.budget_remaining(request.submitted_at, now) <= 0
            if out_of_attempts or out_of_budget:
                exhausted.append(request)
            else:
                to_retry.append((request, attempts))
        if exhausted:
            self._fail_requests(exhausted, exc)
            with self._lock:
                self._batches_executed += 1
        if not to_retry:
            return
        delay = max(
            policy.backoff_for(request.request_id, attempts)
            for request, attempts in to_retry
        )
        if delay > 0:
            time.sleep(delay)
        # Reversed + appendleft preserves the batch's arrival order at the
        # head of the queue; the original sequence stamps make the retried
        # requests the oldest of their key, so they are served next.
        for request, attempts in reversed(to_retry):
            self._attempts[request.request_id] = attempts + 1
            self.runtime.scheduler.requeue(request)

    def _fail_batch(self, batch: Batch, exc: Exception) -> None:
        """An executor error fails this batch's handles; the loop lives on."""
        self._fail_requests(batch.requests, exc)
        with self._lock:
            self._batches_executed += 1

    def _fail_requests(self, requests, exc: Exception) -> None:
        """Fail each request's handle with a typed ``RequestFailed``.

        Each future is popped exactly once, so a handle can never be
        resolved twice; the raw executor error is chained as ``__cause__``
        and its message embedded, so both the type and the text survive.
        """
        with self._lock:
            items = [
                (request, self._futures.pop(request.request_id, None))
                for request in requests
            ]
        for request, future in items:
            self._release_admission(request.request_id)
            attempts = self._attempts.pop(request.request_id, 1)
            if future is None:
                continue
            failure = RequestFailed(
                f"request {request.request_id!r} failed after {attempts} "
                f"attempt(s): {exc}",
                request_id=request.request_id,
                attempts=attempts,
                site=getattr(exc, "site", ""),
            )
            failure.__cause__ = exc
            future.set_exception(failure)

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Stop accepting submissions, flush all queued work, join the loop.

        Every handle issued before ``close`` is resolved (with a report or
        the error of its batch) by the time this returns.  Idempotent.

        With a ``timeout``, a drain loop that cannot stop in time raises
        :class:`~repro.errors.ShutdownTimeout` listing the outstanding
        request ids -- after *failing* their handles with the same error, so
        no ``result()`` call is left blocking on work that will never
        finish.
        """
        with self._wakeup:
            self._closing = True
            self._wakeup.notify_all()
        # The scheduler refuses new submissions from here on (including
        # direct runtime.submit calls that bypass the front door); batch
        # formation keeps working so the drain loop can flush the queue.
        self.runtime.scheduler.close()
        self._thread.join(timeout)
        if self._thread.is_alive():
            with self._lock:
                outstanding = tuple(
                    sorted(
                        request_id
                        for request_id, future in self._futures.items()
                        if not future.done()
                    )
                )
                leftovers = [self._futures.pop(rid) for rid in outstanding]
            error = ShutdownTimeout(
                f"front door drain loop did not stop within {timeout} seconds; "
                f"{len(outstanding)} request(s) still in flight",
                outstanding=outstanding,
            )
            for request_id, future in zip(outstanding, leftovers, strict=True):
                self._release_admission(request_id)
                future.set_exception(error)
            raise error
        # Backstop for handles registered in the race window while the
        # drain loop was dying: resolve them with the error instead of
        # letting result() block forever.
        self._abandon_outstanding()

    @property
    def closed(self) -> bool:
        with self._lock:
            closing = self._closing
        return closing and not self._thread.is_alive()

    def __enter__(self) -> AsyncServingRuntime:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observability -------------------------------------------------------
    def pending_count(self) -> int:
        """Requests queued but not yet executing."""
        return self.runtime.scheduler.pending()

    def inflight_count(self) -> int:
        """Handles issued but not yet resolved (queued or executing)."""
        with self._lock:
            return len(self._futures)

    @property
    def batches_executed(self) -> int:
        with self._lock:
            return self._batches_executed

    @property
    def retried_requests(self) -> int:
        """Requests that completed successfully after at least one retry."""
        with self._lock:
            return self._retried_requests

    def result(self, request_id: str) -> RequestReport:
        """Report of a completed request (delegates to the runtime)."""
        return self.runtime.result(request_id)
