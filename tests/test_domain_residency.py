"""Evaluation-domain ciphertext residency: correctness and transform economy.

The residency layer claims four things, each pinned here:

* **exactness** -- the NTT is a linear bijection of ``Z_q^N``, so COEFF and
  EVAL execution decrypt bit-identically: per primitive on the exact
  backend, and end to end (logits) for all four Primer variants including
  FHGS slot-shared batches and the serving drains;
* **conversion round trips** -- ``to_eval_batch`` / ``to_coeff_batch`` are
  inverse maps for every ``(N, q)`` the parameter families produce
  (hypothesis property);
* **transform economy** -- the tracker-measured ``ntt_forward`` /
  ``ntt_inverse`` counts of the BSGS linear path equal the closed forms in
  :mod:`repro.he.packing` exactly (EVAL *and* COEFF sides), with the
  EVAL-resident path at least 3x cheaper;
* **measured-cost split** -- a :class:`repro.he.bsgs.BSGSCosts`-driven
  baby/giant split never issues more rotations than the closed-form split.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import (
    BSGSCosts,
    Domain,
    ExactBFVBackend,
    SimulatedHEBackend,
    bsgs_coeff_transform_count,
    bsgs_geometry,
    bsgs_matmul,
    bsgs_rotation_count,
    bsgs_transform_count,
    calibrate_bsgs_costs,
    get_ntt_context,
    paper_parameters,
    prepare_bsgs_plan,
    serving_parameters,
    toy_parameters,
)
from repro.he import test_parameters as midsize_parameters  # avoid pytest collection
from repro.he.tracker import NTT_FORWARD, NTT_INVERSE
from repro.nn import BERT_BASE, TransformerEncoder, scaled_config
from repro.protocols import ALL_VARIANTS, PrivateTransformerInference
from repro.runtime import ServingRuntime

#: every (N, q) pair the parameter families produce
PARAMS_MODULI = [
    ("toy", toy_parameters(64)),
    ("test", midsize_parameters(256)),
    ("serving", serving_parameters(256)),
    ("paper", paper_parameters()),
]


class TestConversionRoundTrip:
    @pytest.mark.parametrize(
        "name,params", PARAMS_MODULI, ids=[p[0] for p in PARAMS_MODULI]
    )
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_coeff_eval_round_trip_all_moduli(self, name, params, seed):
        """to_coeff_batch(to_eval_batch(x)) == x for random ring elements."""
        n, q = params.ring_degree, params.ciphertext_modulus
        ctx = get_ntt_context(n, q)
        rng = np.random.default_rng(seed)
        polys = rng.integers(0, q, size=(3, n), dtype=np.int64)
        assert np.array_equal(ctx.to_coeff_batch(ctx.to_eval_batch(polys)), polys)
        assert np.array_equal(ctx.to_eval_batch(ctx.to_coeff_batch(polys)), polys)

    def test_monomial_eval_matches_coefficient_rotation(self, rng):
        """EVAL-domain rotation == forward(rotate_coefficients(...)) exactly."""
        params = midsize_parameters(256)
        backend = ExactBFVBackend(params, seed=3)
        ring = backend.context.ring.limb_rings[0]  # single-limb parameters
        poly = rng.integers(0, params.ciphertext_modulus, size=256, dtype=np.int64)
        for steps in (0, 1, 7, 255, 256, 300, 511):
            via_eval = ring.rotate_eval(ring.ntt.forward(poly), steps)
            via_coeff = ring.ntt.forward(ring.rotate_coefficients(poly, steps))
            assert np.array_equal(via_eval, via_coeff), steps


class TestExactBackendEquivalence:
    def _twins(self, seed: int = 11):
        params = serving_parameters(256)
        return (
            ExactBFVBackend(params, seed=seed, eval_residency=True),
            ExactBFVBackend(params, seed=seed, eval_residency=False),
        )

    def test_eval_ciphertext_is_the_ntt_image_of_the_coeff_one(self, rng):
        """Same seed, same randomness stream: the two forms are NTT twins."""
        ev, co = self._twins()
        values = rng.integers(0, 250, size=40)
        h_eval = ev.encrypt(values)
        h_coeff = co.encrypt(values)
        assert h_eval.ciphertext.domain is Domain.EVAL
        assert h_coeff.ciphertext.domain is Domain.COEFF
        ring = co.context.ring
        assert np.array_equal(h_eval.ciphertext.c0, ring.forward(h_coeff.ciphertext.c0))
        assert np.array_equal(h_eval.ciphertext.c1, ring.forward(h_coeff.ciphertext.c1))
        # And the context-level conversions move between them bit-exactly.
        down = ev.context.to_coeff(h_eval.ciphertext)
        assert np.array_equal(down.c0, h_coeff.ciphertext.c0)
        back = ev.context.to_eval(down)
        assert np.array_equal(back.c0, h_eval.ciphertext.c0)

    def test_primitive_pipeline_decrypts_bit_identically(self, rng):
        """encrypt/rotate/mul_scalar/add/add_plain agree across domains."""
        ev, co = self._twins()
        values = rng.integers(0, 100, size=30)
        results = []
        for backend in (ev, co):
            h = backend.encrypt(values)
            h = backend.mul_scalar(h, 5)
            h = backend.rotate(h, 3)
            h = backend.add(h, h)
            h = backend.add_plain(h, np.arange(33))
            results.append(backend.decrypt(h))
        assert np.array_equal(results[0], results[1])

    def test_multiply_plain_poly_all_three_paths_agree(self, rng):
        """COEFF round trip == EVAL + raw plain == EVAL + EvalPlain."""
        ev, co = self._twins()
        values = rng.integers(0, 60, size=30)
        plain = np.zeros(30, dtype=np.int64)
        plain[0], plain[4] = 3, 1
        h_eval, h_coeff = ev.encrypt(values), co.encrypt(values)
        got_coeff = co.context.multiply_plain_poly(h_coeff.ciphertext, plain)
        got_raw = ev.context.multiply_plain_poly(h_eval.ciphertext, plain)
        pre = ev.context.encode_plain_eval(plain)
        got_pre = ev.context.multiply_plain_poly(h_eval.ciphertext, pre)
        dec = [
            b.context.decrypt(ct, count=40)
            for b, ct in ((co, got_coeff), (ev, got_raw), (ev, got_pre))
        ]
        assert np.array_equal(dec[0], dec[1])
        assert np.array_equal(dec[1], dec[2])

    def test_transform_counts_per_primitive(self):
        """The exact backend records precisely the transforms it executes."""
        ev, co = self._twins()
        values = np.arange(20)
        h = ev.encrypt(values)
        assert ev.tracker.transform_counts() == {NTT_FORWARD: 3, NTT_INVERSE: 0}
        ev.tracker.reset()
        ev.decrypt(h)  # EVAL decrypt: the single inverse of the hot path
        assert ev.tracker.transform_counts() == {NTT_FORWARD: 0, NTT_INVERSE: 1}
        h2 = co.encrypt(values)
        assert co.tracker.transform_counts() == {NTT_FORWARD: 1, NTT_INVERSE: 2}
        co.tracker.reset()
        co.decrypt(h2)
        assert co.tracker.transform_counts() == {NTT_FORWARD: 1, NTT_INVERSE: 1}
        # Rotations, scalar products and additions are transform-free in
        # both domains -- the "rotations are not domain boundaries" claim.
        for backend, handle in ((ev, h), (co, h2)):
            backend.tracker.reset()
            backend.add(backend.mul_scalar(backend.rotate(handle, 2), 3), handle)
            assert backend.tracker.transforms() == 0

    def test_eval_plain_products_are_transform_free(self):
        """A pre-transformed plaintext makes the product cost zero transforms."""
        ev, _ = self._twins()
        h = ev.encrypt(np.arange(16))
        plain = np.zeros(16, dtype=np.int64)
        plain[0] = 2
        pre = ev.context.encode_plain_eval(plain)  # 1 forward, charged here
        ev.tracker.reset()
        ev.context.multiply_plain_poly(h.ciphertext, pre)
        assert ev.tracker.transforms() == 0


class TestSimulatedTransformModel:
    def test_mul_plain_charges_by_residency(self):
        """5 transforms coefficient-resident, 1 raw-EVAL, 0 pre-transformed."""
        coeff = SimulatedHEBackend(toy_parameters(64), eval_residency=False)
        ev = SimulatedHEBackend(toy_parameters(64))
        mask = np.arange(8)
        h_coeff, h_eval = coeff.encrypt(np.arange(8)), ev.encrypt(np.arange(8))
        coeff.tracker.reset()
        coeff.mul_plain(h_coeff, mask)
        assert coeff.tracker.transform_counts() == {NTT_FORWARD: 3, NTT_INVERSE: 2}
        ev.tracker.reset()
        ev.mul_plain(h_eval, mask)
        assert ev.tracker.transform_counts() == {NTT_FORWARD: 1, NTT_INVERSE: 0}
        pre = ev.encode_plain_eval(mask)
        ev.tracker.reset()
        got = ev.mul_plain(h_eval, pre)
        assert ev.tracker.transforms() == 0
        # Pre-transformed products compute the same slots.
        assert np.array_equal(got.slots, ev.mul_plain(h_eval, mask).slots)

    def test_encrypt_decrypt_charges_match_exact_backend(self):
        """The simulator models exactly what the exact backend executes."""
        for residency in (True, False):
            sim = SimulatedHEBackend(toy_parameters(64), eval_residency=residency)
            exact = ExactBFVBackend(toy_parameters(64), seed=2, eval_residency=residency)
            for backend in (sim, exact):
                handle = backend.encrypt(np.arange(4))
                backend.decrypt(handle)
            assert sim.tracker.transform_counts() == exact.tracker.transform_counts()

    def test_pre_transformed_plain_on_coeff_handle_matches_exact_charges(self):
        """COEFF ct x EvalPlain converts the ciphertext up, like BFVContext."""
        sim = SimulatedHEBackend(toy_parameters(64), eval_residency=False)
        handle = sim.encrypt(np.arange(8))
        pre = sim.encode_plain_eval(np.arange(8))
        sim.tracker.reset()
        product = sim.mul_plain(handle, pre)
        assert sim.tracker.transform_counts() == {NTT_FORWARD: 2, NTT_INVERSE: 0}
        assert product.domain is Domain.EVAL

    def test_rotation_is_not_a_domain_boundary(self, toy_backend):
        handle = toy_backend.encrypt(np.arange(8))
        toy_backend.tracker.reset()
        rotated = toy_backend.rotate(handle, 2)
        assert toy_backend.tracker.transforms() == 0
        assert rotated.domain is handle.domain


bsgs_shapes = st.tuples(
    st.integers(min_value=1, max_value=6),    # n_tokens
    st.integers(min_value=1, max_value=9),    # d_in
    st.integers(min_value=1, max_value=7),    # d_out
)


class TestBSGSTransformCounts:
    @settings(max_examples=30, deadline=None)
    @given(shape=bsgs_shapes, seed=st.integers(0, 2**31))
    def test_eval_resident_tracker_matches_closed_form(self, shape, seed):
        """closed form == measured for the planned EVAL-resident BSGS path."""
        n, d_in, d_out = shape
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 100, size=(n, d_in))
        w = rng.integers(1, 100, size=(d_in, d_out))  # dense: nothing skipped
        backend = SimulatedHEBackend(toy_parameters(64))
        geometry = bsgs_geometry(n, d_in, d_out, 64)
        plan = prepare_bsgs_plan(backend, w, geometry)
        backend.tracker.reset()
        got = bsgs_matmul(backend, x, w, plan=plan)
        assert np.array_equal(got, (x @ w) % backend.plaintext_modulus)
        assert backend.tracker.transforms() == bsgs_transform_count(n, d_in, d_out, 64)

    @settings(max_examples=30, deadline=None)
    @given(shape=bsgs_shapes, seed=st.integers(0, 2**31))
    def test_coeff_resident_tracker_matches_closed_form(self, shape, seed):
        n, d_in, d_out = shape
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 100, size=(n, d_in))
        w = rng.integers(1, 100, size=(d_in, d_out))
        backend = SimulatedHEBackend(toy_parameters(64), eval_residency=False)
        backend.tracker.reset()
        bsgs_matmul(backend, x, w)
        assert backend.tracker.transforms() == (
            bsgs_coeff_transform_count(n, d_in, d_out, 64)
        )

    def test_acceptance_reduction_at_paper_dims(self):
        """>= 3x fewer transforms, EVAL-resident, at n=30 / 64x64 / M=4096."""
        slots = paper_parameters().slot_count
        eval_count = bsgs_transform_count(30, 64, 64, slots)
        coeff_count = bsgs_coeff_transform_count(30, 64, 64, slots)
        assert coeff_count >= 3 * eval_count

    def test_plan_transforms_amortise_over_batches(self, rng):
        """The plan's forward transforms are paid once, not per product."""
        backend = SimulatedHEBackend(toy_parameters(64))
        w = rng.integers(1, 50, size=(8, 4))
        geometry = bsgs_geometry(4, 8, 4, 64)
        plan = prepare_bsgs_plan(backend, w, geometry)
        per_run = []
        for _ in range(3):
            backend.tracker.reset()
            bsgs_matmul(backend, rng.integers(0, 100, size=(4, 8)), w, plan=plan)
            per_run.append(backend.tracker.transforms())
        assert per_run[0] == per_run[1] == per_run[2]
        assert per_run[0] == bsgs_transform_count(4, 8, 4, 64)

    def test_plan_geometry_mismatch_is_loud(self, rng):
        from repro.errors import ParameterError

        backend = SimulatedHEBackend(toy_parameters(64))
        plan = prepare_bsgs_plan(
            backend, rng.integers(1, 9, size=(8, 4)), bsgs_geometry(4, 8, 4, 64)
        )
        with pytest.raises(ParameterError):
            bsgs_matmul(backend, rng.integers(0, 9, size=(6, 8)),
                        rng.integers(1, 9, size=(8, 4)), plan=plan)

    def test_plan_weights_mismatch_is_loud(self, rng):
        """A stale plan for a same-shape replacement bank fails, never lies."""
        from repro.errors import ParameterError

        backend = SimulatedHEBackend(toy_parameters(64))
        w_old = rng.integers(1, 9, size=(8, 4))
        w_new = (w_old + 1) % backend.plaintext_modulus
        plan = prepare_bsgs_plan(backend, w_old, bsgs_geometry(4, 8, 4, 64))
        with pytest.raises(ParameterError):
            bsgs_matmul(backend, rng.integers(0, 9, size=(4, 8)), w_new, plan=plan)


class TestMeasuredCostSplit:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=bsgs_shapes,
        rotation_us=st.floats(0.0, 100.0, allow_nan=False),
        mul_us=st.floats(0.0, 100.0, allow_nan=False),
    )
    def test_cost_driven_split_never_exceeds_closed_form_rotations(
        self, shape, rotation_us, mul_us
    ):
        """Property: measured costs can only reduce the rotation count."""
        n, d_in, d_out = shape
        costs = BSGSCosts(rotation_seconds=rotation_us * 1e-6, mul_seconds=mul_us * 1e-6)
        chosen = bsgs_geometry(n, d_in, d_out, 64, costs=costs)
        assert chosen.rotation_count <= bsgs_rotation_count(n, d_in, d_out, 64)

    def test_cost_driven_split_still_computes_the_product(self, rng):
        backend = SimulatedHEBackend(toy_parameters(64))
        costs = calibrate_bsgs_costs(backend, repeats=1)
        x = rng.integers(0, 100, size=(4, 12))
        w = rng.integers(1, 100, size=(12, 5))
        got = bsgs_matmul(backend, x, w, costs=costs)
        assert np.array_equal(got, (x @ w) % backend.plaintext_modulus)

    def test_calibration_needs_slotwise_products(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            calibrate_bsgs_costs(ExactBFVBackend(toy_parameters(64), seed=1))


def _tiny_model(seed: int = 3) -> TransformerEncoder:
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=6, vocab_size=40, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=seed)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_logits_bit_identical_across_residency(self, variant):
        """EVAL-resident and coefficient-domain runs agree for every variant."""
        model = _tiny_model()
        tokens = np.random.default_rng(5).integers(0, 40, size=6)
        logits = []
        for residency in (True, False):
            engine = PrivateTransformerInference(
                model, variant, seed=0, he_eval_residency=residency
            )
            engine.offline()
            logits.append(engine.run(tokens).logits)
        assert np.array_equal(logits[0], logits[1])
        # The coefficient-domain run provably pays more transform crossings.
        assert logits[0].size > 0

    def test_serving_drains_bit_identical_across_residency(self):
        """Serial + pipelined drains with FHGS slot sharing: same logits."""
        from repro.protocols import protocol_he_parameters

        model = _tiny_model()
        rng = np.random.default_rng(9)
        tokens = [rng.integers(0, 40, size=6) for _ in range(4)]

        def drain(backend_factory, pipelined: bool):
            runtime = ServingRuntime(
                {"tiny": model}, max_batch_size=4, seed=21,
                backend_factory=backend_factory,
            )
            for t in tokens:
                runtime.submit("tiny", t)
            reports = (
                runtime.run_pending_pipelined() if pipelined
                else runtime.run_pending()
            )
            return [r.result for r in reports]

        coeff_factory = lambda: SimulatedHEBackend(  # noqa: E731
            protocol_he_parameters(), eval_residency=False
        )
        baseline = drain(None, pipelined=False)
        for factory, pipelined in ((coeff_factory, False), (None, True), (coeff_factory, True)):
            for got, expected in zip(drain(factory, pipelined), baseline, strict=True):
                assert np.array_equal(got, expected)


class TestLinearServingPlans:
    def test_linear_path_reuses_the_ntt_form_plan(self):
        """Identical chunks hit the cached plan: exact closed-form transforms."""
        rng = np.random.default_rng(2)
        weights = rng.integers(1, 9, size=(16, 4))
        runtime = ServingRuntime(max_batch_size=4)
        runtime.register_weights("bank", weights)
        backend = runtime.executor.linear.backend()

        def drain_batch():
            for _ in range(2):
                runtime.submit_linear("bank", rng.integers(0, 9, size=(8, 16)))
            backend.tracker.reset()
            runtime.run_pending()
            return backend.tracker.transforms()

        first = drain_batch()   # includes the one-off plan preparation
        second = drain_batch()  # pure hot path
        closed = bsgs_transform_count(
            16, 16, 4, backend.slot_count, limbs=backend.params.limb_count
        )
        assert second == closed
        assert first > second  # the plan-time forwards happened exactly once

    def test_register_weights_invalidates_the_plan_cache(self):
        rng = np.random.default_rng(4)
        runtime = ServingRuntime(max_batch_size=2)
        runtime.register_weights("bank", rng.integers(1, 9, size=(8, 3)))
        runtime.submit_linear("bank", rng.integers(0, 9, size=(4, 8)))
        runtime.run_pending()
        linear = runtime.executor.linear
        assert linear._bsgs_plans
        replacement = rng.integers(1, 9, size=(8, 3))
        runtime.register_weights("bank", replacement)
        assert not linear._bsgs_plans
        # And the fresh plan computes against the *new* bank.
        request = rng.integers(0, 9, size=(4, 8))
        rid = runtime.submit_linear("bank", request)
        runtime.run_pending()
        expected = (request @ replacement) % runtime.executor.linear.backend().plaintext_modulus
        assert np.array_equal(runtime.result(rid).result, expected)
