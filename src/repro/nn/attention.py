"""Multi-head self-attention (plaintext reference).

The attention computation is the part of the Transformer that forces Primer
to introduce the FHGS protocol: ``X_Q @ X_K^T`` and ``A @ X_V`` are products
of two *encrypted* matrices, which additive HE cannot offload on its own.
The private attention protocols are tested against this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .activations import softmax
from .layers import Linear

__all__ = ["AttentionWeights", "MultiHeadSelfAttention"]


@dataclass
class AttentionWeights:
    """Per-layer projection weights for multi-head self-attention."""

    query: Linear
    key: Linear
    value: Linear
    output: Linear

    @classmethod
    def initialise(cls, dim: int, rng: np.random.Generator) -> AttentionWeights:
        return cls(
            query=Linear.initialise(dim, dim, rng),
            key=Linear.initialise(dim, dim, rng),
            value=Linear.initialise(dim, dim, rng),
            output=Linear.initialise(dim, dim, rng),
        )


@dataclass
class MultiHeadSelfAttention:
    """Scaled dot-product attention with ``num_heads`` parallel heads."""

    weights: AttentionWeights
    num_heads: int

    @classmethod
    def initialise(
        cls, dim: int, num_heads: int, rng: np.random.Generator
    ) -> MultiHeadSelfAttention:
        return cls(weights=AttentionWeights.initialise(dim, rng), num_heads=num_heads)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(n, d) -> (heads, n, d/heads)."""
        n, d = x.shape
        head_dim = d // self.num_heads
        return x.reshape(n, self.num_heads, head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(heads, n, d/heads) -> (n, d)."""
        heads, n, head_dim = x.shape
        return x.transpose(1, 0, 2).reshape(n, heads * head_dim)

    def __call__(
        self, x: np.ndarray, *, return_intermediates: bool = False
    ) -> np.ndarray | tuple[np.ndarray, dict[str, np.ndarray]]:
        """Apply multi-head self-attention to an (n, d) sequence."""
        if x.ndim != 2:
            raise ShapeError(f"attention expects an (n, d) matrix, got shape {x.shape}")
        n, d = x.shape
        if d % self.num_heads != 0:
            raise ShapeError(f"model dim {d} not divisible by {self.num_heads} heads")

        queries = self.weights.query(x)
        keys = self.weights.key(x)
        values = self.weights.value(x)

        q_heads = self._split_heads(queries)
        k_heads = self._split_heads(keys)
        v_heads = self._split_heads(values)

        scale = 1.0 / np.sqrt(q_heads.shape[-1])
        scores = np.einsum("hqd,hkd->hqk", q_heads, k_heads) * scale
        attention = softmax(scores, axis=-1)
        context = np.einsum("hqk,hkd->hqd", attention, v_heads)
        merged = self._merge_heads(context)
        output = self.weights.output(merged)

        if not return_intermediates:
            return output
        intermediates = {
            "queries": queries,
            "keys": keys,
            "values": values,
            "scores": scores,
            "attention": attention,
            "context": merged,
        }
        return output, intermediates
