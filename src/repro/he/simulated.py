"""Functional (simulated) HE backend with faithful operation accounting.

This backend stores packed slot vectors in the clear and applies homomorphic
operations as plain modular arithmetic, while recording every operation on
the shared :class:`~repro.he.tracker.OperationTracker`.  It plays the role
TenSEAL/SEAL would play in a deployment: the *values* it produces are exactly
what the real scheme would decrypt to (the exact backend in
:mod:`repro.he.bfv` verifies this equivalence in the test-suite), and the
*operation counts* it records are what the latency and communication models
consume.

A simulated noise budget is still tracked so that parameter-exhaustion bugs
(too many chained plaintext multiplications for the chosen modulus) surface
in tests rather than silently producing results a real deployment could not.

Transform accounting: the deployed scheme's hot cost is the NTT, so every
simulated handle carries a :class:`~repro.he.ntt.Domain` and every operation
charges the ``ntt_forward`` / ``ntt_inverse`` counts (one per *limb
polynomial*; a ciphertext is two polynomials of ``params.limb_count`` RNS
limbs each) that the corresponding exact-backend operation actually
executes.  With the default evaluation-domain residency
the linear hot path charges zero transforms per plaintext product (the
plan-time :meth:`SimulatedHEBackend.encode_plain_eval` pre-transformation
pays one forward, once); constructing the backend with
``eval_residency=False`` models the historical coefficient-resident
pipeline, where every plaintext product pays the full five-transform round
trip.  Slot *values* are identical in both modes -- residency only changes
what the tracker records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import NoiseBudgetExhausted, ParameterError
from .backend import HEBackend
from .ntt import Domain
from .params import BFVParameters, paper_parameters
from .tracker import OperationTracker

__all__ = ["SimulatedCiphertext", "SimulatedEvalPlain", "SimulatedHEBackend"]


@dataclass
class SimulatedCiphertext:
    """A simulated ciphertext: packed residues plus a noise-bound estimate.

    ``domain`` mirrors the residency of the deployed ciphertext this handle
    stands for; the slot values are representation-independent (the NTT is
    a bijection), so it only drives the transform accounting.
    """

    slots: np.ndarray
    noise_bound: float
    domain: Domain = Domain.EVAL

    @property
    def length(self) -> int:
        return int(self.slots.size)


@dataclass(frozen=True)
class SimulatedEvalPlain:
    """A plaintext vector pre-transformed (at plan time) into EVAL form.

    Passing one of these to :meth:`SimulatedHEBackend.mul_plain` models a
    product against an NTT-form plaintext cached in the plan: zero
    transforms at use time.  The one forward transform was charged when
    :meth:`SimulatedHEBackend.encode_plain_eval` built it.
    """

    slots: np.ndarray

    @property
    def length(self) -> int:
        return int(self.slots.size)


class SimulatedHEBackend(HEBackend):
    """Slot-accurate functional simulation of the SEAL PAHE layer."""

    def __init__(self, params: BFVParameters | None = None, *,
                 tracker: OperationTracker | None = None,
                 eval_residency: bool = True) -> None:
        self.params = params if params is not None else paper_parameters()
        self.tracker = tracker if tracker is not None else OperationTracker()
        self._fresh_noise = self.params.error_stddev * (
            2 * self.params.ring_degree + 2
        )
        self._domain = Domain.EVAL if eval_residency else Domain.COEFF
        # Every transform charge below is per limb polynomial: the deployed
        # double-CRT scheme runs one <=30-bit NTT per RNS limb.
        self._limbs = self.params.limb_count

    @property
    def supports_slotwise_plain(self) -> bool:
        """Slot-wise plaintext products are native here (CRT-batched SEAL)."""
        return True

    @property
    def eval_resident(self) -> bool:
        """True when fresh handles are modeled as NTT-resident (default)."""
        return self._domain is Domain.EVAL

    # -- helpers -----------------------------------------------------------
    def _check_length(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ParameterError("expected a 1-D residue vector")
        if values.size > self.params.slot_count:
            raise ParameterError(
                f"cannot pack {values.size} values into "
                f"{self.params.slot_count} slots"
            )
        return np.mod(values, self.params.plaintext_modulus)

    def noise_budget(self, handle: SimulatedCiphertext) -> float:
        """Bits of noise headroom remaining (same analytic model as BFV).

        The limit is computed from the *deployed* modulus size (e.g. 60 bits
        for a Gazelle-style SEAL instantiation), since that is the scheme
        whose behaviour this backend simulates.
        """
        limit = (2.0 ** self.params.deployed_log_q) / (2.0 * self.params.plaintext_modulus)
        if handle.noise_bound <= 0:
            return math.log2(limit)
        return math.log2(limit) - math.log2(handle.noise_bound)

    # -- transform accounting ------------------------------------------------
    def _charge_encrypt_transforms(self, count: int = 1) -> None:
        """Transforms one encryption executes (see :meth:`BFVContext.encrypt_batch`).

        Three per limb per ciphertext either way: EVAL-native encryption
        pushes the message/noise polynomials forward, COEFF encryption pulls
        the public-key products back through two inverses.
        """
        if self._domain is Domain.EVAL:
            self.tracker.record_transforms(forward=3 * count * self._limbs)
        else:
            self.tracker.record_transforms(
                forward=count * self._limbs, inverse=2 * count * self._limbs
            )

    def _charge_decrypt_transforms(self, handles) -> None:
        """One inverse per limb per EVAL ciphertext; forward + inverse per COEFF one."""
        eval_count = sum(1 for h in handles if h.domain is Domain.EVAL)
        coeff_count = len(handles) - eval_count
        self.tracker.record_transforms(
            forward=coeff_count * self._limbs,
            inverse=(coeff_count + eval_count) * self._limbs,
        )

    def _binary_domain(self, a: SimulatedCiphertext, b: SimulatedCiphertext) -> Domain:
        """Result domain of ``a ± b``; mixed operands charge the crossing.

        Matches :meth:`BFVContext._aligned`: the COEFF operand converts up
        to EVAL (two transforms -- one per polynomial), so a transform-lazy
        pipeline that never mixes domains is charged nothing.
        """
        if a.domain is b.domain:
            return a.domain
        self.tracker.record_transforms(forward=2 * self._limbs)
        return Domain.EVAL

    # -- HEBackend interface -------------------------------------------------
    def encrypt(self, values: np.ndarray) -> SimulatedCiphertext:
        values = self._check_length(values)
        self.tracker.record("encrypt", bytes_moved=self.params.ciphertext_bytes)
        self._charge_encrypt_transforms()
        return SimulatedCiphertext(
            slots=values.copy(), noise_bound=self._fresh_noise, domain=self._domain
        )

    def decrypt(self, handle: SimulatedCiphertext) -> np.ndarray:
        if self.noise_budget(handle) <= 0:
            raise NoiseBudgetExhausted(
                "simulated ciphertext noise budget exhausted; the chosen BFV "
                "parameters could not decrypt this result"
            )
        self.tracker.record("decrypt")
        self._charge_decrypt_transforms([handle])
        return handle.slots.copy()

    def add(self, a: SimulatedCiphertext, b: SimulatedCiphertext) -> SimulatedCiphertext:
        self.tracker.record("he_add")
        domain = self._binary_domain(a, b)
        slots = self._aligned_binary(a, b, np.add)
        return SimulatedCiphertext(
            slots=slots, noise_bound=a.noise_bound + b.noise_bound, domain=domain
        )

    def sub(self, a: SimulatedCiphertext, b: SimulatedCiphertext) -> SimulatedCiphertext:
        self.tracker.record("he_add")
        domain = self._binary_domain(a, b)
        slots = self._aligned_binary(a, b, np.subtract)
        return SimulatedCiphertext(
            slots=slots, noise_bound=a.noise_bound + b.noise_bound, domain=domain
        )

    def _aligned_binary(self, a: SimulatedCiphertext, b: SimulatedCiphertext, op) -> np.ndarray:
        t = self.params.plaintext_modulus
        length = max(a.length, b.length)
        left = np.zeros(length, dtype=np.int64)
        right = np.zeros(length, dtype=np.int64)
        left[: a.length] = a.slots
        right[: b.length] = b.slots
        return np.mod(op(left, right), t)

    def add_plain(self, a: SimulatedCiphertext, values: np.ndarray) -> SimulatedCiphertext:
        values = self._check_length(values)
        self.tracker.record("he_add_plain")
        if a.domain is Domain.EVAL:
            # The scaled message polynomial crosses into the evaluation
            # domain once (per limb); the ciphertext itself never leaves it.
            self.tracker.record_transforms(forward=self._limbs)
        length = max(a.length, values.size)
        left = np.zeros(length, dtype=np.int64)
        right = np.zeros(length, dtype=np.int64)
        left[: a.length] = a.slots
        right[: values.size] = values
        slots = np.mod(left + right, self.params.plaintext_modulus)
        return SimulatedCiphertext(
            slots=slots, noise_bound=a.noise_bound + 1.0, domain=a.domain
        )

    def mul_scalar(self, a: SimulatedCiphertext, scalar: int) -> SimulatedCiphertext:
        t = self.params.plaintext_modulus
        scalar = int(scalar) % t
        centered = scalar - t if scalar > t // 2 else scalar
        self.tracker.record("he_mul_plain")
        return SimulatedCiphertext(
            slots=np.mod(a.slots * centered, t),
            noise_bound=a.noise_bound * max(1, abs(centered)),
            domain=a.domain,
        )

    def encode_plain_eval(self, values: np.ndarray) -> SimulatedEvalPlain:
        """Pre-transform a plaintext vector at plan time (one forward per limb, once)."""
        values = self._check_length(values)
        self.tracker.record_transforms(forward=self._limbs)
        return SimulatedEvalPlain(slots=values.copy())

    def mul_plain(
        self, a: SimulatedCiphertext, values: np.ndarray | SimulatedEvalPlain
    ) -> SimulatedCiphertext:
        pre_transformed = isinstance(values, SimulatedEvalPlain)
        if pre_transformed:
            values = values.slots
        values = self._check_length(values)
        t = self.params.plaintext_modulus
        centered = np.where(values > t // 2, values - t, values)
        length = max(a.length, values.size)
        left = np.zeros(length, dtype=np.int64)
        right = np.zeros(length, dtype=np.int64)
        left[: a.length] = a.slots
        right[: values.size] = centered
        self.tracker.record("he_mul_plain")
        # Transform economy of the deployed slot-wise product (products are
        # pointwise in EVAL form), mirroring BFVContext.multiply_plain_poly
        # charge for charge: an EVAL-resident ciphertext pays one forward
        # for a raw plaintext and nothing for a pre-transformed one; a
        # COEFF-resident ciphertext pays the full round trip for a raw
        # plaintext (two forwards for the ciphertext pair, one for the
        # plaintext, two inverses back) but converts *up* for a
        # pre-transformed one (two forwards, result stays EVAL-resident).
        result_domain = a.domain
        if pre_transformed:
            if a.domain is not Domain.EVAL:
                self.tracker.record_transforms(forward=2 * self._limbs)
                result_domain = Domain.EVAL
        elif a.domain is Domain.EVAL:
            self.tracker.record_transforms(forward=self._limbs)
        else:
            self.tracker.record_transforms(
                forward=3 * self._limbs, inverse=2 * self._limbs
            )
        norm = float(np.max(np.abs(centered))) if centered.size else 1.0
        return SimulatedCiphertext(
            slots=np.mod(left * right, t),
            noise_bound=a.noise_bound * max(1.0, norm),
            domain=result_domain,
        )

    def fused_mul_accumulate(
        self, terms: list[tuple[SimulatedCiphertext, np.ndarray | SimulatedEvalPlain]]
    ) -> SimulatedCiphertext | None:
        """Fused ``sum_k mul_plain(handle_k, operand_k)`` (BSGS inner loop).

        One stacked product-and-sum with a single final reduction instead
        of per-diagonal intermediate ciphertexts.  ``mod`` distributes over
        the sum, so slots are bit-identical to the reference loop; noise is
        accumulated in the loop's float order and the tracker receives the
        same ``he_mul_plain``/``he_add``/transform charges.  Falls back to
        the loop under the ``reference`` tier or for non-uniform terms
        (mixed operand kinds, domains or lengths).
        """
        if not terms:
            return None
        from . import kernels

        tier = kernels.active_tier(self.params.kernel_tier)
        if not tier.fused or len(terms) == 1:
            return super().fused_mul_accumulate(terms)
        handles = [handle for handle, _ in terms]
        operands = [operand for _, operand in terms]
        pre_transformed = isinstance(operands[0], SimulatedEvalPlain)
        domain = handles[0].domain
        if any(
            isinstance(operand, SimulatedEvalPlain) is not pre_transformed
            for operand in operands
        ) or any(handle.domain is not domain for handle in handles):
            return super().fused_mul_accumulate(terms)
        t = self.params.plaintext_modulus
        values = [
            operand.slots if pre_transformed else np.asarray(operand, dtype=np.int64)
            for operand in operands
        ]
        length0 = handles[0].length
        size0 = values[0].size
        if any(handle.length != length0 for handle in handles) or any(
            value.size != size0 for value in values
        ):
            return super().fused_mul_accumulate(terms)
        k = len(terms)
        if k * (t // 2) * (t - 1) >= 1 << 62:
            # The unreduced int64 sum of products could overflow; take the
            # reference loop, which reduces after every term.
            return super().fused_mul_accumulate(terms)
        checked = np.stack([self._check_length(value) for value in values])
        centered = np.where(checked > t // 2, checked - t, checked)     # (k, size0)
        length = max(length0, size0)
        left = np.zeros((k, length), dtype=np.int64)
        right = np.zeros((k, length), dtype=np.int64)
        left[:, :length0] = np.stack([handle.slots for handle in handles])
        right[:, :size0] = centered
        slots = np.mod(np.sum(left * right, axis=0), t)
        # Accounting: identical totals to k mul_plain calls + (k-1) adds.
        self.tracker.record("he_mul_plain", count=k)
        result_domain = domain
        if pre_transformed:
            if domain is not Domain.EVAL:
                self.tracker.record_transforms(forward=2 * self._limbs * k)
                result_domain = Domain.EVAL
        elif domain is Domain.EVAL:
            self.tracker.record_transforms(forward=self._limbs * k)
        else:
            self.tracker.record_transforms(
                forward=3 * self._limbs * k, inverse=2 * self._limbs * k
            )
        self.tracker.record("he_add", count=k - 1)
        noise = 0.0
        for index, handle in enumerate(handles):
            norm = (
                float(np.max(np.abs(centered[index]))) if centered[index].size else 1.0
            )
            term_noise = handle.noise_bound * max(1.0, norm)
            noise = term_noise if index == 0 else noise + term_noise
        return SimulatedCiphertext(
            slots=slots, noise_bound=noise, domain=result_domain
        )

    def rotate(self, a: SimulatedCiphertext, steps: int) -> SimulatedCiphertext:
        """Cyclic slot rotation over the handle's *packed length*.

        The rotation period is ``a.length`` (the number of slots the caller
        packed), not the ring's full slot count.  A deployed scheme realises
        a rotation that is cyclic over a packed sub-vector with the standard
        Gazelle-style general rotation -- two Galois automorphisms plus a
        masking plaintext product -- or by padding the packed length to
        divide the slot structure; either way it is one rotation-key
        application per call, which is what the tracker charges.  The BSGS
        kernel (:mod:`repro.he.bsgs`) depends on this period contract.
        """
        self.tracker.record("he_rotate")
        # Transform-free in both domains: a Galois automorphism permutes the
        # evaluation points of an EVAL-resident ciphertext and the
        # coefficients of a COEFF-resident one (key switching is what
        # ``he_rotate``'s latency constant charges).
        return SimulatedCiphertext(
            slots=np.roll(a.slots, -steps),
            noise_bound=a.noise_bound + self._fresh_noise,
            domain=a.domain,
        )

    def zero(self, length: int) -> SimulatedCiphertext:
        self.tracker.record("encrypt", bytes_moved=self.params.ciphertext_bytes)
        self._charge_encrypt_transforms()
        return SimulatedCiphertext(
            slots=np.zeros(max(1, length), dtype=np.int64),
            noise_bound=self._fresh_noise,
            domain=self._domain,
        )

    # -- batch interface -----------------------------------------------------
    def encrypt_batch(self, values_list: list[np.ndarray]) -> list[SimulatedCiphertext]:
        """Encrypt many vectors; accounting stays one ``encrypt`` per ciphertext."""
        if not values_list:
            return []
        checked = [self._check_length(values) for values in values_list]
        self.tracker.record(
            "encrypt",
            count=len(checked),
            bytes_moved=len(checked) * self.params.ciphertext_bytes,
        )
        self._charge_encrypt_transforms(len(checked))
        return [
            SimulatedCiphertext(
                slots=values.copy(), noise_bound=self._fresh_noise,
                domain=self._domain,
            )
            for values in checked
        ]

    def decrypt_batch(self, handles: list[SimulatedCiphertext]) -> list[np.ndarray]:
        if not handles:
            return []
        for handle in handles:
            if self.noise_budget(handle) <= 0:
                raise NoiseBudgetExhausted(
                    "simulated ciphertext noise budget exhausted; the chosen BFV "
                    "parameters could not decrypt this result"
                )
        self.tracker.record("decrypt", count=len(handles))
        self._charge_decrypt_transforms(handles)
        return [handle.slots.copy() for handle in handles]
