"""Beaver multiplication triples over the fixed-point ring.

The FHGS protocol (paper Section III-B) is "inspired by Beaver's triple
method": the ciphertext-ciphertext products of attention are reduced to
plaintext operations on masked values plus pre-computed encrypted products of
random masks.  This module provides the classic secret-shared Beaver triple
machinery in its own right:

* a trusted-dealer generator (used by tests and by the GCFormer baseline),
* an HE-backed generator that produces the triples the way Primer does --
  the client encrypts its mask, the server multiplies under encryption --
  so the offline cost of triple generation is charged to the HE tracker,
* the online multiplication protocol on additive shares.

Matrix triples (``A @ B = C`` with matrix-shaped masks) are supported because
attention needs products of whole matrices, not just scalars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..he.backend import HEBackend
from ..he.matmul import decrypt_matrix, encrypt_matrix_columns, enc_times_plain
from .sharing import AdditiveSharing, SharedValue

__all__ = ["BeaverTriple", "TrustedDealer", "HETripleGenerator", "beaver_matmul"]


@dataclass(frozen=True)
class BeaverTriple:
    """A secret-shared matrix multiplication triple ``C = A @ B``."""

    a: SharedValue
    b: SharedValue
    c: SharedValue

    @property
    def left_shape(self) -> tuple[int, ...]:
        return self.a.shape

    @property
    def right_shape(self) -> tuple[int, ...]:
        return self.b.shape


class TrustedDealer:
    """Generates Beaver triples with a trusted dealer (test / baseline use).

    A deployment would replace this with the HE-based generator below (or an
    OT-based one); the online protocol is identical either way.
    """

    def __init__(self, sharing: AdditiveSharing, *, seed: int | None = None):
        self.sharing = sharing
        self._rng = np.random.default_rng(seed)

    def generate(
        self, left_shape: tuple[int, int], right_shape: tuple[int, int]
    ) -> BeaverTriple:
        """Sample random ``A``, ``B`` and share ``A``, ``B`` and ``A @ B``."""
        if left_shape[1] != right_shape[0]:
            raise ShapeError(
                f"incompatible triple shapes {left_shape} and {right_shape}"
            )
        modulus = self.sharing.modulus
        a = self._rng.integers(0, modulus, size=left_shape, dtype=np.int64)
        b = self._rng.integers(0, modulus, size=right_shape, dtype=np.int64)
        c = np.mod(a @ b, modulus)
        return BeaverTriple(
            a=self.sharing.share(a), b=self.sharing.share(b), c=self.sharing.share(c)
        )


class HETripleGenerator:
    """Generates Beaver triples using the additive-HE backend (offline phase).

    The client samples its mask share, encrypts it column-packed and sends it
    to the server; the server multiplies the encrypted mask by its own mask
    share under encryption and re-randomises with a fresh mask, exactly the
    flow the FHGS offline phase uses.  Every HE operation lands on the
    backend's tracker, so the offline cost of triple generation is measured
    rather than assumed.
    """

    def __init__(self, sharing: AdditiveSharing, backend: HEBackend, *, seed: int | None = None):
        self.sharing = sharing
        self.backend = backend
        self._rng = np.random.default_rng(seed)

    def generate(
        self, left_shape: tuple[int, int], right_shape: tuple[int, int]
    ) -> BeaverTriple:
        if left_shape[1] != right_shape[0]:
            raise ShapeError(
                f"incompatible triple shapes {left_shape} and {right_shape}"
            )
        modulus = self.sharing.modulus
        rng = self._rng

        # Each party samples its additive share of the random masks A and B.
        a_client = rng.integers(0, modulus, size=left_shape, dtype=np.int64)
        a_server = rng.integers(0, modulus, size=left_shape, dtype=np.int64)
        b_client = rng.integers(0, modulus, size=right_shape, dtype=np.int64)
        b_server = rng.integers(0, modulus, size=right_shape, dtype=np.int64)

        # C = (Ac + As) @ (Bc + Bs).  The cross terms Ac@Bs and As@Bc need the
        # HE round-trip; the pure-local terms are computed by each party.
        local_client = np.mod(a_client @ b_client, modulus)
        local_server = np.mod(a_server @ b_server, modulus)

        # Client encrypts Ac (column-packed); server multiplies by Bs.
        enc_ac = encrypt_matrix_columns(self.backend, np.mod(a_client, modulus))
        enc_cross1 = enc_times_plain(self.backend, enc_ac, np.mod(b_server, modulus))
        cross1 = np.mod(decrypt_matrix(self.backend, enc_cross1), modulus)

        # Client encrypts Bc^T-style column packing of As side: the server
        # holds As, the client holds Bc, so this time the server encrypts.
        enc_as = encrypt_matrix_columns(self.backend, np.mod(a_server, modulus))
        enc_cross2 = enc_times_plain(self.backend, enc_as, np.mod(b_client, modulus))
        cross2 = np.mod(decrypt_matrix(self.backend, enc_cross2), modulus)

        c_total = np.mod(local_client + local_server + cross1 + cross2, modulus)
        # Re-share C so neither party learns it in the clear.
        c_server = rng.integers(0, modulus, size=c_total.shape, dtype=np.int64)
        c_client = np.mod(c_total - c_server, modulus)

        return BeaverTriple(
            a=SharedValue(a_client, a_server, modulus),
            b=SharedValue(b_client, b_server, modulus),
            c=SharedValue(c_client, c_server, modulus),
        )


def beaver_matmul(
    sharing: AdditiveSharing,
    x: SharedValue,
    y: SharedValue,
    triple: BeaverTriple,
) -> tuple[SharedValue, dict[str, int]]:
    """Online Beaver multiplication of two shared matrices.

    Both parties open ``E = X - A`` and ``F = Y - B`` (two ring elements of
    the operand sizes cross the wire), then compute shares of

        X @ Y = C + E @ B + A @ F + E @ F

    with ``E @ F`` added by one party only.  Returns the result sharing plus
    a small dict of communication statistics (elements opened), which the
    cost model converts to bytes.
    """
    if x.shape[1] != y.shape[0]:
        raise ShapeError(f"cannot multiply shared {x.shape} by {y.shape}")
    if triple.left_shape != x.shape or triple.right_shape != y.shape:
        raise ShapeError(
            f"triple shapes {triple.left_shape}/{triple.right_shape} do not "
            f"match operands {x.shape}/{y.shape}"
        )
    modulus = sharing.modulus

    # Each party computes its share of E and F locally, then they are opened.
    e = sharing.sub(x, triple.a).reconstruct()
    f = sharing.sub(y, triple.b).reconstruct()

    # Server-side share: C_s + E @ B_s + A_s @ F + E @ F
    server = np.mod(
        triple.c.server_share
        + e @ triple.b.server_share
        + triple.a.server_share @ f
        + e @ f,
        modulus,
    )
    # Client-side share: C_c + E @ B_c + A_c @ F
    client = np.mod(
        triple.c.client_share + e @ triple.b.client_share + triple.a.client_share @ f,
        modulus,
    )
    stats = {"opened_elements": int(e.size + f.size)}
    return SharedValue(client, server, modulus), stats
