"""A light-weight fixed-point tensor wrapper.

:class:`FixedTensor` bundles an ``int64`` residue array with its
:class:`~repro.fixedpoint.encoding.FixedPointFormat`.  It is used at the
boundary between the floating-point Transformer substrate (``repro.nn``) and
the integer cryptographic substrates: the quantised model
(:mod:`repro.nn.quantize`) produces ``FixedTensor`` weights and activations,
and the protocols operate on the raw residues.

Only the operations actually needed by the protocols are implemented: add,
subtract, negate, matmul-with-truncation, elementwise multiply, and
conversion to/from floating point.  Anything else should be done in float and
re-encoded, mirroring how a real deployment would prepare plaintext weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .encoding import (
    DEFAULT_FORMAT,
    FixedPointFormat,
    decode,
    encode,
    fixed_matmul,
    fixed_mul,
    to_unsigned,
)

__all__ = ["FixedTensor"]


@dataclass(frozen=True)
class FixedTensor:
    """An immutable fixed-point tensor (residues + format)."""

    residues: np.ndarray
    fmt: FixedPointFormat = DEFAULT_FORMAT

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "residues", np.asarray(self.residues, dtype=np.int64)
        )

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_float(
        cls, values: np.ndarray | float, fmt: FixedPointFormat = DEFAULT_FORMAT
    ) -> FixedTensor:
        """Quantise a floating-point array into a ``FixedTensor``."""
        return cls(encode(values, fmt), fmt)

    @classmethod
    def zeros(
        cls, shape: tuple[int, ...], fmt: FixedPointFormat = DEFAULT_FORMAT
    ) -> FixedTensor:
        """A tensor of fixed-point zeros."""
        return cls(np.zeros(shape, dtype=np.int64), fmt)

    # -- properties --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.residues.shape)

    @property
    def size(self) -> int:
        return int(self.residues.size)

    def to_float(self) -> np.ndarray:
        """Decode back to floating point."""
        return decode(self.residues, self.fmt)

    # -- arithmetic --------------------------------------------------------
    def _check_compatible(self, other: FixedTensor) -> None:
        if self.fmt != other.fmt:
            raise ShapeError(
                f"fixed-point formats differ: {self.fmt} vs {other.fmt}"
            )

    def __add__(self, other: FixedTensor) -> FixedTensor:
        self._check_compatible(other)
        return FixedTensor(
            to_unsigned(self.residues + other.residues, self.fmt), self.fmt
        )

    def __sub__(self, other: FixedTensor) -> FixedTensor:
        self._check_compatible(other)
        return FixedTensor(
            to_unsigned(self.residues - other.residues, self.fmt), self.fmt
        )

    def __neg__(self) -> FixedTensor:
        return FixedTensor(to_unsigned(-self.residues, self.fmt), self.fmt)

    def elementwise_mul(self, other: FixedTensor) -> FixedTensor:
        """Hadamard product with truncation back to the common format."""
        self._check_compatible(other)
        return FixedTensor(fixed_mul(self.residues, other.residues, self.fmt), self.fmt)

    def matmul(self, other: FixedTensor) -> FixedTensor:
        """Matrix product with a single post-accumulation truncation."""
        self._check_compatible(other)
        if self.residues.shape[-1] != other.residues.shape[0]:
            raise ShapeError(
                f"matmul shape mismatch: {self.shape} @ {other.shape}"
            )
        return FixedTensor(
            fixed_matmul(self.residues, other.residues, self.fmt), self.fmt
        )

    def reshape(self, *shape: int) -> FixedTensor:
        return FixedTensor(self.residues.reshape(*shape), self.fmt)

    def transpose(self) -> FixedTensor:
        return FixedTensor(self.residues.T.copy(), self.fmt)

    # -- diagnostics -------------------------------------------------------
    def max_abs_error(self, reference: np.ndarray) -> float:
        """Largest absolute deviation of the decoded tensor from ``reference``."""
        return float(np.max(np.abs(self.to_float() - np.asarray(reference))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FixedTensor(shape={self.shape}, total_bits={self.fmt.total_bits}, "
            f"frac_bits={self.fmt.frac_bits})"
        )
