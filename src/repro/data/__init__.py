"""Synthetic datasets and metrics (GLUE/SQuAD stand-ins)."""

from .metrics import accuracy, agreement, f1_binary
from .synthetic import TASK_SPECS, SyntheticExample, SyntheticTask, make_task

__all__ = [
    "SyntheticExample",
    "SyntheticTask",
    "TASK_SPECS",
    "accuracy",
    "agreement",
    "f1_binary",
    "make_task",
]
