"""GCFormer baseline: garbled-circuit-only Transformer inference.

The paper builds "GCFormer" by compiling the whole Transformer into a binary
circuit evaluated under Yao's garbled circuits (following DeepSecure).  It is
accurate -- GC evaluates the exact functions -- but every multiply-accumulate
of every matrix product becomes a garbled multiplier, which is why its
offline (garbling/transfer) and online (evaluation) latencies in Table I are
the largest of all schemes (7.5 K s offline, 9.8 K s online).

The gate counts below use the same :class:`~repro.protocols.nonlinear.GCCostModel`
primitives as Primer's GC steps, applied to *every* operation of the model
rather than only the non-polynomial ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costmodel.constants import CostConstants, DEFAULT_COSTS
from ..nn.config import TransformerConfig
from ..protocols.nonlinear import GCCostModel

__all__ = ["GCFormerBaseline"]


@dataclass
class GCFormerBaseline:
    """Gate-count accounting for an all-GC Transformer."""

    config: TransformerConfig
    constants: CostConstants = DEFAULT_COSTS
    word_bits: int = 15
    #: fraction of per-gate work done by the garbler ahead of time
    garble_fraction: float = 0.45

    def and_gate_count(self) -> float:
        """Total AND gates of the fully garbled model."""
        cfg = self.config
        gc = GCCostModel(self.word_bits)
        n, d, vocab = cfg.seq_len, cfg.embed_dim, cfg.vocab_size
        heads, head_dim, blocks, ffn = (
            cfg.num_heads, cfg.head_dim, cfg.num_blocks, cfg.hidden_ffn_dim,
        )

        def matmul_gates(rows: int, inner: int, cols: int) -> float:
            macs = rows * inner * cols
            return macs * (gc.mul_gates + gc.add_gates)

        gates = matmul_gates(n, vocab, d)  # embedding
        for _ in range(blocks):
            gates += 3 * matmul_gates(n, d, d)                      # QKV
            gates += heads * matmul_gates(n, head_dim, n)            # Q K^T
            gates += heads * n * gc.softmax_gates(n)                 # SoftMax
            gates += heads * matmul_gates(n, n, head_dim)            # A V
            gates += matmul_gates(n, d, d)                           # output proj
            gates += matmul_gates(n, d, ffn) + matmul_gates(n, ffn, d)
            gates += n * ffn * gc.gelu_gates()
            gates += 2 * n * gc.layernorm_gates(d)
        gates += matmul_gates(1, d, d) + gc.tanh_gates() * d          # pooler
        gates += matmul_gates(1, d, cfg.num_labels)                   # classifier
        return gates

    # -- latency -----------------------------------------------------------------
    def offline_seconds(self) -> float:
        """Garbling and garbled-table transfer (can be done ahead of time)."""
        gates = self.and_gate_count()
        c = self.constants
        garble = gates * c.gc_gate_seconds * self.garble_fraction / (1 - self.garble_fraction)
        transfer = self.table_gigabytes() * 1e9 / c.network_bandwidth_bytes_per_second
        return garble + transfer

    def online_seconds(self) -> float:
        """Evaluation of the garbled circuit plus input-label transfer."""
        gates = self.and_gate_count()
        c = self.constants
        label_bytes = self.config.seq_len * self.config.vocab_size * 16
        return gates * c.gc_gate_seconds + label_bytes / c.network_bandwidth_bytes_per_second

    def total_seconds(self) -> float:
        return self.offline_seconds() + self.online_seconds()

    def table_gigabytes(self) -> float:
        """Size of the garbled tables shipped to the evaluator."""
        return self.and_gate_count() * 4 * 16 / 1e9
