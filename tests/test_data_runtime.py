"""Tests for the synthetic datasets, metrics and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TASK_SPECS, accuracy, agreement, f1_binary, make_task
from repro.errors import ParameterError
from repro.nn import BERT_BASE, TransformerEncoder, WordPieceTokenizer, scaled_config
from repro.runtime import evaluate_accuracy


@pytest.fixture(scope="module")
def eval_model():
    """A small model whose vocabulary is large enough for the tokenizer."""
    config = scaled_config(
        BERT_BASE, embed_dim=16, num_heads=2, seq_len=12, vocab_size=300, num_blocks=1
    )
    return TransformerEncoder.initialise(config, seed=5)


@pytest.fixture(scope="module")
def tokenizer(eval_model):
    return WordPieceTokenizer(vocab_size=eval_model.config.vocab_size,
                              max_length=eval_model.config.seq_len)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_agreement_symmetric(self):
        a, b = np.array([0, 1, 2]), np.array([0, 1, 1])
        assert agreement(a, b) == agreement(b, a)

    def test_f1(self):
        preds = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        assert f1_binary(preds, labels) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestSyntheticTasks:
    def test_all_paper_tasks_exist(self):
        assert set(TASK_SPECS) == {"mnli-m", "mrpc", "sst-2", "squad1", "squad2"}

    def test_task_generation_deterministic(self, tokenizer):
        a = make_task("sst-2", tokenizer, num_examples=8, seed=1)
        b = make_task("sst-2", tokenizer, num_examples=8, seed=1)
        assert np.array_equal(a.token_matrix(), b.token_matrix())
        assert np.array_equal(a.labels(), b.labels())

    def test_token_matrix_shape(self, tokenizer):
        task = make_task("mnli-m", tokenizer, num_examples=5)
        assert task.token_matrix().shape == (5, tokenizer.max_length)
        assert task.num_labels == 3

    def test_unknown_task_raises(self, tokenizer):
        with pytest.raises(ParameterError):
            make_task("imagenet", tokenizer)

    def test_generation_accepts_explicit_generator(self, tokenizer):
        a = make_task("sst-2", tokenizer, num_examples=6, rng=np.random.default_rng(7))
        b = make_task("sst-2", tokenizer, num_examples=6, rng=np.random.default_rng(7))
        assert np.array_equal(a.token_matrix(), b.token_matrix())
        assert np.array_equal(a.labels(), b.labels())

    def test_generation_independent_of_global_numpy_state(self, tokenizer):
        """Seeding hygiene: make_task must never read the global RNG, so test
        ordering and parallel execution cannot perturb generated datasets."""
        np.random.seed(123)
        a = make_task("mrpc", tokenizer, num_examples=6, seed=2)
        np.random.seed(99999)
        np.random.random(17)  # scramble the global stream
        b = make_task("mrpc", tokenizer, num_examples=6, seed=2)
        assert np.array_equal(a.token_matrix(), b.token_matrix())
        assert np.array_equal(a.labels(), b.labels())


class TestEvaluationHarness:
    def test_accuracy_shape_matches_paper(self, eval_model, tokenizer):
        """Primer (exact non-linearities) should track the plaintext model at
        least as well as the polynomial-approximation execution does."""
        task = make_task("sst-2", tokenizer, num_examples=24, seed=3)
        report = evaluate_accuracy(eval_model, task)
        assert report.plaintext_accuracy == 1.0  # teacher labels
        assert report.primer_fidelity >= report.fhe_only_fidelity
        assert 0.0 <= report.fhe_only_accuracy <= 1.0
        assert report.approximation_penalty >= 0.0
