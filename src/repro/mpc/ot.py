"""Simulated 1-out-of-2 oblivious transfer.

Garbled-circuit evaluation requires the evaluator to obtain the wire label
corresponding to each of its private input bits without revealing the bit to
the garbler.  A real deployment uses an OT extension (IKNP-style) seeded by a
few base OTs; this reproduction provides a *functional* OT whose transfer
semantics is correct and whose invocation count and bytes-on-the-wire are
recorded, so the cost model can charge for it, but whose security rests on
the simulation boundary rather than on a hardness assumption.

The interface is deliberately message-oriented (``prepare`` / ``choose`` /
``transfer``) so that the channel layer can serialise it like every other
protocol message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OTStatistics", "ObliviousTransfer"]


@dataclass
class OTStatistics:
    """Counters describing how much OT work a protocol performed."""

    transfers: int = 0
    bytes_sent: int = 0

    def merge(self, other: OTStatistics) -> None:
        self.transfers += other.transfers
        self.bytes_sent += other.bytes_sent


@dataclass
class ObliviousTransfer:
    """Functional 1-out-of-2 OT with cost accounting.

    ``label_bytes`` is the size of each transferred message (a wire label,
    16 bytes for 128-bit security).  Each transfer is charged two labels of
    upstream traffic (the masked pair) plus a choice bit, which matches the
    asymptotic cost of OT extension per transfer.
    """

    label_bytes: int = 16
    stats: OTStatistics = field(default_factory=OTStatistics)

    def transfer(self, message_zero: bytes, message_one: bytes, choice_bit: int) -> bytes:
        """Run one OT: the receiver learns exactly one of the two messages."""
        if choice_bit not in (0, 1):
            raise ValueError(f"choice bit must be 0 or 1, got {choice_bit}")
        self.stats.transfers += 1
        self.stats.bytes_sent += 2 * self.label_bytes + 1
        return message_one if choice_bit else message_zero

    def transfer_many(
        self, message_pairs: list[tuple[bytes, bytes]], choice_bits: list[int]
    ) -> list[bytes]:
        """Batch OT for a vector of choice bits."""
        if len(message_pairs) != len(choice_bits):
            raise ValueError(
                f"{len(message_pairs)} message pairs but {len(choice_bits)} choice bits"
            )
        return [
            self.transfer(zero, one, bit)
            for (zero, one), bit in zip(message_pairs, choice_bits, strict=True)
        ]
