"""Table II -- per-step ablation of Primer-base / +FHGS / +Pack / +CHGS.

Regenerates the offline/online latency of every pipeline step (Embed, QKV,
Q x K, SoftMax, Attention-Value, Others) for the four Primer variants on
BERT-base with n = 30, and checks the ablation trends the paper reports.
"""

from __future__ import annotations

import pytest

from repro.costmodel import format_table
from repro.nn import BERT_BASE
from repro.protocols import ALL_VARIANTS, count_operations
from repro.protocols.primer import TABLE2_STEPS

PAPER_TABLE2_TOTALS = {
    "primer-base": (0.81, 6553.2),
    "primer-f": (6524.3, 41.2),
    "primer-fp": (405.2, 39.0),
    "primer-fpc": (399.4, 35.4),
}


def _breakdowns(latency_model):
    out = {}
    for variant in ALL_VARIANTS:
        account = count_operations(BERT_BASE, variant)
        out[variant.name] = (latency_model.breakdown(account), latency_model.totals(account))
    return out


def test_table2_report(latency_model):
    """Print the regenerated Table II and check the ablation shape."""
    data = _breakdowns(latency_model)
    rows = []
    for name, (breakdown, totals) in data.items():
        cells = [name]
        for step in TABLE2_STEPS:
            lat = breakdown[step]
            cells.append(f"{lat.offline.total_seconds:.1f}/{lat.online.total_seconds:.1f}")
        paper_off, paper_on = PAPER_TABLE2_TOTALS[name]
        cells.append(
            f"{totals.offline.total_seconds:.0f}/{totals.online.total_seconds:.1f}"
            f" (paper {paper_off:.0f}/{paper_on:.1f})"
        )
        rows.append(cells)
    print("\nTable II -- per-step ablation (offline/online seconds)\n")
    print(format_table(["Scheme", *TABLE2_STEPS, "Total (paper)"], rows))

    base = data["primer-base"][1]
    primer_f = data["primer-f"][1]
    primer_fp = data["primer-fp"][1]
    primer_fpc = data["primer-fpc"][1]

    # +FHGS: the online latency collapses (paper: 6553 -> 41 s).
    assert primer_f.online.total_seconds < base.online.total_seconds / 50
    # +Packing: the offline latency drops substantially (paper: 16x).
    assert primer_fp.offline.total_seconds < primer_f.offline.total_seconds / 1.5
    # +CHGS: embedding and QKV steps disappear, online drops further.
    fpc_breakdown = data["primer-fpc"][0]
    assert fpc_breakdown["embedding"].offline.total_seconds == 0
    assert fpc_breakdown["qkv"].offline.total_seconds == 0
    assert primer_fpc.online.total_seconds <= primer_fp.online.total_seconds + 1e-6


@pytest.mark.benchmark(group="table2")
def test_bench_table2_accounting(benchmark, latency_model):
    def run():
        return {
            v.name: latency_model.totals(count_operations(BERT_BASE, v))
            for v in ALL_VARIANTS
        }
    result = benchmark(run)
    assert set(result) == {v.name for v in ALL_VARIANTS}
